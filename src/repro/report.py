"""Exploration reports.

Turns a design-space exploration into a human-readable Markdown report:
kernel analysis summary, the top designs with their model breakdowns
(II/depth/L_mem, bottleneck, area), and the distribution of rejection
reasons across the infeasible part of the space — the artefact a team
would attach to a design review.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.kernel_info import KernelInfo
from repro.dse.explorer import ExplorationResult
from repro.lint.diagnostics import Diagnostic
from repro.model import FlexCL
from repro.model.area import estimate_area


@dataclass
class ReportOptions:
    top: int = 10
    title: str = "FlexCL design-space exploration"


def exploration_report(result: ExplorationResult,
                       analyzer: Callable[[int], Optional[KernelInfo]],
                       model: FlexCL,
                       options: Optional[ReportOptions] = None,
                       diagnostics: Optional[List[Diagnostic]] = None) -> str:
    """Render *result* (from :func:`repro.dse.explore`) as Markdown.

    Pass the kernel's lint *diagnostics* (from
    :func:`repro.lint.lint_function`) to append a Diagnostics section —
    the static hazards a reviewer should weigh next to the numbers.
    """
    options = options or ReportOptions()
    lines: List[str] = [f"# {options.title}", ""]

    feasible = sorted(result.feasible, key=lambda e: e.cycles)
    rejected = [e for e in result.evaluated if not e.feasible]
    lines += [
        f"- evaluated designs: **{len(result.evaluated)}** "
        f"({len(feasible)} feasible, {len(rejected)} rejected)",
        f"- exploration time: **{result.elapsed_seconds:.2f} s** "
        f"({result.elapsed_seconds / max(len(feasible), 1) * 1000:.1f} "
        f"ms per feasible design)",
        "",
    ]

    if feasible:
        lines += _kernel_summary(analyzer(
            feasible[0].design.work_group_size))
        lines += _top_designs(feasible[:options.top], analyzer, model)
        span = feasible[-1].cycles / feasible[0].cycles
        lines += ["", f"Best-to-worst span across the feasible space: "
                      f"**{span:,.0f}x** — the cost of picking blindly.",
                  ""]
    if rejected:
        lines += _rejections(rejected)
    if diagnostics:
        lines += _diagnostics(diagnostics)
    return "\n".join(lines)


def _diagnostics(diagnostics: List[Diagnostic]) -> List[str]:
    lines = ["## Diagnostics", "",
             "| where | severity | check | message |", "|---|---|---|---|"]
    for d in diagnostics:
        lines.append(f"| {d.line}:{d.col} | {d.severity} | `{d.check}` "
                     f"| {d.message} |")
    lines.append("")
    return lines


def _kernel_summary(info: Optional[KernelInfo]) -> List[str]:
    if info is None:
        return []
    t = info.traces
    return [
        "## Kernel analysis",
        "",
        f"| metric | value |",
        f"|---|---|",
        f"| work-items | {info.total_work_items} |",
        f"| global reads / writes per work-item "
        f"| {t.global_reads_per_wi:.1f} / {t.global_writes_per_wi:.1f} |",
        f"| local reads / writes per work-item "
        f"| {t.local_reads_per_wi:.1f} / {t.local_writes_per_wi:.1f} |",
        f"| barriers per work-item | {info.barriers_per_wi} |",
        f"| local memory | {info.local_mem_bytes} B |",
        f"| inter-work-item recurrences | {len(t.recurrences)} |",
        "",
    ]


def _top_designs(entries, analyzer, model: FlexCL) -> List[str]:
    lines = [
        "## Top designs",
        "",
        "| # | design | cycles | II | depth | L_mem/wi | bottleneck "
        "| DSP | BRAM |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for rank, entry in enumerate(entries, start=1):
        info = analyzer(entry.design.work_group_size)
        prediction = model.predict(info, entry.design)
        area = estimate_area(info, entry.design)
        lines.append(
            f"| {rank} | `{entry.design.signature()}` "
            f"| {prediction.cycles:,.0f} "
            f"| {prediction.pe.ii:.0f} | {prediction.pe.depth:.0f} "
            f"| {prediction.memory.latency_per_wi:.1f} "
            f"| {prediction.bottleneck} "
            f"| {area.dsp} | {area.bram_36k} |")
    return lines


def _rejections(rejected) -> List[str]:
    counts = Counter(e.reject_reason or "unknown" for e in rejected)
    lines = ["## Rejected configurations", "",
             "| reason | designs |", "|---|---|"]
    for reason, count in counts.most_common():
        lines.append(f"| {reason} | {count} |")
    lines.append("")
    return lines
