"""Constant folding and dead-code elimination on the IR."""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Load,
    Select,
    Store,
    Terminator,
)
from repro.ir.values import Constant

_INT_FOLDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << (int(b) & 63),
    "shr": lambda a, b: int(a) >> (int(b) & 63),
}
_FLOAT_FOLDS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
}
_COMPARES = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}


def fold_constants(fn: Function) -> int:
    """Fold instructions with all-constant operands; returns the number
    of instructions replaced by constants."""
    replacements: Dict[int, Constant] = {}
    folded = 0
    for block in fn.blocks:
        kept = []
        for inst in block.instructions:
            # Rewrite operands through earlier replacements first.
            inst.operands = [
                replacements.get(id(op), op) for op in inst.operands
            ]
            if isinstance(inst, BinaryOp):
                _rebind_named_operands(inst)
            constant = _try_fold(inst)
            if constant is not None and inst.result is not None:
                replacements[id(inst.result)] = constant
                folded += 1
                continue
            kept.append(inst)
        block.instructions = kept
    # Rewrite any remaining uses (e.g. terminator conditions).
    if replacements:
        for inst in fn.instructions():
            inst.operands = [
                replacements.get(id(op), op) for op in inst.operands
            ]
    return folded


def _rebind_named_operands(inst: Instruction) -> None:
    """BinaryOp caches no named fields; placeholder for future ops."""


def _try_fold(inst: Instruction) -> Optional[Constant]:
    operands = inst.operands
    if not operands or not all(isinstance(o, Constant) for o in operands):
        return None
    if isinstance(inst, BinaryOp):
        a, b = operands[0].value, operands[1].value
        op = inst.opcode
        try:
            if op in _INT_FOLDS and inst.type.is_integer:
                return Constant(inst.type, int(_INT_FOLDS[op](a, b)))
            if op in _FLOAT_FOLDS and inst.type.is_float:
                return Constant(inst.type, float(_FLOAT_FOLDS[op](a, b)))
            if op == "div" and b != 0:
                q = abs(int(a)) // abs(int(b))
                return Constant(inst.type,
                                q if (a >= 0) == (b >= 0) else -q)
            if op == "fdiv" and b != 0:
                return Constant(inst.type, float(a) / float(b))
        except (OverflowError, ValueError):
            return None
        return None
    if isinstance(inst, CompareOp):
        a, b = operands[0].value, operands[1].value
        return Constant(inst.type, 1 if _COMPARES[inst.pred](a, b) else 0)
    if isinstance(inst, Select):
        cond, x, y = operands
        return Constant(inst.type, x.value if cond.value else y.value)
    if isinstance(inst, Cast):
        v = operands[0].value
        if inst.kind in ("sitofp", "uitofp", "fpext", "fptrunc"):
            return Constant(inst.type, float(v))
        if inst.kind in ("fptosi", "fptoui", "trunc", "zext", "sext"):
            return Constant(inst.type, int(v))
        return None
    return None


def eliminate_dead_code(fn: Function) -> int:
    """Remove pure instructions whose results are unused; returns the
    number of instructions removed."""
    used = set()
    for inst in fn.instructions():
        for op in inst.operands:
            used.add(id(op))
    removed = 0
    for block in fn.blocks:
        kept = []
        for inst in block.instructions:
            if _is_pure(inst) and inst.result is not None \
                    and id(inst.result) not in used:
                removed += 1
                continue
            kept.append(inst)
        block.instructions = kept
    return removed


def _is_pure(inst: Instruction) -> bool:
    if isinstance(inst, (Store, Barrier, Terminator, Alloca)):
        return False
    if isinstance(inst, Load):
        return False          # a racing load's timing is observable
    if isinstance(inst, Call):
        from repro.frontend.builtins import builtin_signature
        sig = builtin_signature(inst.callee)
        return sig is not None and sig.category in (
            "workitem", "fsimple", "fexpensive", "fdiv", "isimple")
    return isinstance(inst, (BinaryOp, CompareOp, Cast, Select,
                             GetElementPtr))


def simplify_function(fn: Function, max_rounds: int = 8) -> int:
    """Fold + DCE to a fixed point; returns total instructions removed."""
    total = 0
    for _ in range(max_rounds):
        changed = fold_constants(fn) + eliminate_dead_code(fn)
        total += changed
        if changed == 0:
            break
    return total
