"""Optional IR-level optimisation passes.

The lowering is deliberately Clang -O0 shaped (every variable in a
stack slot); HLS frontends run cleanup passes before scheduling.  These
passes are available for experimentation — they are *off by default* in
`compile_opencl` so the calibrated model/simulator numbers stay put —
and each is semantics-preserving (pinned by interpreter-based tests).

- :func:`fold_constants` — evaluate binops/compares/casts/selects whose
  operands are constants.
- :func:`eliminate_dead_code` — drop pure instructions whose results
  are never used.
- :func:`simplify_function` — run both to a fixed point.
"""

from repro.transforms.simplify import (
    eliminate_dead_code,
    fold_constants,
    simplify_function,
)

__all__ = ["eliminate_dead_code", "fold_constants", "simplify_function"]
