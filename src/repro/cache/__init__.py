"""Persistent, content-addressed artifact cache (``repro.cache``).

PR 3's in-process memoization made repeated predictions cheap *within*
one process; this package makes them cheap *across* processes: every
expensive pipeline stage — kernel analysis (profiling interpreter +
trace statistics), PE schedules, memory-model results, and the
per-device Table-1 pattern tables — can be warm-started from an on-disk
store shared by CLI invocations, benchmark scripts, DSE workers, and CI
runs.

Keys are content hashes (:mod:`repro.cache.keys`): kernel IR + launch
signature + full device configuration + a per-layer schema version.
The store (:mod:`repro.cache.store`) writes atomically, treats
corruption as a miss, and LRU-caps its size.

Nothing in the cache changes a predicted cycle: a warm prediction is
bit-identical to a cold one, and the test suite and
``benchmarks/bench_suite_cache.py`` assert exactly that.
"""

from repro.cache.keys import (
    SCHEMA_VERSIONS,
    analysis_key,
    buffers_fingerprint,
    device_fingerprint,
    digest,
    function_fingerprint,
    ndrange_fingerprint,
    scalars_fingerprint,
    submodel_key,
    table1_key,
)
from repro.cache.store import (
    DEFAULT_CACHE_DIR,
    ArtifactCache,
    StoreStats,
    open_cache,
    resolve_cache_dir,
)
from repro.cache.hot import DEFAULT_HOT_ENTRIES, HotCache
from repro.cache.report import cache_payload, hot_cache_payload

__all__ = [
    "ArtifactCache",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_HOT_ENTRIES",
    "HotCache",
    "SCHEMA_VERSIONS",
    "StoreStats",
    "cache_payload",
    "hot_cache_payload",
    "analysis_key",
    "buffers_fingerprint",
    "device_fingerprint",
    "digest",
    "function_fingerprint",
    "ndrange_fingerprint",
    "open_cache",
    "resolve_cache_dir",
    "scalars_fingerprint",
    "submodel_key",
    "table1_key",
]
