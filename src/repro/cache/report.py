"""Machine-readable cache reports.

One formatter serves every consumer: ``repro cache stats --json`` on
the CLI, the serve daemon's ``/metrics`` endpoint, and CI scripts that
want entry counts without scraping human-oriented text.
"""

from __future__ import annotations

from typing import Dict, Optional


def cache_payload(cache) -> Optional[Dict[str, object]]:
    """The canonical JSON-able description of one
    :class:`~repro.cache.store.ArtifactCache` (None stays None, so
    callers can embed a disabled cache directly)."""
    if cache is None:
        return None
    counts = cache.layer_counts()
    return {
        "root": str(cache.root),
        "entries": sum(counts.values()),
        "layers": {layer: counts[layer] for layer in sorted(counts)},
        "size_bytes": cache.size_bytes(),
        "max_bytes": cache.max_bytes,
        "stats": cache.stats.to_dict(),
    }


def hot_cache_payload(hot) -> Optional[Dict[str, object]]:
    """The JSON-able description of a two-tier
    :class:`~repro.cache.hot.HotCache`: per-tier counters plus the
    backing store's :func:`cache_payload`."""
    if hot is None:
        return None
    tiers = hot.tier_counters()
    return {
        "tiers": tiers,
        "combined_stats": hot.stats.to_dict(),
        "store": cache_payload(hot.store),
    }
