"""In-process hot tier above the persistent artifact store.

The disk :class:`~repro.cache.store.ArtifactCache` makes repeated work
cheap *across* processes, but a long-running server answers thousands
of identical lookups per second, and paying a pickle load + stat dance
for each would dominate the request.  :class:`HotCache` layers a
bounded, thread-safe, in-memory LRU over an (optional) backing store:

- a **hot hit** returns the in-memory object without touching disk;
- a **hot miss** falls through to the backing store; a disk hit is
  *promoted* into the hot tier so the next lookup is memory-speed;
- ``put`` inserts into the hot tier and writes through to the store,
  so anything this process computes also warms every other process;
- the tier is capped at *max_entries* (LRU eviction — evicting a hot
  entry never loses data, the store still has it).

Per-tier hit/miss counters are kept separately from the combined
:class:`~repro.cache.store.StoreStats` view so a server's ``/metrics``
endpoint can attribute hits to memory vs disk.

A ``HotCache`` exposes the same ``get``/``put``/``get_or_compute``/
``stats`` surface as :class:`ArtifactCache`, so it can be passed
anywhere the pipeline accepts a persistent cache (``analyze_kernel``,
:class:`~repro.model.flexcl.FlexCL`, ``run_suite`` …).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cache.store import StoreStats

#: default hot-tier capacity (entries, not bytes: entries are small
#: analysis products and serialized responses)
DEFAULT_HOT_ENTRIES = 512


class HotCache:
    """A bounded in-memory LRU tier over an optional backing store."""

    def __init__(self, store=None,
                 max_entries: int = DEFAULT_HOT_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.store = store
        self.max_entries = max_entries
        #: combined view (hot OR store hit counts as a hit), layer-keyed
        #: and StoreStats-compatible so suite/explore deltas keep working
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._data: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        # per-tier attribution
        self.hot_hits = 0
        self.hot_misses = 0
        self.promotions = 0
        self.hot_evictions = 0

    # -- core operations ----------------------------------------------

    def get(self, layer: str, key: str) -> Tuple[bool, Any]:
        """Look (*layer*, *key*) up: hot tier first, then the store."""
        slot = (layer, key)
        with self._lock:
            if slot in self._data:
                self._data.move_to_end(slot)
                self.hot_hits += 1
                self.stats._bump(self.stats.hits, layer)
                return True, self._data[slot]
            self.hot_misses += 1
        if self.store is not None:
            found, value = self.store.get(layer, key)
            if found:
                with self._lock:
                    self.promotions += 1
                    self.stats._bump(self.stats.hits, layer)
                    self._insert(slot, value)
                return True, value
        with self._lock:
            self.stats._bump(self.stats.misses, layer)
        return False, None

    def put(self, layer: str, key: str, value: Any,
            write_through: bool = True) -> None:
        """Insert into the hot tier and (by default) write through to
        the store.  ``write_through=False`` keeps the entry memory-only
        — the serve daemon uses it for rendered response bytes, which
        must never outlive the process that rendered them."""
        with self._lock:
            self.stats._bump(self.stats.puts, layer)
            self._insert((layer, key), value)
        if write_through and self.store is not None:
            self.store.put(layer, key, value)

    def get_or_compute(self, layer: str, key: str,
                       compute: Callable[[], Any]) -> Any:
        found, value = self.get(layer, key)
        if found:
            return value
        value = compute()
        self.put(layer, key, value)
        return value

    # -- bookkeeping ---------------------------------------------------

    def _insert(self, slot: Tuple[str, str], value: Any) -> None:
        """Insert under the caller's lock, evicting LRU past the cap."""
        self._data[slot] = value
        self._data.move_to_end(slot)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.hot_evictions += 1

    def entry_count(self) -> int:
        with self._lock:
            return len(self._data)

    def __len__(self) -> int:
        return self.entry_count()

    def __contains__(self, slot: Tuple[str, str]) -> bool:
        with self._lock:
            return slot in self._data

    def clear(self) -> None:
        """Drop the hot tier (the backing store is untouched)."""
        with self._lock:
            self._data.clear()

    def tier_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-tier attribution for metrics endpoints."""
        with self._lock:
            hot = {"hits": self.hot_hits, "misses": self.hot_misses,
                   "entries": len(self._data),
                   "capacity": self.max_entries,
                   "promotions": self.promotions,
                   "evictions": self.hot_evictions}
        out = {"hot": hot}
        if self.store is not None:
            out["store"] = {
                "hits": self.store.stats.total_hits,
                "misses": self.store.stats.total_misses,
            }
        return out


def wrap_hot(store, max_entries: Optional[int] = None):
    """Layer a :class:`HotCache` over *store* (None stays None-safe:
    a store-less hot tier still caches in memory)."""
    return HotCache(store=store,
                    max_entries=max_entries or DEFAULT_HOT_ENTRIES)
