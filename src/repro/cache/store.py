"""The persistent artifact store behind :mod:`repro.cache`.

An :class:`ArtifactCache` is a content-addressed pickle store on disk:
``<root>/<layer>/<key[:2]>/<key>.pkl``.  It is deliberately boring —
the guarantees are what matter:

- **atomic writes**: entries are written to a temp file in the target
  directory and ``os.replace``d into place, so concurrent writers
  (forked suite workers, parallel CI shards) can never expose a
  half-written entry;
- **corruption tolerance**: an unreadable, truncated, or
  garbage entry is a *miss* (with a one-line warning), never an
  exception — the bad file is discarded and recomputed;
- **bounded size**: an LRU cap (default 512 MiB, ``REPRO_CACHE_MAX_MB``)
  evicts least-recently-used entries after writes; hits refresh an
  entry's timestamp;
- **observable**: per-layer hit/miss/put/eviction counters
  (:class:`StoreStats`) that the CLI surfaces and the explorer
  aggregates across workers.

Configuration: ``REPRO_CACHE_DIR`` names the root (default
``~/.cache/repro-flexcl``); setting it to the empty string disables
persistent caching entirely, as does ``--no-cache`` on the CLI.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

#: default cache root, under the user's cache directory
DEFAULT_CACHE_DIR = "~/.cache/repro-flexcl"
#: default LRU size cap in MiB (``REPRO_CACHE_MAX_MB`` overrides)
DEFAULT_MAX_MB = 512


@dataclass
class StoreStats:
    """Hit/miss/put/eviction counters of one :class:`ArtifactCache`."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    puts: Dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    def _bump(self, table: Dict[str, int], layer: str, n: int = 1) -> None:
        table[layer] = table.get(layer, 0) + n

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def lookups(self) -> int:
        return self.total_hits + self.total_misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.total_hits / n if n else 0.0

    def copy(self) -> "StoreStats":
        return StoreStats(hits=dict(self.hits), misses=dict(self.misses),
                          puts=dict(self.puts), evictions=self.evictions)

    def __add__(self, other: "StoreStats") -> "StoreStats":
        out = self.copy()
        for layer, n in other.hits.items():
            out._bump(out.hits, layer, n)
        for layer, n in other.misses.items():
            out._bump(out.misses, layer, n)
        for layer, n in other.puts.items():
            out._bump(out.puts, layer, n)
        out.evictions += other.evictions
        return out

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        out = self.copy()
        for layer, n in other.hits.items():
            out._bump(out.hits, layer, -n)
        for layer, n in other.misses.items():
            out._bump(out.misses, layer, -n)
        for layer, n in other.puts.items():
            out._bump(out.puts, layer, -n)
        out.evictions -= other.evictions
        return out

    def to_dict(self) -> Dict[str, object]:
        return {"hits": dict(self.hits), "misses": dict(self.misses),
                "puts": dict(self.puts), "evictions": self.evictions,
                "hit_rate": self.hit_rate}

    def summary(self) -> str:
        layers = sorted(set(self.hits) | set(self.misses))
        per_layer = ", ".join(
            f"{layer} {self.hits.get(layer, 0)}/"
            f"{self.hits.get(layer, 0) + self.misses.get(layer, 0)}"
            for layer in layers) or "no lookups"
        return (f"disk cache: {self.total_hits}/{self.lookups} hits "
                f"({self.hit_rate:.0%}) [{per_layer}]")


class ArtifactCache:
    """Content-addressed persistent cache (see module docstring).

    Instances are safe to share between threads (the serve daemon's
    worker pool reads and writes one store concurrently): the stats
    counters and the eviction scan are guarded by a lock.  File
    operations themselves were already concurrency-safe — atomic
    ``os.replace`` writes and miss-on-unreadable reads — so the lock
    only serialises the in-process bookkeeping.
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root).expanduser()
        if max_bytes is None:
            max_bytes = _env_max_bytes()
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    def _entry_path(self, layer: str, key: str) -> Path:
        return self.root / layer / key[:2] / f"{key}.pkl"

    # -- core operations ----------------------------------------------

    def get(self, layer: str, key: str) -> Tuple[bool, Any]:
        """Look *key* up in *layer*: ``(True, value)`` on a hit,
        ``(False, None)`` on a miss.  Never raises on bad entries."""
        path = self._entry_path(layer, key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats._bump(self.stats.misses, layer)
            return False, None
        except Exception as exc:
            # Truncated/garbage/unpicklable entry: warn, drop, miss.
            warnings.warn(
                f"repro.cache: discarding unreadable entry "
                f"{path.name} in layer {layer!r} "
                f"({type(exc).__name__}: {exc})",
                RuntimeWarning, stacklevel=2)
            self._discard(path)
            with self._lock:
                self.stats._bump(self.stats.misses, layer)
            return False, None
        with self._lock:
            self.stats._bump(self.stats.hits, layer)
        self._touch(path)
        return True, value

    def put(self, layer: str, key: str, value: Any) -> None:
        """Store *value* under (*layer*, *key*) atomically."""
        path = self._entry_path(layer, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                self._discard(Path(tmp))
                raise
        except OSError as exc:
            # A read-only or full cache dir degrades to "no caching",
            # it never takes the computation down with it.
            warnings.warn(f"repro.cache: cannot write {path} "
                          f"({exc})", RuntimeWarning, stacklevel=2)
            return
        with self._lock:
            self.stats._bump(self.stats.puts, layer)
        self._maybe_evict()

    def get_or_compute(self, layer: str, key: str,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        found, value = self.get(layer, key)
        if found:
            return value
        value = compute()
        self.put(layer, key, value)
        return value

    # -- maintenance ---------------------------------------------------

    def entries(self):
        """Every entry file currently in the store."""
        if not self.root.is_dir():
            return
        yield from self.root.glob("*/??/*.pkl")

    def entry_count(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            if self._discard(path):
                removed += 1
        return removed

    def layer_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for path in self.entries():
            layer = path.parent.parent.name
            counts[layer] = counts.get(layer, 0) + 1
        return counts

    def _maybe_evict(self) -> None:
        """Evict least-recently-used entries while over the size cap.

        The whole scan-and-discard runs under the lock: two concurrent
        writers must not race the same LRU scan (each would discard the
        other's survivors and double-count evictions).
        """
        if self.max_bytes <= 0:
            return
        with self._lock:
            entries = []
            total = 0
            for path in self.entries():
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
                total += st.st_size
            if total <= self.max_bytes:
                return
            for _, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                if self._discard(path):
                    total -= size
                    self.stats.evictions += 1

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _discard(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False


def _env_max_bytes() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_MB", "")
    try:
        mb = int(raw) if raw else DEFAULT_MAX_MB
    except ValueError:
        mb = DEFAULT_MAX_MB
    return mb * 1024 * 1024


def resolve_cache_dir(cache_dir: Optional[str] = None) -> Optional[Path]:
    """The effective cache root: an explicit *cache_dir* wins, then
    ``REPRO_CACHE_DIR`` (empty string = disabled), then the default.
    Returns None when persistent caching is disabled."""
    if cache_dir is not None:
        return Path(cache_dir).expanduser() if cache_dir else None
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return Path(env).expanduser() if env else None
    return Path(DEFAULT_CACHE_DIR).expanduser()


def open_cache(cache_dir: Optional[str] = None,
               enabled: bool = True) -> Optional[ArtifactCache]:
    """The standard way to obtain the configured cache (or None when
    disabled via *enabled*, ``--no-cache``, or ``REPRO_CACHE_DIR=``)."""
    if not enabled:
        return None
    root = resolve_cache_dir(cache_dir)
    if root is None:
        return None
    return ArtifactCache(root)
