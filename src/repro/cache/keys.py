"""Stable, content-addressed cache keys.

Every persistent cache entry is addressed by a SHA-256 digest over the
*content* that determines the cached result — never over object ids,
file paths, or device nicknames:

- the kernel: a canonical dump of the lowered IR (register names are
  value-numbered per function, so two compiles of the same source in
  different processes — or different register-counter states — produce
  the same fingerprint, while any semantic edit changes it);
- the launch: NDRange geometry, scalar arguments, and a digest of every
  input buffer's dtype/shape/bytes (profiled trip counts and memory
  traces are data-dependent);
- the device: the *full* :class:`~repro.devices.Device` configuration
  including DRAM timing, not ``device.name`` — two boards sharing a
  name but differing in any parameter never share entries;
- a per-layer schema version (:data:`SCHEMA_VERSIONS`), bumped whenever
  the semantics of a cached artefact change, so stale entries from an
  older code generation are simply never looked up.
"""

from __future__ import annotations

import dataclasses
import hashlib
import weakref
from typing import Dict

#: Persistent-layer schema versions.  Bump a layer's version whenever
#: the code producing its cached artefact changes meaning (e.g. the
#: profiling interpreter records different traces, the PE scheduler
#: changes its output): old entries become unreachable, not wrong.
SCHEMA_VERSIONS: Dict[str, int] = {
    "analysis": 4,   # pickled KernelInfo (+ trace_source provenance)
    "pe": 1,         # PEModelResult rows spilled from repro.model.memo
    "memory": 1,     # MemoryModelResult rows spilled from repro.model.memo
    "table1": 1,     # per-device PatternLatencyTable (Table 1)
    "surrogate": 1,  # trained surrogate model artefacts (repro.surrogate)
}


def digest(*parts: object) -> str:
    """SHA-256 over the string forms of *parts* (order-sensitive)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()


def device_fingerprint(device) -> str:
    """Content hash of the *complete* device configuration.

    Uses every field of the frozen dataclass (including the nested DRAM
    timing), so devices that differ only in clock, timing, bank count,
    etc. never alias — unlike keying on ``device.name``.
    """
    if dataclasses.is_dataclass(device):
        desc = sorted(dataclasses.asdict(device).items())
    else:  # duck-typed test doubles: fall back to the public attributes
        desc = sorted((k, v) for k, v in vars(device).items()
                      if not k.startswith("_"))
    return digest("device", desc)


#: per-Function fingerprint memo — the dump only reads the lowered IR,
#: which is immutable after the frontend (site ids and other analysis
#: annotations are excluded from the dump), so one hash per Function
#: object serves every analysis of it
_FN_FP_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def function_fingerprint(fn) -> str:
    """Content hash of a lowered IR function via a canonical dump.

    Virtual registers are renumbered in block/instruction order (the
    global ``Register`` counter leaks compile-session state into
    ``repr``), and source spans / profiling site ids are excluded, so
    the fingerprint is stable across processes and whitespace-only
    source edits while any change to the computation busts it.
    """
    try:
        fp = _FN_FP_MEMO.get(fn)
    except TypeError:            # unhashable/unweakrefable test double
        return digest("fn", _function_dump(fn))
    if fp is None:
        fp = digest("fn", _function_dump(fn))
        _FN_FP_MEMO[fn] = fp
    return fp


def _function_dump(fn) -> str:
    from repro.ir.function import BasicBlock

    names: Dict[int, str] = {}
    for i, arg in enumerate(fn.args):
        names[id(arg)] = f"%a{i}"
    counter = 0
    for block in fn.blocks:
        for inst in block.instructions:
            if inst.result is not None:
                counter += 1
                names[id(inst.result)] = f"%{counter}"

    def ref(value) -> str:
        name = names.get(id(value))
        if name is not None:
            return name
        # Constants (and any other operand kind) are identified by
        # type + payload, which their __str__ renders stably.
        return f"({value!s})"

    def attr(value) -> str:
        # Canonical, address-free rendering of an instruction attribute.
        if isinstance(value, BasicBlock):
            return f"^{value.name}"
        if id(value) in names:
            return names[id(value)]
        if isinstance(value, (list, tuple)):
            return "[" + ",".join(attr(v) for v in value) + "]"
        if value is None or isinstance(value, (str, int, float, bool)):
            return repr(value)
        text = str(value)
        # Default object reprs embed memory addresses; collapse those
        # to the class name so the dump stays stable across processes.
        return type(value).__name__ if "0x" in text else text

    lines = [
        f"fn {fn.name} kernel={fn.is_kernel} "
        f"reqd={fn.reqd_work_group_size}",
        "args " + ",".join(f"{a.type}:{a.name}" for a in fn.args),
    ]
    #: structural fields plus the annotations that profiling/analysis
    #: passes attach to instructions after lowering — those are derived,
    #: not content, and must not perturb the fingerprint
    skip = {"operands", "result", "parent", "opcode",
            "span", "site_id", "unique_stored_value"}
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            attrs = [f"{key}={attr(getattr(inst, key))}"
                     for key in sorted(vars(inst)) if key not in skip]
            result = names.get(id(inst.result), "")
            operands = ",".join(ref(o) for o in inst.operands)
            lines.append(f"  {result} {inst.opcode}"
                         f"[{';'.join(attrs)}]({operands}):{inst.type}")
    return "\n".join(lines)


def buffers_fingerprint(buffers: Dict[str, object]) -> str:
    """Content hash of the input buffers (dtype, shape, raw bytes).

    Profiling is data-dependent (trip counts, traced addresses), so the
    buffer *contents* are part of the analysis identity.  Hash this
    before the profiling run mutates the buffers.
    """
    parts = []
    for name in sorted(buffers):
        data = buffers[name].data
        parts.append((name, str(data.dtype), data.shape,
                      hashlib.sha256(data.tobytes()).hexdigest()))
    return digest("buffers", parts)


def scalars_fingerprint(scalars: Dict[str, object]) -> str:
    """Key part covering the kernel's scalar arguments, order-free."""
    return digest("scalars", sorted(
        (k, repr(v)) for k, v in scalars.items()))


def ndrange_fingerprint(ndrange) -> str:
    """Key part covering the launch geometry."""
    return digest("ndrange", ndrange.global_size, ndrange.local_size)


def analysis_key(fn, buffers, scalars, ndrange, device,
                 profile_groups) -> str:
    """The cache key of one :func:`~repro.analysis.analyze_kernel` run.
    *profile_groups* may carry extra context (e.g. an op-latency-table
    digest) — it is folded into the key verbatim."""
    return digest(
        "analysis", SCHEMA_VERSIONS["analysis"],
        function_fingerprint(fn),
        buffers_fingerprint(buffers),
        scalars_fingerprint(scalars),
        ndrange_fingerprint(ndrange),
        device_fingerprint(device),
        profile_groups,
    )


def submodel_key(sub_model: str, info_fingerprint: str, salt: str,
                 params: tuple) -> str:
    """Key of one spilled sub-model row: the analysed kernel's identity,
    the model context (device + ablation switches), and the memo
    parameters the sub-model actually depends on."""
    return digest(sub_model, SCHEMA_VERSIONS[sub_model],
                  info_fingerprint, salt, repr(params))


def table1_key(device) -> str:
    """Key of a device's profiled Table-1 pattern-latency table."""
    return digest("table1", SCHEMA_VERSIONS["table1"],
                  device_fingerprint(device))
