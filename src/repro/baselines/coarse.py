"""Coarse-grained performance model in the style of Wang et al.
(HPCA'16), the paper's DSE comparator.

The paper criticises it for "ignor[ing] important OpenCL-to-FPGA
optimizations such as global memory access patterns, pipeline,
parallelism, etc.", which fundamentally limits the optimisation quality
(§2.2, §4.3).  Accordingly this model:

- prices computation as (weighted op count) x (average latency) / ILP,
  with a fixed instruction-level-parallelism factor instead of a real
  schedule;
- prices memory as bytes / fixed-bandwidth with no pattern, coalescing,
  or interleaving awareness;
- assumes every parallelism knob scales ideally and independently.
"""

from __future__ import annotations


from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design

#: assumed ILP extracted by the tool inside one work-item
FIXED_ILP = 4.0
#: assumed flat global-memory bandwidth, bytes per cycle
FIXED_BANDWIDTH = 8.0
#: average operation latency assumed for every op class
AVERAGE_OP_LATENCY = 2.0


class CoarseModel:
    """Coarse estimator: evaluate(info, design) -> cycles."""

    def __init__(self, device) -> None:
        self.device = device

    def estimate(self, info: KernelInfo, design: Design) -> float:
        ops_per_wi = sum(node.weight for node in info.function_dfg.nodes)
        compute_wi = ops_per_wi * AVERAGE_OP_LATENCY / FIXED_ILP
        if design.work_item_pipeline:
            # Pipelining is modelled as a flat 4x improvement, blind to
            # recurrences and resource pressure.
            compute_wi /= 4.0

        bytes_per_wi = 4.0 * (info.traces.global_reads_per_wi
                              + info.traces.global_writes_per_wi)
        mem_wi = bytes_per_wi / FIXED_BANDWIDTH
        if design.comm_mode == "pipeline":
            per_wi = max(compute_wi, mem_wi)
        else:
            per_wi = compute_wi + mem_wi

        parallelism = (design.effective_pe_slots * design.num_cu)
        return per_wi * info.total_work_items / max(parallelism, 1)
