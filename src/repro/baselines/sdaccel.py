"""SDAccel-style HLS cycle estimator.

Reproduces the comparison baseline of Table 2.  The paper attributes the
vendor estimator's 30–85% error to three causes (§4.2), all implemented
here:

1. *Underestimation of memory access latency* — every global access is
   priced at a fixed optimistic interconnect latency; DRAM row-buffer
   behaviour, access patterns, and coalescing interactions are ignored.
2. *Conservative estimation of designs with complex control
   dependency* — basic blocks are assumed to execute strictly
   sequentially (no inter-block overlap), and every conditional adds a
   flush penalty.
3. *Ignorance of work-group scheduling overhead of multiple CUs* — CU
   parallelism is assumed ideal.

It also fails to return a result for ~42% of design points ("lacks
support for complex parallelism and memory access patterns" or exceeds
the synthesis time-out), raising :class:`SDAccelFailure`.
"""

from __future__ import annotations

import math

from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design
from repro.latency.microbench import _stable_hash
from repro.scheduling import ResourceBudget, compute_res_mii, list_schedule

#: fixed per-access global-memory latency the estimator assumes (cycles)
OPTIMISTIC_GLOBAL_LATENCY = 3.0
#: pipeline flush penalty charged per conditional region
CONTROL_FLUSH_PENALTY = 12.0


class SDAccelFailure(Exception):
    """The estimator could not produce a number for this design."""


class SDAccelEstimator:
    """Vendor-tool-style cycle estimation for one device."""

    def __init__(self, device) -> None:
        self.device = device

    def estimate(self, info: KernelInfo, design: Design) -> float:
        """Estimated cycles, or raises :class:`SDAccelFailure`."""
        self._maybe_fail(info, design)
        budget = ResourceBudget.for_pe(
            self.device, design.effective_pe_slots, design.num_cu)

        # Conservative control handling: sum every block's latency
        # (weighted by execution frequency), no inter-block overlap.
        compute_wi = 0.0
        for name, dfg in info.block_dfgs.items():
            weight = info.block_weights.get(name, 0.0)
            if weight <= 0.0:
                continue
            compute_wi += list_schedule(dfg, budget).latency * weight
        n_branches = sum(
            1 for name, w in info.block_weights.items()
            if w > 0 and name.startswith(("if.", "sel.", "sc.")))
        compute_wi += CONTROL_FLUSH_PENALTY * n_branches

        # Optimistic flat memory latency.
        mem_wi = (info.traces.global_reads_per_wi
                  + info.traces.global_writes_per_wi) \
            * OPTIMISTIC_GLOBAL_LATENCY

        if design.work_item_pipeline:
            mii = compute_res_mii(
                budget,
                info.traces.local_reads_per_wi,
                info.traces.local_writes_per_wi,
                info.dsp_cost_per_wi)
            ii = mii.res_mii   # no RecMII: inter-WI recurrences unseen
            depth = compute_wi
            wg = design.work_group_size
            n_pe = max(design.effective_pe_slots, 1)
            group = (ii + mem_wi) * math.ceil(max(wg - n_pe, 0) / n_pe) \
                + depth
        else:
            group = (compute_wi + mem_wi) * math.ceil(
                design.work_group_size
                / max(design.effective_pe_slots, 1))

        groups = math.ceil(info.total_work_items / design.work_group_size)
        # Ideal CU scaling, no dispatch overhead.
        return group * math.ceil(groups / design.num_cu)

    # -- failure model ----------------------------------------------------

    def _maybe_fail(self, info: KernelInfo, design: Design) -> None:
        """~42% of design points fail (paper §4.2).

        Structural causes fail deterministically; the synthesis
        time-out is a pseudo-random hazard keyed on (kernel, design) so
        the failure set is reproducible.
        """
        if design.effective_pe_slots > 4 and design.num_cu > 2:
            raise SDAccelFailure("unsupported parallelism "
                                 "(PE x CU replication too complex)")
        if design.comm_mode == "pipeline" and info.uses_barrier \
                and design.effective_pe_slots > 2:
            raise SDAccelFailure("pipelined barrier kernel with PE "
                                 "replication not supported")
        h = _stable_hash("sdaccel-timeout", info.name,
                         design.signature()) % 100
        if h < 30:
            raise SDAccelFailure("synthesis made no progress within "
                                 "one hour (timed out)")
