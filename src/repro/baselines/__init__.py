"""Comparator estimators.

- :class:`SDAccelEstimator` — the vendor HLS cycle estimate of Table 2:
  structurally plausible but with the paper's documented failure modes
  (underestimated memory latency, conservative control-dependency
  handling, no multi-CU scheduling overhead, and outright failures on
  ~42% of design points).
- :class:`CoarseModel` — the coarse-grained model of Wang et al.
  (HPCA'16), used with the step-by-step heuristic for the DSE
  comparison (§4.3): it ignores memory access patterns, coalescing, and
  pipeline structure.
"""

from repro.baselines.sdaccel import SDAccelEstimator, SDAccelFailure
from repro.baselines.coarse import CoarseModel

__all__ = ["CoarseModel", "SDAccelEstimator", "SDAccelFailure"]
