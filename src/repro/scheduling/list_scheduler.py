"""Resource-aware priority-ordered list scheduling (ASAP policy).

Estimates the execution latency of one basic block (paper §3.3.1): the
input is the block's data-flow graph; operations are scheduled as soon
as their predecessors finish, subject to local-memory port and DSP
constraints; the output is the block latency in cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.dfg import DataFlowGraph, DFGNode
from repro.scheduling.resources import ResourceBudget


@dataclass
class ScheduleResult:
    """The outcome of scheduling one basic block."""

    latency: float                       # cycles from start to last finish
    start_times: Dict[int, float] = field(default_factory=dict)

    def start_of(self, node: DFGNode) -> float:
        return self.start_times.get(node.index, 0.0)


def _priorities(graph: DataFlowGraph) -> List[float]:
    """Priority = height: longest latency path from the node to a sink
    (classic critical-path list-scheduling priority)."""
    height = [0.0] * len(graph.nodes)
    for node in reversed(graph.nodes):
        succ_best = 0.0
        for succ_idx, dist in node.succs:
            if dist == 0 and succ_idx > node.index:
                succ_best = max(succ_best, height[succ_idx])
        height[node.index] = node.latency + succ_best
    return height


def list_schedule(graph: DataFlowGraph,
                  budget: ResourceBudget) -> ScheduleResult:
    """Schedule *graph* (one basic block) and return its latency.

    Per cycle, ready operations are issued in priority order while the
    cycle's port budgets allow; DSP-consuming operations additionally
    hold their DSP slices for their full latency (in-flight occupancy).
    """
    nodes = graph.nodes
    if not nodes:
        return ScheduleResult(latency=0.0)
    height = _priorities(graph)

    indegree = [0] * len(nodes)
    for node in nodes:
        indegree[node.index] = sum(
            1 for p, d in node.preds if d == 0 and p < node.index)

    #: earliest data-ready time per node
    ready_time = [0.0] * len(nodes)
    # Ready heap keyed by (ready cycle, -priority, index).
    heap: List = []
    for node in nodes:
        if indegree[node.index] == 0:
            heapq.heappush(heap, (0.0, -height[node.index], node.index))

    start: Dict[int, float] = {}
    finish = [0.0] * len(nodes)
    # per-cycle port usage: (cycle, class) -> used
    port_used: Dict[tuple, int] = {}
    # in-flight DSP usage as a list of (release_cycle, cost)
    dsp_inflight: List = []
    dsp_used = 0
    scheduled = 0
    cycle_guard = 0

    while heap:
        ready_at, neg_prio, idx = heapq.heappop(heap)
        node = nodes[idx]
        t = ready_at
        cycle_guard += 1
        if cycle_guard > 10 * len(nodes) * (len(nodes) + 64):
            raise RuntimeError("list scheduler failed to converge")

        # Retire finished DSP ops before checking occupancy at t.
        while dsp_inflight and dsp_inflight[0][0] <= t:
            _, cost = heapq.heappop(dsp_inflight)
            dsp_used -= cost

        limit = budget.issue_limit(node.op_class)
        cost = budget.dsp_cost(node.op_class)
        blocked = False
        if limit > 0 and port_used.get((t, node.op_class), 0) >= limit:
            blocked = True
        if cost > 0 and dsp_used + cost > budget.dsp_budget \
                and dsp_inflight:
            blocked = True
        if blocked:
            heapq.heappush(heap, (t + 1.0, neg_prio, idx))
            continue

        start[idx] = t
        finish[idx] = t + node.latency
        if limit > 0:
            port_used[(t, node.op_class)] = \
                port_used.get((t, node.op_class), 0) + 1
        if cost > 0:
            heapq.heappush(dsp_inflight, (t + max(node.latency, 1.0), cost))
            dsp_used += cost
        scheduled += 1

        for succ_idx, dist in node.succs:
            if dist != 0 or succ_idx < idx:
                continue
            ready_time[succ_idx] = max(ready_time[succ_idx], finish[idx])
            indegree[succ_idx] -= 1
            if indegree[succ_idx] == 0:
                heapq.heappush(heap, (ready_time[succ_idx],
                                      -height[succ_idx], succ_idx))

    if scheduled != len(nodes):
        raise RuntimeError(
            f"list scheduler left {len(nodes) - scheduled} ops unscheduled "
            f"(cyclic distance-0 dependence?)")
    return ScheduleResult(latency=max(finish, default=0.0),
                          start_times=start)
