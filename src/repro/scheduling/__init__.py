"""Operation scheduling algorithms (paper §3.3.1).

- :func:`list_schedule` — resource-aware priority-ordered list scheduling
  (ASAP) used to estimate basic-block latencies.
- :func:`compute_mii` — the minimum initiation interval,
  ``MII = max(RecMII, ResMII)`` (Eqs. 2–4).
- :func:`swing_modulo_schedule` — Swing Modulo Scheduling, refining the
  II above MII until every resource constraint is met and producing the
  pipeline depth.
"""

from repro.scheduling.resources import ResourceBudget
from repro.scheduling.list_scheduler import ScheduleResult, list_schedule
from repro.scheduling.mii import MIIBreakdown, compute_mii, compute_rec_mii, compute_res_mii
from repro.scheduling.sms import SMSResult, swing_modulo_schedule

__all__ = [
    "MIIBreakdown",
    "ResourceBudget",
    "SMSResult",
    "ScheduleResult",
    "compute_mii",
    "compute_rec_mii",
    "compute_res_mii",
    "list_schedule",
    "swing_modulo_schedule",
]
