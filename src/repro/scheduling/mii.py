"""Minimum initiation interval: MII = max(RecMII, ResMII) (Eqs. 2-4).

RecMII comes from inter-work-item dependence cycles: a work-item loads
what an earlier work-item stored; the pipeline cannot initiate new
work-items faster than the dependence path completes per unit distance.

ResMII comes from throughput limits: every work-item performs N_read
local reads and N_write local writes and occupies DSP-mapped cores; with
Port_read / Port_write ports and a finite DSP pool the steady-state
initiation interval is bounded below by Eq. 4 (and its DSP analogue).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.dfg import DataFlowGraph
from repro.analysis.memtrace import Recurrence, TraceAnalysis
from repro.scheduling.resources import ResourceBudget


@dataclass
class MIIBreakdown:
    """MII and its components, kept for diagnostics and ablations."""

    rec_mii: float
    res_mii_mem: float
    res_mii_dsp: float

    @property
    def res_mii(self) -> float:
        return max(self.res_mii_mem, self.res_mii_dsp)

    @property
    def mii(self) -> float:
        return max(self.rec_mii, self.res_mii, 1.0)


def compute_res_mii(budget: ResourceBudget,
                    local_reads_per_wi: float,
                    local_writes_per_wi: float,
                    dsp_cost_per_wi: float) -> MIIBreakdown:
    """ResMII from per-work-item resource usage (Eqs. 3-4)."""
    res_mem = max(
        math.ceil(local_reads_per_wi / max(budget.local_read_ports, 1)),
        math.ceil(local_writes_per_wi / max(budget.local_write_ports, 1)),
    )
    res_dsp = math.ceil(dsp_cost_per_wi / max(budget.dsp_budget, 1))
    return MIIBreakdown(rec_mii=1.0, res_mii_mem=float(max(res_mem, 1)),
                        res_mii_dsp=float(max(res_dsp, 1)))


def compute_rec_mii(graph: DataFlowGraph,
                    recurrences: Sequence[Recurrence],
                    site_to_node: dict) -> float:
    """RecMII = max over dependence cycles of ceil(latency / distance).

    Each profiled recurrence (store by work-item *i-d*, load by
    work-item *i*) closes a cycle: the forward path runs from the load
    through the data-flow graph to the store; the back edge carries
    distance *d*.
    """
    rec_mii = 1.0
    for rec in recurrences:
        load_node = site_to_node.get(rec.load_site)
        store_node = site_to_node.get(rec.store_site)
        if load_node is None or store_node is None:
            continue
        if load_node.index <= store_node.index:
            path = graph.longest_path_between(load_node, store_node)
        else:
            # The load appears after the store in program order: the
            # dependence wraps around the whole work-item body; use the
            # store->load path plus both op latencies as the cycle length.
            path = graph.longest_path_between(store_node, load_node)
        if path is None:
            path = load_node.latency + store_node.latency
        rec_mii = max(rec_mii, math.ceil(path / max(rec.distance, 1)))
    return float(rec_mii)


def compute_mii(graph: DataFlowGraph, budget: ResourceBudget,
                traces: TraceAnalysis,
                dsp_cost_per_wi: float) -> MIIBreakdown:
    """MII = max(RecMII, ResMII) (Eq. 2)."""
    site_to_node = _site_index(graph)
    breakdown = compute_res_mii(
        budget,
        local_reads_per_wi=traces.local_reads_per_wi,
        local_writes_per_wi=traces.local_writes_per_wi,
        dsp_cost_per_wi=dsp_cost_per_wi)
    breakdown.rec_mii = compute_rec_mii(graph, traces.recurrences,
                                        site_to_node)
    return breakdown


def _site_index(graph: DataFlowGraph) -> dict:
    """Site ids in trace order match the function's instruction order,
    which is how the executor numbered them; map them to DFG nodes."""
    mapping = {}
    for node in graph.nodes:
        site = getattr(node.inst, "site_id", None)
        if site is not None:
            mapping[site] = node
    return mapping
