"""Resource budgets visible to one processing element."""

from __future__ import annotations

from dataclasses import dataclass

from repro.latency.optable import DSP_COST, OpClass


@dataclass(frozen=True)
class ResourceBudget:
    """Per-PE resource constraints used by the schedulers.

    Port counts are per-cycle issue widths (BRAM accepts one access per
    port per cycle; the AXI master accepts one outstanding global issue
    per direction per cycle).  The DSP budget limits concurrently
    *in-flight* DSP-consuming operations.
    """

    local_read_ports: int = 2
    local_write_ports: int = 2
    global_read_ports: int = 1
    global_write_ports: int = 1
    dsp_budget: int = 220

    def issue_limit(self, cls: OpClass) -> int:
        """Per-cycle issue limit of an op class; 0 means unconstrained."""
        if cls == OpClass.LOCAL_READ:
            return self.local_read_ports
        if cls == OpClass.LOCAL_WRITE:
            return self.local_write_ports
        if cls in (OpClass.GLOBAL_ISSUE, OpClass.ATOMIC):
            # Reads and writes share per-direction AXI issue slots; the
            # schedulers treat the class as one slot per cycle per
            # direction and ask the instruction kind for the direction.
            return self.global_read_ports + self.global_write_ports
        return 0

    def dsp_cost(self, cls: OpClass) -> int:
        return DSP_COST[cls]

    @classmethod
    def for_pe(cls, device, num_pe: int = 1,
               num_cu: int = 1) -> "ResourceBudget":
        """The budget of a single PE when the device is divided among
        *num_cu* compute units of *num_pe* PEs each."""
        share = max(num_pe * num_cu, 1)
        return cls(
            local_read_ports=device.local_read_ports,
            local_write_ports=device.local_write_ports,
            global_read_ports=1,
            global_write_ports=1,
            dsp_budget=max(device.dsp_total // share, 1),
        )
