"""Swing Modulo Scheduling (Llosa et al., PACT'96), adapted to
work-item pipelines.

The paper's second step (§3.3.1): starting from MII, try to find a
modulo schedule of the work-item body; if placement fails under the
modulo reservation table, increase the II and retry.  The swing ordering
walks nodes by criticality, alternating direction so each node is placed
close to its already-placed neighbours (minimising lifetimes).

The scheduler operates on the whole-work-item data-flow graph with one
node per *static* operation.  Aggregate throughput constraints from
loop-repeated operations are already folded into MII (ResMII weights
operation counts by trip counts); the modulo reservation table here
resolves slot-level conflicts between distinct static operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dfg import DataFlowGraph
from repro.scheduling.resources import ResourceBudget

#: Give up raising the II beyond this multiple of the critical path.
_MAX_II_FACTOR = 4.0


@dataclass
class SMSResult:
    """The modulo schedule found for a work-item pipeline."""

    ii: float                      # achieved initiation interval, cycles
    depth: float                   # pipeline depth D_comp^PE, cycles
    start_times: Dict[int, float] = field(default_factory=dict)
    feasible: bool = True


def _asap_alap(graph: DataFlowGraph, ii: float):
    n = len(graph.nodes)
    asap = [0.0] * n
    for node in graph.nodes:
        best = 0.0
        for pred_idx, dist in node.preds:
            if pred_idx < node.index or dist > 0:
                best = max(best,
                           asap[pred_idx] + graph.nodes[pred_idx].latency
                           - dist * ii)
        asap[node.index] = max(best, 0.0)
    makespan = max((asap[i] + graph.nodes[i].latency for i in range(n)),
                   default=0.0)
    alap = [makespan] * n
    for node in reversed(graph.nodes):
        best = makespan
        for succ_idx, dist in node.succs:
            if succ_idx > node.index or dist > 0:
                best = min(best, alap[succ_idx] - node.latency + dist * ii)
        alap[node.index] = max(best - 0.0, asap[node.index])
    return asap, alap


def _swing_order(graph: DataFlowGraph, asap, alap) -> List[int]:
    """Order nodes by increasing mobility (alap - asap), tie-broken by
    criticality (earlier ALAP first), the essence of the swing ordering."""
    indices = list(range(len(graph.nodes)))
    indices.sort(key=lambda i: (alap[i] - asap[i], alap[i], i))
    return indices


def swing_modulo_schedule(graph: DataFlowGraph, budget: ResourceBudget,
                          mii: float,
                          max_ii: Optional[float] = None) -> SMSResult:
    """Find (II, depth) for the work-item pipeline.

    Tries II = MII, MII+1, ... until a placement satisfying the modulo
    reservation table and all dependence constraints exists.
    """
    nodes = graph.nodes
    if not nodes:
        return SMSResult(ii=max(mii, 1.0), depth=1.0)
    critical = graph.critical_path()
    if max_ii is None:
        max_ii = max(mii, critical) * _MAX_II_FACTOR + 8
    ii = max(float(math.ceil(mii)), 1.0)
    while ii <= max_ii:
        placed = _try_schedule(graph, budget, ii)
        if placed is not None:
            depth = max(placed[i] + nodes[i].latency
                        for i in range(len(nodes)))
            return SMSResult(ii=ii, depth=max(depth, 1.0),
                             start_times=dict(enumerate(placed)))
        ii += 1.0
    # Fall back to fully serial initiation.
    return SMSResult(ii=max(critical, mii, 1.0),
                     depth=max(critical, 1.0), feasible=False)


def _try_schedule(graph: DataFlowGraph, budget: ResourceBudget,
                  ii: float) -> Optional[List[float]]:
    nodes = graph.nodes
    asap, alap = _asap_alap(graph, ii)
    order = _swing_order(graph, asap, alap)
    start: List[Optional[float]] = [None] * len(nodes)
    # Modulo reservation table: (slot, op_class) -> used count.
    mrt: Dict[tuple, int] = {}
    slots = int(ii)

    for idx in order:
        node = nodes[idx]
        earliest = asap[idx]
        for pred_idx, dist in node.preds:
            if start[pred_idx] is not None:
                earliest = max(earliest,
                               start[pred_idx] + nodes[pred_idx].latency
                               - dist * ii)
        latest_bound = earliest + ii - 1
        # Respect already-placed successors (swing places neighbours of
        # scheduled nodes near them).
        for succ_idx, dist in node.succs:
            if start[succ_idx] is not None:
                latest_bound = min(
                    latest_bound,
                    start[succ_idx] - node.latency + dist * ii)
        if latest_bound < earliest:
            return None
        limit = budget.issue_limit(node.op_class)
        t = earliest
        placed_ok = False
        while t <= latest_bound:
            if limit <= 0:
                placed_ok = True
                break
            slot = int(t) % max(slots, 1)
            if mrt.get((slot, node.op_class), 0) < limit:
                placed_ok = True
                break
            t += 1
        if not placed_ok:
            return None
        start[idx] = t
        if limit > 0:
            slot = int(t) % max(slots, 1)
            mrt[(slot, node.op_class)] = mrt.get((slot, node.op_class),
                                                 0) + 1
    # Final dependence check (distance edges may wrap).
    for node in nodes:
        for succ_idx, dist in node.succs:
            if start[node.index] + node.latency - dist * ii \
                    > start[succ_idx] + 1e-9:
                return None
    return [s if s is not None else 0.0 for s in start]
