"""Experiment harness shared by the benchmark suite and EXPERIMENTS.md.

Implements the paper's evaluation methodology (§4): per-kernel design
spaces, accuracy of FlexCL and the SDAccel-style estimator against
System Run, exploration-time accounting, and the DSE quality studies.
"""

from repro.evaluation.harness import (
    DesignRecord,
    KernelAccuracy,
    estimate_synthesis_time,
    evaluate_accuracy,
    make_analyzer,
    sample_designs,
)
from repro.evaluation.dse_study import DSEStudy, run_dse_study
from repro.evaluation.suite import (
    SuitePrediction,
    SuiteResult,
    default_suite_workloads,
    run_suite,
)

__all__ = [
    "DSEStudy",
    "DesignRecord",
    "KernelAccuracy",
    "SuitePrediction",
    "SuiteResult",
    "default_suite_workloads",
    "estimate_synthesis_time",
    "evaluate_accuracy",
    "make_analyzer",
    "run_dse_study",
    "run_suite",
    "sample_designs",
]
