"""Parallel batch evaluation of the whole workload catalog.

:func:`run_suite` is the front end the persistent cache was built for:
it fans the Rodinia/PolyBench catalog across a forked process pool,
analyses every kernel at every feasible work-group size, and predicts a
deterministic sample of design points per kernel with the FlexCL model.
All workers share one on-disk :class:`~repro.cache.ArtifactCache`, so
the first (cold) run populates the store and every later run — in this
process or any other — warm-starts in seconds.

Predictions are pure functions of (kernel, design, device): a warm
suite run is row-for-row bit-identical to a cold or uncached one, which
``benchmarks/bench_suite_cache.py`` and the test suite assert.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.store import StoreStats
from repro.dse.explorer import resolve_jobs
from repro.dse.space import DesignSpace
from repro.evaluation.harness import make_analyzer, sample_designs
from repro.model import FlexCL
from repro.workloads.base import Workload


@dataclass
class SuitePrediction:
    """One predicted design point of one workload."""

    workload: str          # qualified name, e.g. 'rodinia/nw/kernel1'
    design: str            # design signature
    cycles: float
    #: which engine produced the analysis traces ("synth" /
    #: "vectorized" / "scalar"); provenance only — rows() stays a
    #: 3-tuple so prediction equality checks are engine-agnostic
    trace_source: str = "scalar"
    #: architecture-independent feature vector of this (kernel, design)
    #: point, in :data:`repro.surrogate.FEATURE_NAMES` order — only
    #: populated by ``run_suite(..., collect_features=True)``
    features: Optional[Tuple[float, ...]] = None

    def row(self) -> Tuple[str, str, float]:
        return (self.workload, self.design, self.cycles)


@dataclass
class SuiteResult:
    """The outcome of one batch evaluation."""

    predictions: List[SuitePrediction] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    jobs: int = 1
    workloads_evaluated: int = 0
    #: persistent-store counters aggregated across all workers
    #: (None when the suite ran uncached)
    store_stats: Optional[StoreStats] = None

    def rows(self) -> List[Tuple[str, str, float]]:
        """The predictions as plain sortable tuples (for equality
        checks between runs)."""
        return [p.row() for p in self.predictions]

    def by_workload(self) -> Dict[str, List[SuitePrediction]]:
        out: Dict[str, List[SuitePrediction]] = {}
        for p in self.predictions:
            out.setdefault(p.workload, []).append(p)
        return out

    def trace_sources(self) -> Dict[str, int]:
        """Prediction counts per trace engine, e.g.
        ``{"synth": 410, "vectorized": 96}`` — how each analysis
        behind each prediction got its traces."""
        out: Dict[str, int] = {}
        for p in self.predictions:
            out[p.trace_source] = out.get(p.trace_source, 0) + 1
        return out


def _evaluate_workload(workload: Workload, device, cache,
                       designs_per_kernel: int,
                       static_trace: str = "auto",
                       interp: str = "auto",
                       collect_features: bool = False
                       ) -> List[SuitePrediction]:
    """Analyse one workload and predict its sampled design points."""
    analyzer = make_analyzer(workload, device, cache=cache,
                             static_trace=static_trace, interp=interp)
    space = DesignSpace.default_for(workload.global_size)
    designs = sample_designs(workload, device, space,
                             designs_per_kernel, analyzer)
    model = FlexCL(device, cache=cache)
    out: List[SuitePrediction] = []
    for design in designs:
        info = analyzer(design.work_group_size)
        if info is None:
            continue
        features: Optional[Tuple[float, ...]] = None
        if collect_features:
            from repro.surrogate.features import feature_vector
            features = tuple(float(v)
                             for v in feature_vector(info, design))
        out.append(SuitePrediction(
            workload=workload.qualified_name,
            design=design.signature(),
            cycles=model.predict(info, design).cycles,
            trace_source=getattr(info, "trace_source", "scalar"),
            features=features))
    return out


#: fork-inherited worker context (workload factories hold closures, so
#: nothing here may cross a pickle boundary)
_SUITE_STATE: Optional[tuple] = None


def _run_suite_shard(indices: List[int]
                     ) -> Tuple[List[Tuple[int, List[SuitePrediction]]],
                                StoreStats]:
    (workloads, device, cache, designs_per_kernel,
     static_trace, interp, collect_features) = _SUITE_STATE
    before = cache.stats.copy() if cache is not None else StoreStats()
    out = [(i, _evaluate_workload(workloads[i], device, cache,
                                  designs_per_kernel, static_trace,
                                  interp, collect_features))
           for i in indices]
    after = cache.stats.copy() if cache is not None else StoreStats()
    return out, after - before


def run_suite(workloads: Sequence[Workload], device,
              jobs=None, cache=None,
              designs_per_kernel: int = 8,
              static_trace: str = "auto",
              interp: str = "auto",
              collect_features: bool = False) -> SuiteResult:
    """Predict *designs_per_kernel* sampled design points for every
    workload in *workloads* on *device*.

    *jobs* fans workloads out over forked worker processes (``'auto'``
    = one per core, capped at the workload count); all workers read and
    write the shared persistent *cache*, so parallel cold runs warm the
    store cooperatively and warm runs are embarrassingly fast.  Results
    are returned in catalog order and are identical for any *jobs*
    value and any cache state.

    *collect_features* attaches the architecture-independent surrogate
    feature vector to every prediction (see :mod:`repro.surrogate`) —
    the training-data hook behind ``repro suite --export-features``.
    """
    start = time.perf_counter()
    workloads = list(workloads)
    n_jobs = resolve_jobs(jobs, limit=len(workloads))
    result = SuiteResult(workloads_evaluated=len(workloads))

    use_parallel = (n_jobs > 1 and len(workloads) > 1
                    and "fork" in multiprocessing.get_all_start_methods())
    if use_parallel:
        import concurrent.futures

        global _SUITE_STATE
        n_jobs = min(n_jobs, len(workloads))
        shards = [list(range(s, len(workloads), n_jobs))
                  for s in range(n_jobs)]
        _SUITE_STATE = (workloads, device, cache, designs_per_kernel,
                        static_trace, interp, collect_features)
        try:
            ctx = multiprocessing.get_context("fork")
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=n_jobs, mp_context=ctx) as pool:
                outcomes = list(pool.map(_run_suite_shard, shards))
        finally:
            _SUITE_STATE = None
        merged: List[Optional[List[SuitePrediction]]] = \
            [None] * len(workloads)
        total = StoreStats()
        for entries, stats in outcomes:
            total = total + stats
            for index, preds in entries:
                merged[index] = preds
        for preds in merged:
            result.predictions.extend(preds or [])
        result.jobs = n_jobs
        result.store_stats = total if cache is not None else None
    else:
        before = cache.stats.copy() if cache is not None else None
        for workload in workloads:
            result.predictions.extend(
                _evaluate_workload(workload, device, cache,
                                   designs_per_kernel, static_trace,
                                   interp, collect_features))
        if before is not None:
            result.store_stats = cache.stats - before

    result.elapsed_seconds = time.perf_counter() - start
    return result


def default_suite_workloads(suite: Optional[str] = None,
                            limit: int = 0) -> List[Workload]:
    """The workload catalog for a suite run: both suites by default,
    optionally filtered to 'rodinia'/'polybench' and truncated to the
    first *limit* kernels (0 = all)."""
    from repro.workloads import polybench_workloads, rodinia_workloads
    if suite == "rodinia":
        catalog = rodinia_workloads()
    elif suite == "polybench":
        catalog = polybench_workloads()
    elif suite is None:
        catalog = rodinia_workloads() + polybench_workloads()
    else:
        raise ValueError(f"unknown suite {suite!r}")
    if limit > 0:
        catalog = catalog[:limit]
    return catalog
