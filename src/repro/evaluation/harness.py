"""Accuracy evaluation harness (Table 2 / PolyBench methodology)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis import analyze_kernel
from repro.analysis.kernel_info import DEFAULT_PROFILE_GROUPS, KernelInfo
from repro.baselines import SDAccelEstimator, SDAccelFailure
from repro.dse.space import Design, DesignSpace, check_feasibility
from repro.latency.microbench import _stable_hash
from repro.model import FlexCL
from repro.simulator import SystemRun
from repro.workloads.base import Workload


def make_analyzer(workload: Workload, device,
                  profile_groups: Optional[int] = None,
                  cache=None, static_trace: str = "auto",
                  interp: str = "auto"
                  ) -> Callable[[int], Optional[KernelInfo]]:
    """Returns a cached ``analyze(wg_size) -> KernelInfo`` for one
    workload.  Returns None for work-group sizes the kernel cannot run
    at (analysis raising is treated as 'this configuration does not
    build').  With a persistent *cache*
    (:class:`repro.cache.ArtifactCache`), analyses are additionally
    content-addressed on disk and shared across processes.
    *static_trace* and *interp* are forwarded to
    :func:`~repro.analysis.analyze_kernel`: kernels the access-summary
    engine proves STATIC get synthesized traces (the kernel function is
    compiled once and the summary is memoized on it, so a DSE sweep
    pays the proof once for all work-group sizes), and the rest are
    profiled by the lane-vectorized or scalar interpreter."""
    memo: Dict[int, Optional[KernelInfo]] = {}

    def analyze(wg_size: int) -> Optional[KernelInfo]:
        if wg_size not in memo:
            try:
                memo[wg_size] = analyze_kernel(
                    workload.function(), workload.make_buffers(),
                    workload.scalars, workload.ndrange(wg_size),
                    device,
                    profile_groups=(profile_groups
                                    or DEFAULT_PROFILE_GROUPS),
                    cache=cache, static_trace=static_trace,
                    interp=interp)
            except Exception:
                memo[wg_size] = None
        return memo[wg_size]

    return analyze


def sample_designs(workload: Workload, device,
                   space: Optional[DesignSpace] = None,
                   max_designs: Optional[int] = None,
                   analyzer: Optional[Callable] = None) -> List[Design]:
    """The feasible design points for a workload, deterministically
    subsampled to *max_designs* (the benches simulate a subset; the
    reported #Designs is the full feasible count)."""
    if space is None:
        space = DesignSpace.default_for(workload.global_size)
    if analyzer is None:
        analyzer = make_analyzer(workload, device)
    feasible: List[Design] = []
    for design in space:
        info = analyzer(design.work_group_size)
        if info is None:
            continue
        if check_feasibility(info, design, device) is None:
            feasible.append(design)
    if max_designs is None or len(feasible) <= max_designs:
        return feasible
    keyed = sorted(
        feasible,
        key=lambda d: _stable_hash("sample", workload.qualified_name,
                                   d.signature()))
    return sorted(keyed[:max_designs],
                  key=lambda d: d.signature())


@dataclass
class DesignRecord:
    """One evaluated design point."""

    design: Design
    actual_cycles: float
    flexcl_cycles: float
    sdaccel_cycles: Optional[float]    # None == estimator failed

    @property
    def flexcl_error(self) -> float:
        return abs(self.flexcl_cycles - self.actual_cycles) \
            / self.actual_cycles * 100.0

    @property
    def sdaccel_error(self) -> Optional[float]:
        if self.sdaccel_cycles is None:
            return None
        return abs(self.sdaccel_cycles - self.actual_cycles) \
            / self.actual_cycles * 100.0


@dataclass
class KernelAccuracy:
    """Per-kernel Table 2 row."""

    workload: Workload
    n_designs_total: int               # feasible design-space size
    records: List[DesignRecord] = field(default_factory=list)
    flexcl_seconds: float = 0.0        # measured model time (all records)
    simulate_seconds: float = 0.0      # measured simulator time

    @property
    def flexcl_mean_error(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.flexcl_error for r in self.records) \
            / len(self.records)

    @property
    def sdaccel_mean_error(self) -> Optional[float]:
        errors = [r.sdaccel_error for r in self.records
                  if r.sdaccel_error is not None]
        if not errors:
            return None
        return sum(errors) / len(errors)

    @property
    def sdaccel_failure_rate(self) -> float:
        if not self.records:
            return 0.0
        failed = sum(1 for r in self.records if r.sdaccel_cycles is None)
        return failed / len(self.records) * 100.0


def estimate_synthesis_time(workload: Workload, n_designs: int,
                            flow: str) -> float:
    """Extrapolated wall-clock of the real flows (we have no Vivado):
    System Run full synthesis averages ~45 min/design and SDAccel HLS
    ~35 s/design on the paper's host, with per-kernel spread keyed
    deterministically on the kernel name.  Returns hours for
    'system_run' and minutes for 'sdaccel'."""
    h = _stable_hash("synthtime", flow, workload.qualified_name) % 1000
    if flow == "system_run":
        per_design_hours = 0.45 + 0.75 * (h / 1000.0)   # 27-72 min
        return per_design_hours * n_designs
    if flow == "sdaccel":
        per_design_minutes = 0.35 + 0.55 * (h / 1000.0)  # 21-54 s
        return per_design_minutes * n_designs
    raise ValueError(f"unknown flow {flow!r}")


def evaluate_accuracy(workload: Workload, device,
                      space: Optional[DesignSpace] = None,
                      max_designs: Optional[int] = 24,
                      cache=None) -> KernelAccuracy:
    """Evaluate FlexCL and the SDAccel estimator against System Run on
    a (sub)sampled design space of one kernel.  *cache* warm-starts the
    kernel analyses and model sub-results from disk."""
    analyzer = make_analyzer(workload, device, cache=cache)
    if space is None:
        space = DesignSpace.default_for(workload.global_size)
    all_feasible = sample_designs(workload, device, space, None, analyzer)
    designs = sample_designs(workload, device, space, max_designs,
                             analyzer)

    model = FlexCL(device, cache=cache)
    estimator = SDAccelEstimator(device)
    simulator = SystemRun(device)
    result = KernelAccuracy(workload=workload,
                            n_designs_total=len(all_feasible))

    for design in designs:
        info = analyzer(design.work_group_size)
        if info is None:
            continue
        t0 = time.perf_counter()
        flexcl_cycles = model.predict(info, design).cycles
        result.flexcl_seconds += time.perf_counter() - t0

        try:
            sdaccel_cycles = estimator.estimate(info, design)
        except SDAccelFailure:
            sdaccel_cycles = None

        t0 = time.perf_counter()
        actual = simulator.run(info, design).cycles
        result.simulate_seconds += time.perf_counter() - t0

        result.records.append(DesignRecord(
            design=design, actual_cycles=actual,
            flexcl_cycles=flexcl_cycles,
            sdaccel_cycles=sdaccel_cycles))
    return result
