"""Design-space-exploration studies (§4.3).

Three headline numbers are reproduced:

- exploration speed-up of FlexCL over System Run (paper: >10,000x);
- quality of the design FlexCL's exhaustive sweep picks, validated on
  System Run (paper: within 2.1% of the true optimum; 273x over the
  unoptimised baseline design);
- fraction of kernels where the picked design is the true optimum,
  FlexCL-exhaustive vs the HPCA'16 coarse model + step-by-step
  heuristic (paper: 96% vs 12% on PolyBench).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines import CoarseModel
from repro.dse import (
    Design,
    DesignSpace,
    check_feasibility,
    step_by_step_search,
)
from repro.evaluation.harness import make_analyzer, sample_designs
from repro.model import FlexCL
from repro.simulator import SystemRun
from repro.workloads.base import Workload


@dataclass
class DSEStudy:
    """All §4.3 quantities for one kernel."""

    workload: Workload
    n_designs: int
    flexcl_seconds: float              # exhaustive model sweep time
    simulate_seconds: float            # exhaustive System-Run sweep time
    best_actual_cycles: float          # true optimum (System Run sweep)
    flexcl_pick_actual_cycles: float   # System Run of FlexCL's pick
    heuristic_pick_actual_cycles: Optional[float]
    baseline_cycles: float             # unoptimised design, System Run

    @property
    def flexcl_gap_pct(self) -> float:
        """How far FlexCL's pick is from the true optimum."""
        return (self.flexcl_pick_actual_cycles - self.best_actual_cycles) \
            / self.best_actual_cycles * 100.0

    @property
    def flexcl_pick_is_optimal(self) -> bool:
        return self.flexcl_pick_actual_cycles \
            <= self.best_actual_cycles * 1.0 + 1e-9

    @property
    def heuristic_pick_is_optimal(self) -> Optional[bool]:
        if self.heuristic_pick_actual_cycles is None:
            return None
        return self.heuristic_pick_actual_cycles \
            <= self.best_actual_cycles + 1e-9

    @property
    def speedup_over_baseline(self) -> float:
        return self.baseline_cycles \
            / max(self.flexcl_pick_actual_cycles, 1e-9)

    @property
    def exploration_speedup(self) -> float:
        """Simulated-System-Run sweep time over FlexCL sweep time."""
        return self.simulate_seconds / max(self.flexcl_seconds, 1e-9)


def run_dse_study(workload: Workload, device,
                  space: Optional[DesignSpace] = None,
                  max_designs: int = 48) -> DSEStudy:
    """Exhaustively explore with both FlexCL and System Run, then
    compare pick quality (and the coarse+heuristic comparator)."""
    if space is None:
        space = DesignSpace.default_for(workload.global_size)
    analyzer = make_analyzer(workload, device)
    designs = sample_designs(workload, device, space, max_designs,
                             analyzer)
    if not designs:
        raise ValueError(
            f"{workload.qualified_name}: no feasible designs")

    model = FlexCL(device)
    simulator = SystemRun(device)
    coarse = CoarseModel(device)

    # Exhaustive sweeps over the same sampled sub-space.
    t0 = time.perf_counter()
    flexcl_cycles: Dict[Design, float] = {}
    for design in designs:
        info = analyzer(design.work_group_size)
        flexcl_cycles[design] = model.predict(info, design).cycles
    flexcl_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    actual_cycles: Dict[Design, float] = {}
    for design in designs:
        info = analyzer(design.work_group_size)
        actual_cycles[design] = simulator.run(info, design).cycles
    simulate_seconds = time.perf_counter() - t0

    best_design = min(actual_cycles, key=actual_cycles.get)
    flexcl_pick = min(flexcl_cycles, key=flexcl_cycles.get)

    # Coarse model + step-by-step heuristic, restricted to the same
    # sampled sub-space by evaluating non-members as infeasible.
    member = set(designs)

    def coarse_eval(info, design: Design) -> float:
        if design not in member:
            return float("inf")
        return coarse.estimate(info, design)

    heuristic_pick = step_by_step_search(space, analyzer, coarse_eval,
                                         device)
    heuristic_actual = (actual_cycles.get(heuristic_pick)
                        if heuristic_pick is not None else None)
    if heuristic_pick is not None and heuristic_actual is None:
        info = analyzer(heuristic_pick.work_group_size)
        if info is not None and check_feasibility(
                info, heuristic_pick, device) is None:
            heuristic_actual = simulator.run(info, heuristic_pick).cycles

    # Unoptimised baseline: smallest work-group, no pipeline, 1 PE/CU.
    baseline = Design(
        work_group_size=designs[0].work_group_size,
        work_item_pipeline=False, num_pe=1, num_cu=1,
        vector_width=1, comm_mode="barrier")
    info = analyzer(baseline.work_group_size)
    baseline_cycles = simulator.run(info, baseline).cycles

    return DSEStudy(
        workload=workload,
        n_designs=len(designs),
        flexcl_seconds=flexcl_seconds,
        simulate_seconds=simulate_seconds,
        best_actual_cycles=actual_cycles[best_design],
        flexcl_pick_actual_cycles=actual_cycles[flexcl_pick],
        heuristic_pick_actual_cycles=heuristic_actual,
        baseline_cycles=baseline_cycles,
    )
