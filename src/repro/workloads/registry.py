"""Top-level workload access."""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload
from repro.workloads.polybench import POLYBENCH
from repro.workloads.rodinia import RODINIA


def rodinia_workloads() -> List[Workload]:
    """The 45 Rodinia kernels of the paper's Table 2."""
    return RODINIA.all()


def polybench_workloads() -> List[Workload]:
    """The PolyBench suite (§4.2's second accuracy experiment)."""
    return POLYBENCH.all()


def all_workloads() -> List[Workload]:
    """Both suites concatenated: Rodinia then PolyBench."""
    return rodinia_workloads() + polybench_workloads()


def get_workload(suite: str, benchmark: str, kernel: str) -> Workload:
    """Look one kernel up by (suite, benchmark, kernel name)."""
    registry = {"rodinia": RODINIA, "polybench": POLYBENCH}[suite]
    return registry.get(benchmark, kernel)
