"""Additional PolyBench kernels: gemver, trmm, doitgen, symm, lu,
seidel-2d, adi — rounding out the suite's coverage of BLAS-like and
solver/stencil shapes."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N = 32
_SIZE = _N * _N

GEMVER_SRC = r"""
// The main gemver phase: x = y + beta * (A + u1 v1^T + u2 v2^T)^T z.
__kernel void gemver(__global const float* A,
                     __global const float* u1, __global const float* v1,
                     __global const float* u2, __global const float* v2,
                     __global const float* z,
                     __global float* x,
                     float beta, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j < 32; j++) {
            float ahat = A[j * 32 + i] + u1[j] * v1[i] + u2[j] * v2[i];
            acc += ahat * z[j];
        }
        x[i] = x[i] + beta * acc;
    }
}
"""

TRMM_SRC = r"""
// B = alpha * L * B with L unit-lower-triangular (row update form).
__kernel void trmm(__global const float* L,
                   __global float* B,
                   float alpha, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = B[tid];
        for (int k = 0; k < 32; k++) {
            if (k > i) {
                acc += L[k * 32 + i] * B[k * 32 + j];
            }
        }
        B[tid] = alpha * acc;
    }
}
"""

DOITGEN_SRC = r"""
// sum[p] = sum_s A[r][q][s] * C4[s][p], one (r, q, p) per work-item.
__kernel void doitgen(__global const float* A,
                      __global const float* C4,
                      __global float* sum,
                      int nr, int nq, int np) {
    int tid = get_global_id(0);
    int total = 8 * 8 * 16;
    if (tid < total) {
        int p = tid % 16;
        int rq = tid / 16;
        float acc = 0.0f;
        for (int s = 0; s < 16; s++) {
            acc += A[rq * 16 + s] * C4[s * 16 + p];
        }
        sum[tid] = acc;
    }
}
"""

SYMM_SRC = r"""
// C = alpha * A * B + beta * C with A symmetric (stored full here).
__kernel void symm(__global const float* A,
                   __global const float* B,
                   __global float* C,
                   float alpha, float beta, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += A[i * 32 + k] * B[k * 32 + j];
        }
        C[tid] = alpha * acc + beta * C[tid];
    }
}
"""

LU_SRC = r"""
// One elimination step of LU without pivoting: update the trailing
// submatrix for pivot column k.
__kernel void lu(__global float* A, int k, int n) {
    int tid = get_global_id(0);
    int span = n - k - 1;
    if (tid < span * span) {
        int i = tid / span + k + 1;
        int j = tid % span + k + 1;
        A[i * 32 + j] -= A[i * 32 + k] / A[k * 32 + k]
                       * A[k * 32 + j];
    }
}
"""

SEIDEL_SRC = r"""
// One red/black half-sweep of Seidel-2d: update cells of one colour
// from the 9-point neighbourhood (the parallelisable formulation).
__kernel void seidel2d(__global const float* in,
                       __global float* out,
                       int colour, int dim) {
    int tid = get_global_id(0);
    int n = dim * dim;
    if (tid < n) {
        int i = tid / 32;
        int j = tid % 32;
        if (i >= 1 && i < 31 && j >= 1 && j < 31
                && ((i + j) & 1) == colour) {
            out[tid] = (in[tid - 33] + in[tid - 32] + in[tid - 31]
                      + in[tid - 1] + in[tid] + in[tid + 1]
                      + in[tid + 31] + in[tid + 32] + in[tid + 33])
                     / 9.0f;
        } else {
            out[tid] = in[tid];
        }
    }
}
"""

ADI_SRC = r"""
// The column-sweep update of ADI (tridiagonal-like relaxation along
// columns, one column per work-item).
__kernel void adi(__global float* X,
                  __global const float* A,
                  __global const float* B,
                  int dim) {
    int j = get_global_id(0);
    if (j < dim) {
        for (int i = 1; i < 32; i++) {
            X[i * 32 + j] = X[i * 32 + j]
                - X[(i - 1) * 32 + j] * A[i * 32 + j]
                / B[(i - 1) * 32 + j];
        }
    }
}
"""

_ALPHA, _BETA = 1.5, 0.5


def _gemver_buffers():
    r = rng(2401)
    x = r.standard_normal(_N).astype(np.float32)
    return {
        "A": Buffer("A", r.standard_normal(_SIZE).astype(np.float32)),
        "u1": Buffer("u1", r.standard_normal(_N).astype(np.float32)),
        "v1": Buffer("v1", r.standard_normal(_N).astype(np.float32)),
        "u2": Buffer("u2", r.standard_normal(_N).astype(np.float32)),
        "v2": Buffer("v2", r.standard_normal(_N).astype(np.float32)),
        "z": Buffer("z", r.standard_normal(_N).astype(np.float32)),
        "x": Buffer("x", x),
    }


def _gemver_reference(inputs):
    a = inputs["A"].reshape(_N, _N).astype(np.float64)
    ahat = (a + np.outer(inputs["u1"], inputs["v1"])
            + np.outer(inputs["u2"], inputs["v2"]))
    x = inputs["x"] + _BETA * (ahat.T @ inputs["z"].astype(np.float64))
    return {"x": x.astype(np.float32)}


def _trmm_buffers():
    r = rng(2402)
    return {
        "L": Buffer("L", r.standard_normal(_SIZE).astype(np.float32)),
        "B": Buffer("B", r.standard_normal(_SIZE).astype(np.float32)),
    }


def _trmm_reference(inputs):
    low = inputs["L"].reshape(_N, _N).astype(np.float64)
    b = inputs["B"].reshape(_N, _N).astype(np.float64)
    out = b.copy()
    for i in range(_N):
        for j in range(_N):
            acc = b[i, j]
            for k in range(i + 1, _N):
                acc += low[k, i] * b[k, j]
            out[i, j] = _ALPHA * acc
    return {"B": out.reshape(-1).astype(np.float32)}


_NR, _NQ, _NP = 8, 8, 16


def _doitgen_buffers():
    r = rng(2403)
    return {
        "A": Buffer("A", r.standard_normal(_NR * _NQ * _NP)
                    .astype(np.float32)),
        "C4": Buffer("C4", r.standard_normal(_NP * _NP)
                     .astype(np.float32)),
        "sum": Buffer("sum", np.zeros(_NR * _NQ * _NP, np.float32)),
    }


def _doitgen_reference(inputs):
    a = inputs["A"].reshape(_NR * _NQ, _NP).astype(np.float64)
    c4 = inputs["C4"].reshape(_NP, _NP).astype(np.float64)
    return {"sum": (a @ c4).reshape(-1).astype(np.float32)}


def _symm_buffers():
    r = rng(2404)
    a = r.standard_normal((_N, _N)).astype(np.float32)
    a = (a + a.T) / 2
    return {
        "A": Buffer("A", a.reshape(-1).copy()),
        "B": Buffer("B", r.standard_normal(_SIZE).astype(np.float32)),
        "C": Buffer("C", r.standard_normal(_SIZE).astype(np.float32)),
    }


def _symm_reference(inputs):
    a = inputs["A"].reshape(_N, _N).astype(np.float64)
    b = inputs["B"].reshape(_N, _N).astype(np.float64)
    c = inputs["C"].reshape(_N, _N).astype(np.float64)
    return {"C": (_ALPHA * (a @ b) + _BETA * c)
            .reshape(-1).astype(np.float32)}


_K = 4
_LU_SPAN = _N - _K - 1
_LU_GLOBAL = 736          # next multiple of 32 above span*span (729)


def _lu_buffers():
    r = rng(2405)
    a = r.standard_normal((_N, _N)).astype(np.float32)
    np.fill_diagonal(a, a.diagonal() + _N)
    return {"A": Buffer("A", a.reshape(-1))}


def _lu_reference(inputs):
    a = inputs["A"].reshape(_N, _N).astype(np.float32).copy()
    piv = a[_K, _K]
    for i in range(_K + 1, _N):
        factor = np.float32(a[i, _K] / piv)
        for j in range(_K + 1, _N):
            a[i, j] = np.float32(a[i, j]
                                 - factor * a[_K, j])
    return {"A": a.reshape(-1)}


def _seidel_buffers():
    r = rng(2406)
    return {
        "in": Buffer("in", r.standard_normal(_SIZE).astype(np.float32)),
        "out": Buffer("out", np.zeros(_SIZE, np.float32)),
    }


def _seidel_reference(inputs):
    grid = inputs["in"].reshape(_N, _N).astype(np.float64)
    out = grid.copy()
    for i in range(1, _N - 1):
        for j in range(1, _N - 1):
            if (i + j) % 2 == 0:
                out[i, j] = grid[i - 1:i + 2, j - 1:j + 2].sum() / 9.0
    return {"out": out.reshape(-1).astype(np.float32)}


def _adi_buffers():
    r = rng(2407)
    return {
        "X": Buffer("X", r.standard_normal(_SIZE).astype(np.float32)),
        "A": Buffer("A", (r.random(_SIZE) * 0.4 + 0.1)
                    .astype(np.float32)),
        "B": Buffer("B", (r.random(_SIZE) + 1.0).astype(np.float32)),
    }


def _adi_reference(inputs):
    x = inputs["X"].reshape(_N, _N).astype(np.float32).copy()
    a = inputs["A"].reshape(_N, _N)
    b = inputs["B"].reshape(_N, _N)
    for i in range(1, _N):
        x[i] = (x[i] - x[i - 1] * a[i] / b[i - 1]).astype(np.float32)
    return {"X": x.reshape(-1)}


WORKLOADS = [
    Workload(suite="polybench", benchmark="gemver", kernel="gemver",
             source=GEMVER_SRC, global_size=_N, default_local_size=32,
             make_buffers=_gemver_buffers,
             scalars={"beta": _BETA, "n": _N},
             reference=_gemver_reference),
    Workload(suite="polybench", benchmark="trmm", kernel="trmm",
             source=TRMM_SRC, global_size=_SIZE, default_local_size=64,
             make_buffers=_trmm_buffers,
             scalars={"alpha": _ALPHA, "n": _N},
             reference=_trmm_reference),
    Workload(suite="polybench", benchmark="doitgen", kernel="doitgen",
             source=DOITGEN_SRC, global_size=_NR * _NQ * _NP,
             default_local_size=64, make_buffers=_doitgen_buffers,
             scalars={"nr": _NR, "nq": _NQ, "np": _NP},
             reference=_doitgen_reference),
    Workload(suite="polybench", benchmark="symm", kernel="symm",
             source=SYMM_SRC, global_size=_SIZE, default_local_size=64,
             make_buffers=_symm_buffers,
             scalars={"alpha": _ALPHA, "beta": _BETA, "n": _N},
             reference=_symm_reference),
    Workload(suite="polybench", benchmark="lu", kernel="lu",
             source=LU_SRC, global_size=_LU_GLOBAL,
             default_local_size=32, make_buffers=_lu_buffers,
             scalars={"k": _K, "n": _N},
             reference=_lu_reference),
    Workload(suite="polybench", benchmark="seidel-2d", kernel="seidel2d",
             source=SEIDEL_SRC, global_size=_SIZE,
             default_local_size=64, make_buffers=_seidel_buffers,
             scalars={"colour": 0, "dim": _N},
             reference=_seidel_reference),
    Workload(suite="polybench", benchmark="adi", kernel="adi",
             source=ADI_SRC, global_size=_N, default_local_size=16,
             make_buffers=_adi_buffers, scalars={"dim": _N},
             reference=_adi_reference),
]
