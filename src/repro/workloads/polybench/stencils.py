"""PolyBench stencil kernels: jacobi-1d, jacobi-2d, fdtd-2d."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N1 = 4096           # jacobi-1d length
_DIM = 48            # jacobi-2d / fdtd-2d grid edge
_N2 = _DIM * _DIM

JACOBI1D_SRC = r"""
__kernel void jacobi1d(__global const float* A,
                       __global float* B, int n) {
    int tid = get_global_id(0);
    if (tid >= 1 && tid < n - 1) {
        B[tid] = 0.33333f * (A[tid - 1] + A[tid] + A[tid + 1]);
    }
}
"""

JACOBI2D_SRC = r"""
__kernel void jacobi2d(__global const float* A,
                       __global float* B, int dim) {
    int tid = get_global_id(0);
    int n = dim * dim;
    if (tid < n) {
        int row = tid / 48;
        int col = tid % 48;
        if (row >= 1 && row < 47 && col >= 1 && col < 47) {
            B[tid] = 0.2f * (A[tid] + A[tid - 1] + A[tid + 1]
                             + A[tid - 48] + A[tid + 48]);
        }
    }
}
"""

FDTD2D_SRC = r"""
// One E-field update step of the 2-D FDTD kernel.
__kernel void fdtd2d(__global float* ex,
                     __global float* ey,
                     __global const float* hz, int dim) {
    int tid = get_global_id(0);
    int n = dim * dim;
    if (tid < n) {
        int row = tid / 48;
        int col = tid % 48;
        if (row >= 1) {
            ey[tid] = ey[tid] - 0.5f * (hz[tid] - hz[tid - 48]);
        }
        if (col >= 1) {
            ex[tid] = ex[tid] - 0.5f * (hz[tid] - hz[tid - 1]);
        }
    }
}
"""


def _jacobi1d_buffers():
    r = rng(2201)
    return {"A": Buffer("A", r.standard_normal(_N1).astype(np.float32)),
            "B": Buffer("B", np.zeros(_N1, np.float32))}


def _jacobi1d_reference(inputs):
    a = inputs["A"].astype(np.float32)
    b = np.zeros(_N1, np.float32)
    b[1:-1] = np.float32(0.33333) * (a[:-2] + a[1:-1] + a[2:])
    return {"B": b}


def _jacobi2d_buffers():
    r = rng(2202)
    return {"A": Buffer("A", r.standard_normal(_N2).astype(np.float32)),
            "B": Buffer("B", np.zeros(_N2, np.float32))}


def _jacobi2d_reference(inputs):
    a = inputs["A"].reshape(_DIM, _DIM).astype(np.float64)
    b = np.zeros((_DIM, _DIM))
    b[1:-1, 1:-1] = 0.2 * (a[1:-1, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
                           + a[:-2, 1:-1] + a[2:, 1:-1])
    return {"B": b.reshape(-1).astype(np.float32)}


def _fdtd2d_buffers():
    r = rng(2203)
    return {"ex": Buffer("ex", r.standard_normal(_N2).astype(np.float32)),
            "ey": Buffer("ey", r.standard_normal(_N2).astype(np.float32)),
            "hz": Buffer("hz", r.standard_normal(_N2).astype(np.float32))}


def _fdtd2d_reference(inputs):
    ex = inputs["ex"].reshape(_DIM, _DIM).astype(np.float64)
    ey = inputs["ey"].reshape(_DIM, _DIM).astype(np.float64)
    hz = inputs["hz"].reshape(_DIM, _DIM).astype(np.float64)
    ey[1:] = ey[1:] - 0.5 * (hz[1:] - hz[:-1])
    ex[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
    return {"ex": ex.reshape(-1).astype(np.float32),
            "ey": ey.reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(suite="polybench", benchmark="jacobi-1d", kernel="jacobi1d",
             source=JACOBI1D_SRC, global_size=_N1, default_local_size=64,
             make_buffers=_jacobi1d_buffers, scalars={"n": _N1},
             reference=_jacobi1d_reference),
    Workload(suite="polybench", benchmark="jacobi-2d", kernel="jacobi2d",
             source=JACOBI2D_SRC, global_size=_N2, default_local_size=64,
             make_buffers=_jacobi2d_buffers, scalars={"dim": _DIM},
             reference=_jacobi2d_reference),
    Workload(suite="polybench", benchmark="fdtd-2d", kernel="fdtd2d",
             source=FDTD2D_SRC, global_size=_N2, default_local_size=64,
             make_buffers=_fdtd2d_buffers, scalars={"dim": _DIM},
             reference=_fdtd2d_reference),
]
