"""PolyBench dense linear-algebra kernels: gemm, 2mm, 3mm, syrk, syr2k."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N = 32              # matrix dimension
_SIZE = _N * _N

GEMM_SRC = r"""
// C = alpha * A * B + beta * C, one work-item per C element.
__kernel void gemm(__global const float* A,
                   __global const float* B,
                   __global float* C,
                   float alpha, float beta, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += A[i * 32 + k] * B[k * 32 + j];
        }
        C[tid] = alpha * acc + beta * C[tid];
    }
}
"""

MM2_SRC = r"""
// 2mm second stage: E = C_tmp * D (C_tmp precomputed by stage one).
__kernel void mm2(__global const float* tmp,
                  __global const float* D,
                  __global float* E, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += tmp[i * 32 + k] * D[k * 32 + j];
        }
        E[tid] = acc;
    }
}
"""

MM3_SRC = r"""
// 3mm final stage: G = (A*B) * (C*D) with both products precomputed.
__kernel void mm3(__global const float* E,
                  __global const float* F,
                  __global float* G, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += E[i * 32 + k] * F[k * 32 + j];
        }
        G[tid] = acc;
    }
}
"""

SYRK_SRC = r"""
// C = alpha * A * A^T + beta * C (symmetric rank-k update).
__kernel void syrk(__global const float* A,
                   __global float* C,
                   float alpha, float beta, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += A[i * 32 + k] * A[j * 32 + k];
        }
        C[tid] = alpha * acc + beta * C[tid];
    }
}
"""

SYR2K_SRC = r"""
// C = alpha * (A*B^T + B*A^T) + beta * C.
__kernel void syr2k(__global const float* A,
                    __global const float* B,
                    __global float* C,
                    float alpha, float beta, int n) {
    int tid = get_global_id(0);
    if (tid < n * n) {
        int i = tid / 32;
        int j = tid % 32;
        float acc = 0.0f;
        for (int k = 0; k < 32; k++) {
            acc += A[i * 32 + k] * B[j * 32 + k]
                 + B[i * 32 + k] * A[j * 32 + k];
        }
        C[tid] = alpha * acc + beta * C[tid];
    }
}
"""


def _mat(seed: int, count: int = 1):
    r = rng(seed)
    mats = [r.standard_normal(_SIZE).astype(np.float32)
            for _ in range(count)]
    return mats if count > 1 else mats[0]

_ALPHA, _BETA = 1.5, 0.5


def _gemm_buffers():
    a, b, c = _mat(2001, 3)
    return {"A": Buffer("A", a), "B": Buffer("B", b),
            "C": Buffer("C", c)}


def _gemm_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    b = inputs["B"].reshape(_N, _N)
    c = inputs["C"].reshape(_N, _N)
    return {"C": (_ALPHA * (a @ b) + _BETA * c)
            .reshape(-1).astype(np.float32)}


def _mm2_buffers():
    t, d = _mat(2002, 2)
    return {"tmp": Buffer("tmp", t), "D": Buffer("D", d),
            "E": Buffer("E", np.zeros(_SIZE, np.float32))}


def _mm2_reference(inputs):
    t = inputs["tmp"].reshape(_N, _N)
    d = inputs["D"].reshape(_N, _N)
    return {"E": (t @ d).reshape(-1).astype(np.float32)}


def _mm3_buffers():
    e, f = _mat(2003, 2)
    return {"E": Buffer("E", e), "F": Buffer("F", f),
            "G": Buffer("G", np.zeros(_SIZE, np.float32))}


def _mm3_reference(inputs):
    e = inputs["E"].reshape(_N, _N)
    f = inputs["F"].reshape(_N, _N)
    return {"G": (e @ f).reshape(-1).astype(np.float32)}


def _syrk_buffers():
    a, c = _mat(2004, 2)
    return {"A": Buffer("A", a), "C": Buffer("C", c)}


def _syrk_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    c = inputs["C"].reshape(_N, _N)
    return {"C": (_ALPHA * (a @ a.T) + _BETA * c)
            .reshape(-1).astype(np.float32)}


def _syr2k_buffers():
    a, b, c = _mat(2005, 3)
    return {"A": Buffer("A", a), "B": Buffer("B", b),
            "C": Buffer("C", c)}


def _syr2k_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    b = inputs["B"].reshape(_N, _N)
    c = inputs["C"].reshape(_N, _N)
    return {"C": (_ALPHA * (a @ b.T + b @ a.T) + _BETA * c)
            .reshape(-1).astype(np.float32)}


def _wl(bench, kernel, src, buffers, reference, scalars):
    return Workload(
        suite="polybench", benchmark=bench, kernel=kernel, source=src,
        global_size=_SIZE, default_local_size=64,
        make_buffers=buffers, scalars=scalars, reference=reference)


WORKLOADS = [
    _wl("gemm", "gemm", GEMM_SRC, _gemm_buffers, _gemm_reference,
        {"alpha": _ALPHA, "beta": _BETA, "n": _N}),
    _wl("2mm", "mm2", MM2_SRC, _mm2_buffers, _mm2_reference, {"n": _N}),
    _wl("3mm", "mm3", MM3_SRC, _mm3_buffers, _mm3_reference, {"n": _N}),
    _wl("syrk", "syrk", SYRK_SRC, _syrk_buffers, _syrk_reference,
        {"alpha": _ALPHA, "beta": _BETA, "n": _N}),
    _wl("syr2k", "syr2k", SYR2K_SRC, _syr2k_buffers, _syr2k_reference,
        {"alpha": _ALPHA, "beta": _BETA, "n": _N}),
]
