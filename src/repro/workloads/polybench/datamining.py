"""PolyBench data-mining kernels: correlation, covariance, gramschmidt."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_ROWS = 64           # observations
_COLS = 32           # variables

CORRELATION_SRC = r"""
// One column of the correlation matrix per work-item (with the means
// and standard deviations precomputed host-side, as the benchmark's
// multi-kernel pipeline does).
__kernel void correlation(__global const float* data,
                          __global const float* mean,
                          __global const float* stddev,
                          __global float* corr,
                          int rows, int cols) {
    int tid = get_global_id(0);
    if (tid < cols * cols) {
        int j1 = tid / 32;
        int j2 = tid % 32;
        float acc = 0.0f;
        for (int i = 0; i < 64; i++) {
            float a = (data[i * 32 + j1] - mean[j1]) / stddev[j1];
            float b = (data[i * 32 + j2] - mean[j2]) / stddev[j2];
            acc += a * b;
        }
        corr[tid] = acc / 63.0f;
    }
}
"""

COVARIANCE_SRC = r"""
__kernel void covariance(__global const float* data,
                         __global const float* mean,
                         __global float* cov,
                         int rows, int cols) {
    int tid = get_global_id(0);
    if (tid < cols * cols) {
        int j1 = tid / 32;
        int j2 = tid % 32;
        float acc = 0.0f;
        for (int i = 0; i < 64; i++) {
            acc += (data[i * 32 + j1] - mean[j1])
                 * (data[i * 32 + j2] - mean[j2]);
        }
        cov[tid] = acc / 63.0f;
    }
}
"""

GRAMSCHMIDT_SRC = r"""
// One normalisation + projection step of modified Gram-Schmidt for
// column k: r[k][j] = q_k . a_j and a_j -= r[k][j] * q_k.
__kernel void gramschmidt(__global float* A,
                          __global const float* qk,
                          __global float* Rrow,
                          int k, int rows, int cols) {
    int j = get_global_id(0);
    if (j < cols) {
        if (j > k) {
            float r = 0.0f;
            for (int i = 0; i < 64; i++) {
                r += qk[i] * A[i * 32 + j];
            }
            Rrow[j] = r;
            for (int i = 0; i < 64; i++) {
                A[i * 32 + j] -= r * qk[i];
            }
        }
    }
}
"""


def _data(seed: int):
    r = rng(seed)
    return r.standard_normal((_ROWS, _COLS)).astype(np.float32)


def _correlation_buffers():
    d = _data(2301)
    mean = d.mean(0).astype(np.float32)
    std = d.std(0, ddof=0).astype(np.float32)
    return {"data": Buffer("data", d.reshape(-1)),
            "mean": Buffer("mean", mean),
            "stddev": Buffer("stddev", std),
            "corr": Buffer("corr",
                           np.zeros(_COLS * _COLS, np.float32))}


def _correlation_reference(inputs):
    d = inputs["data"].reshape(_ROWS, _COLS).astype(np.float64)
    mean = inputs["mean"].astype(np.float64)
    std = inputs["stddev"].astype(np.float64)
    z = (d - mean) / std
    corr = (z.T @ z) / (_ROWS - 1)
    return {"corr": corr.reshape(-1).astype(np.float32)}


def _covariance_buffers():
    d = _data(2302)
    return {"data": Buffer("data", d.reshape(-1)),
            "mean": Buffer("mean", d.mean(0).astype(np.float32)),
            "cov": Buffer("cov", np.zeros(_COLS * _COLS, np.float32))}


def _covariance_reference(inputs):
    d = inputs["data"].reshape(_ROWS, _COLS).astype(np.float64)
    c = d - inputs["mean"].astype(np.float64)
    cov = (c.T @ c) / (_ROWS - 1)
    return {"cov": cov.reshape(-1).astype(np.float32)}


_K = 3


def _gramschmidt_buffers():
    a = _data(2303)
    qk = a[:, _K] / np.linalg.norm(a[:, _K])
    return {"A": Buffer("A", a.reshape(-1).copy()),
            "qk": Buffer("qk", qk.astype(np.float32)),
            "Rrow": Buffer("Rrow", np.zeros(_COLS, np.float32))}


def _gramschmidt_reference(inputs):
    a = inputs["A"].reshape(_ROWS, _COLS).astype(np.float64).copy()
    qk = inputs["qk"].astype(np.float64)
    rrow = inputs["Rrow"].astype(np.float64).copy()
    for j in range(_K + 1, _COLS):
        r = qk @ a[:, j]
        rrow[j] = r
        a[:, j] -= r * qk
    return {"A": a.reshape(-1).astype(np.float32),
            "Rrow": rrow.astype(np.float32)}


WORKLOADS = [
    Workload(suite="polybench", benchmark="correlation",
             kernel="correlation", source=CORRELATION_SRC,
             global_size=_COLS * _COLS, default_local_size=64,
             make_buffers=_correlation_buffers,
             scalars={"rows": _ROWS, "cols": _COLS},
             reference=_correlation_reference),
    Workload(suite="polybench", benchmark="covariance",
             kernel="covariance", source=COVARIANCE_SRC,
             global_size=_COLS * _COLS, default_local_size=64,
             make_buffers=_covariance_buffers,
             scalars={"rows": _ROWS, "cols": _COLS},
             reference=_covariance_reference),
    Workload(suite="polybench", benchmark="gramschmidt",
             kernel="gramschmidt", source=GRAMSCHMIDT_SRC,
             global_size=_COLS, default_local_size=32,
             make_buffers=_gramschmidt_buffers,
             scalars={"k": _K, "rows": _ROWS, "cols": _COLS},
             reference=_gramschmidt_reference),
]
