"""Assemble the PolyBench registry."""

from __future__ import annotations

from repro.workloads.base import WorkloadRegistry
from repro.workloads.polybench import (
    datamining,
    extra,
    linear_algebra,
    stencils,
    vectors,
)

POLYBENCH = WorkloadRegistry()
for _module in (linear_algebra, vectors, stencils, datamining, extra):
    for _workload in _module.WORKLOADS:
        POLYBENCH.add(_workload)
