"""The PolyBench/GPU suite in the supported OpenCL C subset.

"Compared with Rodinia benchmark suite, kernels in Polybench have
simpler structures and are easy to analyze" (paper §4.2) — regular
loop nests over dense arrays.
"""

from repro.workloads.polybench.registry import POLYBENCH

__all__ = ["POLYBENCH"]
