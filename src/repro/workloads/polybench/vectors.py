"""PolyBench matrix-vector kernels: atax, bicg, mvt, gesummv."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N = 64
_SIZE = _N * _N

ATAX_SRC = r"""
// y = A^T (A x): one work-item per output element, two passes fused
// through a per-item accumulation over the tmp vector.
__kernel void atax(__global const float* A,
                   __global const float* x,
                   __global const float* tmp,
                   __global float* y, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float acc = 0.0f;
        for (int i = 0; i < 64; i++) {
            acc += A[i * 64 + tid] * tmp[i];
        }
        y[tid] = acc;
    }
}
"""

BICG_SRC = r"""
// BiCG kernel: s = A^T r  and  q = A p  in one pass per work-item.
__kernel void bicg(__global const float* A,
                   __global const float* r,
                   __global const float* p,
                   __global float* s,
                   __global float* q, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float s_acc = 0.0f;
        float q_acc = 0.0f;
        for (int i = 0; i < 64; i++) {
            s_acc += A[i * 64 + tid] * r[i];
            q_acc += A[tid * 64 + i] * p[i];
        }
        s[tid] = s_acc;
        q[tid] = q_acc;
    }
}
"""

MVT_SRC = r"""
// x1 += A y1; x2 += A^T y2.
__kernel void mvt(__global const float* A,
                  __global float* x1,
                  __global float* x2,
                  __global const float* y1,
                  __global const float* y2, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float acc1 = 0.0f;
        float acc2 = 0.0f;
        for (int j = 0; j < 64; j++) {
            acc1 += A[tid * 64 + j] * y1[j];
            acc2 += A[j * 64 + tid] * y2[j];
        }
        x1[tid] += acc1;
        x2[tid] += acc2;
    }
}
"""

GESUMMV_SRC = r"""
// y = alpha * A x + beta * B x.
__kernel void gesummv(__global const float* A,
                      __global const float* B,
                      __global const float* x,
                      __global float* y,
                      float alpha, float beta, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float a_acc = 0.0f;
        float b_acc = 0.0f;
        for (int j = 0; j < 64; j++) {
            a_acc += A[tid * 64 + j] * x[j];
            b_acc += B[tid * 64 + j] * x[j];
        }
        y[tid] = alpha * a_acc + beta * b_acc;
    }
}
"""

_ALPHA, _BETA = 1.5, 0.5


def _atax_buffers():
    r = rng(2101)
    a = r.standard_normal(_SIZE).astype(np.float32)
    x = r.standard_normal(_N).astype(np.float32)
    tmp = (a.reshape(_N, _N) @ x).astype(np.float32)
    return {"A": Buffer("A", a), "x": Buffer("x", x),
            "tmp": Buffer("tmp", tmp),
            "y": Buffer("y", np.zeros(_N, np.float32))}


def _atax_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    return {"y": (a.T @ inputs["tmp"]).astype(np.float32)}


def _bicg_buffers():
    r = rng(2102)
    return {"A": Buffer("A", r.standard_normal(_SIZE).astype(np.float32)),
            "r": Buffer("r", r.standard_normal(_N).astype(np.float32)),
            "p": Buffer("p", r.standard_normal(_N).astype(np.float32)),
            "s": Buffer("s", np.zeros(_N, np.float32)),
            "q": Buffer("q", np.zeros(_N, np.float32))}


def _bicg_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    return {"s": (a.T @ inputs["r"]).astype(np.float32),
            "q": (a @ inputs["p"]).astype(np.float32)}


def _mvt_buffers():
    r = rng(2103)
    return {"A": Buffer("A", r.standard_normal(_SIZE).astype(np.float32)),
            "x1": Buffer("x1", r.standard_normal(_N).astype(np.float32)),
            "x2": Buffer("x2", r.standard_normal(_N).astype(np.float32)),
            "y1": Buffer("y1", r.standard_normal(_N).astype(np.float32)),
            "y2": Buffer("y2", r.standard_normal(_N).astype(np.float32))}


def _mvt_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    return {"x1": (inputs["x1"] + a @ inputs["y1"]).astype(np.float32),
            "x2": (inputs["x2"] + a.T @ inputs["y2"]).astype(np.float32)}


def _gesummv_buffers():
    r = rng(2104)
    return {"A": Buffer("A", r.standard_normal(_SIZE).astype(np.float32)),
            "B": Buffer("B", r.standard_normal(_SIZE).astype(np.float32)),
            "x": Buffer("x", r.standard_normal(_N).astype(np.float32)),
            "y": Buffer("y", np.zeros(_N, np.float32))}


def _gesummv_reference(inputs):
    a = inputs["A"].reshape(_N, _N)
    b = inputs["B"].reshape(_N, _N)
    x = inputs["x"]
    return {"y": (_ALPHA * (a @ x) + _BETA * (b @ x)).astype(np.float32)}


def _wl(bench, kernel, src, buffers, reference, scalars):
    return Workload(
        suite="polybench", benchmark=bench, kernel=kernel, source=src,
        global_size=_N, default_local_size=32,
        make_buffers=buffers, scalars=scalars, reference=reference)


WORKLOADS = [
    _wl("atax", "atax", ATAX_SRC, _atax_buffers, _atax_reference,
        {"n": _N}),
    _wl("bicg", "bicg", BICG_SRC, _bicg_buffers, _bicg_reference,
        {"n": _N}),
    _wl("mvt", "mvt", MVT_SRC, _mvt_buffers, _mvt_reference, {"n": _N}),
    _wl("gesummv", "gesummv", GESUMMV_SRC, _gesummv_buffers,
        _gesummv_reference, {"alpha": _ALPHA, "beta": _BETA, "n": _N}),
]
