"""Benchmark workloads: the Rodinia and PolyBench suites (paper §4.1).

Every kernel of Table 2 (45 Rodinia kernels across 19 benchmarks) plus
the PolyBench suite is provided as OpenCL C source in the supported
subset, together with its launch geometry, input-buffer factory, and —
where practical — a numpy reference function for functional checks.

Access points:

- :func:`rodinia_workloads` / :func:`polybench_workloads` — full suites;
- :func:`get_workload` — one kernel by (suite, benchmark, kernel);
- :func:`all_programs` / :func:`get_program` — multi-kernel programs
  (stage DAGs over the catalog, plus dedicated pipe programs).
"""

from repro.workloads.base import Workload, WorkloadRegistry
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    polybench_workloads,
    rodinia_workloads,
)
from repro.workloads.programs import (
    PipeStage,
    Program,
    ProgramEdge,
    all_programs,
    get_program,
)

__all__ = [
    "PipeStage",
    "Program",
    "ProgramEdge",
    "Workload",
    "WorkloadRegistry",
    "all_programs",
    "all_workloads",
    "get_program",
    "get_workload",
    "polybench_workloads",
    "rodinia_workloads",
]
