"""Workload description and helpers shared by both suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.frontend import compile_opencl
from repro.interp import Buffer, KernelExecutor, NDRange
from repro.ir.function import Function
from repro.ir.module import Module


def rng(seed: int) -> np.random.Generator:
    """Deterministic per-workload random inputs."""
    return np.random.default_rng(seed)


@dataclass
class Workload:
    """One benchmark kernel with everything needed to analyse, model,
    simulate, and functionally check it."""

    suite: str                  # 'rodinia' | 'polybench'
    benchmark: str              # e.g. 'backprop'
    kernel: str                 # kernel function name, e.g. 'layer'
    source: str                 # OpenCL C
    global_size: int            # 1-D NDRange (FPGA style: flat indexing)
    default_local_size: int = 64
    #: () -> fresh argument buffers keyed by parameter name
    make_buffers: Callable[[], Dict[str, Buffer]] = None
    scalars: Dict[str, object] = field(default_factory=dict)
    #: optional numpy reference: (inputs dict of arrays) -> dict of
    #: expected output arrays, keyed by buffer name
    reference: Optional[Callable[[Dict[str, np.ndarray]],
                                 Dict[str, np.ndarray]]] = None
    _module: Optional[Module] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}/{self.benchmark}/{self.kernel}"

    def module(self) -> Module:
        if self._module is None:
            self._module = compile_opencl(
                self.source, name=f"{self.benchmark}_{self.kernel}")
        return self._module

    def function(self) -> Function:
        return self.module().get(self.kernel)

    def ndrange(self, local_size: Optional[int] = None) -> NDRange:
        local = local_size or self.default_local_size
        return NDRange(self.global_size, local)

    def valid_work_group_sizes(self,
                               candidates: Tuple[int, ...] = (16, 32, 64,
                                                              128, 256)
                               ) -> Tuple[int, ...]:
        sizes = tuple(s for s in candidates
                      if self.global_size % s == 0 and
                      s <= self.global_size)
        return sizes or (self.default_local_size,)

    def run_reference_check(self, local_size: Optional[int] = None,
                            rtol: float = 1e-4,
                            atol: float = 1e-5) -> bool:
        """Execute on the interpreter and compare with the reference.

        Raises AssertionError on mismatch; returns True when the
        workload has no reference (nothing to check) or it passes.
        """
        if self.reference is None:
            return True
        buffers = self.make_buffers()
        inputs = {name: buf.data.copy() for name, buf in buffers.items()}
        executor = KernelExecutor(self.function(), buffers, self.scalars)
        executor.run(self.ndrange(local_size))
        expected = self.reference(inputs)
        for name, exp in expected.items():
            got = buffers[name].data
            np.testing.assert_allclose(
                got, exp, rtol=rtol, atol=atol,
                err_msg=f"{self.qualified_name}: buffer {name!r} mismatch")
        return True


class WorkloadRegistry:
    """A named collection of workloads."""

    def __init__(self) -> None:
        self._workloads: List[Workload] = []

    def add(self, workload: Workload) -> Workload:
        self._workloads.append(workload)
        return workload

    def all(self) -> List[Workload]:
        return list(self._workloads)

    def get(self, benchmark: str, kernel: str) -> Workload:
        for w in self._workloads:
            if w.benchmark == benchmark and w.kernel == kernel:
                return w
        raise KeyError(f"no workload {benchmark}/{kernel}")

    def benchmarks(self) -> List[str]:
        seen = []
        for w in self._workloads:
            if w.benchmark not in seen:
                seen.append(w.benchmark)
        return seen

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self):
        return iter(self._workloads)
