"""Multi-kernel programs: stage DAGs over the workload catalog.

A :class:`Program` names an ordered list of catalog kernels (its
*stages*) plus the data edges between them — which buffer a producer
stage writes that a consumer stage reads.  That is exactly the
information the graph-level integrator (:mod:`repro.model.graph`)
needs to price the two edge realizations (buffer-through-DRAM vs
on-chip pipe).

Programs whose stages communicate through real OpenCL 2.0 pipes carry
a dedicated *pipe source*: one translation unit declaring the
channels and all the stage kernels, compiled into a single module
with a shared channel table.  Those kernels can only execute under
FIFO co-execution (:class:`repro.interp.ProgramExecutor`) — they are
deliberately NOT registered in the single-kernel workload registry,
whose entries must all run standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.frontend import compile_opencl
from repro.interp import Buffer, NDRange, StageSpec
from repro.ir.module import Module
from repro.model.graph import GraphEdge, ProgramGraph
from repro.workloads.base import Workload, rng
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class ProgramEdge:
    """One stage-to-stage dependency through a named buffer."""

    src: str
    dst: str
    buffer: str
    #: bytes crossing the edge; 0 = look the buffer up in the source
    #: stage's input factory
    nbytes: int = 0


@dataclass
class PipeStage:
    """Launch recipe for one kernel of a pipe program's module."""

    kernel: str
    global_size: int
    local_size: int = 1
    make_buffers: Callable[[], Dict[str, Buffer]] = dict
    scalars: Dict[str, object] = field(default_factory=dict)

    def ndrange(self) -> NDRange:
        return NDRange(self.global_size, self.local_size)


@dataclass
class Program:
    """A multi-kernel workload: ordered stages plus data edges."""

    suite: str
    name: str
    stages: List[Workload]
    edges: List[ProgramEdge] = field(default_factory=list)
    #: OpenCL source with ``pipe`` declarations (pipe programs only)
    pipe_source: Optional[str] = None
    #: launch recipes for the pipe module's kernels, in stage order
    pipe_stages: List[PipeStage] = field(default_factory=list)
    #: optional reference for the co-executed pipe program:
    #: (inputs by buffer name) -> expected outputs by buffer name
    pipe_reference: Optional[Callable] = None
    _pipe_module: Optional[Module] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}/{self.name}"

    def stage_order(self) -> List[str]:
        if self.stages:
            return [w.kernel for w in self.stages]
        return [p.kernel for p in self.pipe_stages]

    def stage(self, kernel: str) -> Workload:
        for w in self.stages:
            if w.kernel == kernel:
                return w
        raise KeyError(f"{self.qualified_name} has no stage {kernel!r}")

    def shared_buffers(self) -> Dict[tuple, List[str]]:
        """``(src, dst) -> buffer names`` for every declared edge."""
        out: Dict[tuple, List[str]] = {}
        for e in self.edges:
            out.setdefault((e.src, e.dst), []).append(e.buffer)
        return out

    def graph(self) -> ProgramGraph:
        """The model-layer view of this program's DAG."""
        edges = []
        for e in self.edges:
            nbytes, elem = e.nbytes, 4
            if nbytes == 0:
                buf = self.stage(e.src).make_buffers()[e.buffer]
                nbytes, elem = buf.nbytes, buf.elem_size
            edges.append(GraphEdge(src=e.src, dst=e.dst, buffer=e.buffer,
                                   nbytes=nbytes, elem_bytes=elem))
        return ProgramGraph(name=self.qualified_name,
                            stages=tuple(self.stage_order()),
                            edges=tuple(edges))

    # -- pipe realization ------------------------------------------------

    @property
    def has_pipes(self) -> bool:
        return self.pipe_source is not None

    def pipe_module(self) -> Module:
        if not self.has_pipes:
            raise ValueError(f"{self.qualified_name} has no pipe source")
        if self._pipe_module is None:
            self._pipe_module = compile_opencl(
                self.pipe_source, name=f"{self.name}_pipes")
        return self._pipe_module

    def coexec_stages(self) -> List[StageSpec]:
        """Fresh :class:`StageSpec` launches for FIFO co-execution."""
        module = self.pipe_module()
        return [StageSpec(fn=module.get(p.kernel), ndrange=p.ndrange(),
                          buffers=p.make_buffers(),
                          scalars=dict(p.scalars))
                for p in self.pipe_stages]


def _catalog_program(name: str, kernels: List[str],
                     edges: List[ProgramEdge]) -> Program:
    return Program(suite="rodinia", name=name,
                   stages=[get_workload("rodinia", name, k)
                           for k in kernels],
                   edges=edges)


# ---------------------------------------------------------------------
# A dedicated pipe program: a two-stage stream whose kernels
# communicate through an on-chip FIFO.  The co-execution interpreter is
# the ground truth the analytical channel model is validated against.

_STREAM_N = 256
_STREAM_DEPTH = 16

STREAM_PIPE_SRC = r"""
pipe float link __attribute__((depth(16)));

__kernel void producer(__global const float* src, int n) {
    for (int i = 0; i < n; i++) {
        write_pipe(link, &src[i]);
    }
}

__kernel void consumer(__global float* dst, int n) {
    float v;
    for (int i = 0; i < n; i++) {
        read_pipe(link, &v);
        dst[i] = v * 2.0f;
    }
}
"""


def _stream_src_buffers() -> Dict[str, Buffer]:
    r = rng(7001)
    return {"src": Buffer("src",
                          r.random(_STREAM_N).astype(np.float32))}


def _stream_dst_buffers() -> Dict[str, Buffer]:
    return {"dst": Buffer("dst", np.zeros(_STREAM_N, np.float32))}


def _stream_reference(inputs: Dict[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
    return {"dst": (inputs["src"] * 2.0).astype(np.float32)}


def _stream_program() -> Program:
    return Program(
        suite="streams", name="scale",
        stages=[],
        edges=[ProgramEdge(src="producer", dst="consumer",
                           buffer="link", nbytes=_STREAM_N * 4)],
        pipe_source=STREAM_PIPE_SRC,
        pipe_stages=[
            PipeStage(kernel="producer", global_size=1,
                      make_buffers=_stream_src_buffers,
                      scalars={"n": _STREAM_N}),
            PipeStage(kernel="consumer", global_size=1,
                      make_buffers=_stream_dst_buffers,
                      scalars={"n": _STREAM_N}),
        ],
        pipe_reference=_stream_reference,
    )


def _build_programs() -> Dict[str, Program]:
    programs = [
        _catalog_program(
            "hybridsort", ["count", "prefix", "sort"],
            edges=[ProgramEdge("count", "prefix", "histo")]),
        _catalog_program(
            "srad",
            ["extract", "prepare", "reduce", "srad", "srad2", "compress"],
            edges=[
                ProgramEdge("extract", "prepare", "image"),
                ProgramEdge("prepare", "reduce", "sums"),
                ProgramEdge("prepare", "reduce", "sums2"),
                ProgramEdge("srad", "srad2", "dN"),
                ProgramEdge("srad", "srad2", "dS"),
                ProgramEdge("srad", "srad2", "dW"),
                ProgramEdge("srad", "srad2", "dE"),
                ProgramEdge("srad", "srad2", "c"),
                ProgramEdge("srad2", "compress", "image"),
            ]),
        _catalog_program(
            "cfd", ["memset", "initialize", "compute", "time_step"],
            edges=[
                ProgramEdge("initialize", "compute", "variables"),
                ProgramEdge("compute", "time_step", "fluxes"),
            ]),
        _stream_program(),
    ]
    return {p.name: p for p in programs}


_PROGRAMS: Optional[Dict[str, Program]] = None


def _programs() -> Dict[str, Program]:
    global _PROGRAMS
    if _PROGRAMS is None:
        _PROGRAMS = _build_programs()
    return _PROGRAMS


def all_programs() -> List[Program]:
    """Every registered multi-kernel program."""
    return list(_programs().values())


def get_program(name: str) -> Program:
    """Look a program up by name (e.g. ``'srad'``, ``'scale'``)."""
    try:
        return _programs()[name]
    except KeyError:
        known = ", ".join(sorted(_programs()))
        raise KeyError(f"no program {name!r}; known: {known}") from None
