"""streamcluster: memset and the pgain cost-evaluation kernel."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_POINTS = 1024
_DIMS = 8

MEMSET_SRC = r"""
__kernel void memset(__global float* data, float value, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        data[tid] = value;
    }
}
"""

PGAIN_SRC = r"""
// Cost delta if the candidate centre adopted each point: the classic
// pgain inner loop (distance to candidate vs current assignment cost).
__kernel void pgain(__global const float* points,
                    __global const float* center,
                    __global const float* current_cost,
                    __global float* switch_cost,
                    int dims, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float dist = 0.0f;
        for (int d = 0; d < 8; d++) {
            float diff = points[tid * 8 + d] - center[d];
            dist += diff * diff;
        }
        float delta = dist - current_cost[tid];
        switch_cost[tid] = delta < 0.0f ? delta : 0.0f;
    }
}
"""


def _memset_buffers():
    return {"data": Buffer("data",
                           rng(1901).random(_POINTS).astype(np.float32))}


def _memset_reference(inputs):
    return {"data": np.zeros(_POINTS, np.float32)}


def _pgain_buffers():
    r = rng(1902)
    return {
        "points": Buffer("points",
                         r.standard_normal(_POINTS * _DIMS)
                         .astype(np.float32)),
        "center": Buffer("center",
                         r.standard_normal(_DIMS).astype(np.float32)),
        "current_cost": Buffer("current_cost",
                               r.random(_POINTS).astype(np.float32) * 10),
        "switch_cost": Buffer("switch_cost",
                              np.zeros(_POINTS, np.float32)),
    }


def _pgain_reference(inputs):
    pts = inputs["points"].reshape(_POINTS, _DIMS)
    dist = ((pts - inputs["center"][None, :]) ** 2).sum(1)
    delta = dist - inputs["current_cost"]
    return {"switch_cost": np.minimum(delta, 0.0).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="streamcluster", kernel="memset",
        source=MEMSET_SRC, global_size=_POINTS, default_local_size=64,
        make_buffers=_memset_buffers,
        scalars={"value": 0.0, "n": _POINTS},
        reference=_memset_reference,
    ),
    Workload(
        suite="rodinia", benchmark="streamcluster", kernel="pgain",
        source=PGAIN_SRC, global_size=_POINTS, default_local_size=64,
        make_buffers=_pgain_buffers,
        scalars={"dims": _DIMS, "n": _POINTS},
        reference=_pgain_reference,
    ),
]
