"""gaussian: Gaussian elimination step kernels (fan1 computes the
multiplier column, fan2 updates the trailing submatrix)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N = 64              # matrix dimension
_T = 5               # eliminated column


def _matrix(seed: int) -> np.ndarray:
    r = rng(seed)
    a = r.standard_normal((_N, _N)).astype(np.float32)
    np.fill_diagonal(a, a.diagonal() + _N)    # diagonally dominant
    return a


FAN1_SRC = r"""
// m[i][t] = a[i][t] / a[t][t] for rows below the pivot.
__kernel void fan1(__global const float* a,
                   __global float* m,
                   int size, int t) {
    int tid = get_global_id(0);
    if (tid < size - 1 - t) {
        int row = tid + t + 1;
        m[row * 64 + t] = a[row * 64 + t] / a[t * 64 + t];
    }
}
"""

FAN2_SRC = r"""
// a[i][j] -= m[i][t] * a[t][j] over the trailing submatrix (flattened).
__kernel void fan2(__global float* a,
                   __global float* b,
                   __global const float* m,
                   int size, int t) {
    int tid = get_global_id(0);
    int span = size - 1 - t;
    if (tid < span * span) {
        int i = tid / span + t + 1;
        int j = tid % span + t;
        float mult = m[i * 64 + t];
        a[i * 64 + j] -= mult * a[t * 64 + j];
        if (j == t) {
            b[i] -= mult * b[t];
        }
    }
}
"""


def _fan1_buffers():
    return {
        "a": Buffer("a", _matrix(601).reshape(-1)),
        "m": Buffer("m", np.zeros(_N * _N, np.float32)),
    }


def _fan1_reference(inputs):
    a = inputs["a"].reshape(_N, _N)
    m = np.zeros((_N, _N), np.float32)
    m[_T + 1:, _T] = a[_T + 1:, _T] / a[_T, _T]
    return {"m": m.reshape(-1)}


def _fan2_buffers():
    a = _matrix(601)
    m = np.zeros((_N, _N), np.float32)
    m[_T + 1:, _T] = a[_T + 1:, _T] / a[_T, _T]
    r = rng(602)
    return {
        "a": Buffer("a", a.reshape(-1)),
        "b": Buffer("b", r.standard_normal(_N).astype(np.float32)),
        "m": Buffer("m", m.reshape(-1)),
    }


def _fan2_reference(inputs):
    a = inputs["a"].reshape(_N, _N).copy()
    b = inputs["b"].copy()
    m = inputs["m"].reshape(_N, _N)
    span = _N - 1 - _T
    for i in range(_T + 1, _N):
        mult = np.float32(m[i, _T])
        a[i, _T:_T + span] = (a[i, _T:_T + span].astype(np.float32)
                              - mult * a[_T, _T:_T + span])
        b[i] -= mult * b[_T]
    return {"a": a.reshape(-1), "b": b}


_SPAN = _N - 1 - _T
_FAN2_GLOBAL = 3584          # next multiple of 64 above span*span (3481)

WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="gaussian", kernel="fan1",
        source=FAN1_SRC, global_size=_N, default_local_size=16,
        make_buffers=_fan1_buffers, scalars={"size": _N, "t": _T},
        reference=_fan1_reference,
    ),
    Workload(
        suite="rodinia", benchmark="gaussian", kernel="fan2",
        source=FAN2_SRC, global_size=_FAN2_GLOBAL, default_local_size=64,
        make_buffers=_fan2_buffers, scalars={"size": _N, "t": _T},
        reference=_fan2_reference,
    ),
]
