"""particlefilter: resampling pipeline kernels (likelihood, sum,
normalize, find_index)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_PARTICLES = 1024

LIKELIHOOD_SRC = r"""
// Gaussian-ish likelihood of each particle given observation samples.
__kernel void likelihood(__global const float* arrayX,
                         __global const float* arrayY,
                         __global const float* observations,
                         __global float* weights, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float x = arrayX[tid];
        float y = arrayY[tid];
        float like = 0.0f;
        for (int o = 0; o < 8; o++) {
            float obs = observations[o];
            float dx = x - obs;
            float dy = y - obs * 0.5f;
            like += (dx * dx + dy * dy) / 50.0f;
        }
        weights[tid] = exp(-like / 8.0f);
    }
}
"""

SUM_SRC = r"""
// Work-group tree reduction of the weights; one partial per group.
__kernel void sum(__global const float* weights,
                  __global float* partial_sums, int n) {
    int tid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    __local float buffer[256];
    buffer[lid] = tid < n ? weights[tid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 128; s > 0; s >>= 1) {
        if (lid < s && lid + s < lsz) {
            buffer[lid] += buffer[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial_sums[get_group_id(0)] = buffer[0];
    }
}
"""

NORMALIZE_SRC = r"""
__kernel void normalize(__global float* weights,
                        __global const float* total, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        weights[tid] = weights[tid] / total[0];
    }
}
"""

FIND_INDEX_SRC = r"""
// Systematic resampling: binary-search-free linear scan over the CDF.
__kernel void find_index(__global const float* cdf,
                         __global const float* u,
                         __global float* arrayX,
                         __global float* arrayY,
                         __global const float* oldX,
                         __global const float* oldY, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float uu = u[tid];
        int index = n - 1;
        int found = 0;
        for (int x = 0; x < 1024; x++) {
            if (found == 0) {
                if (cdf[x] >= uu) {
                    index = x;
                    found = 1;
                }
            }
        }
        arrayX[tid] = oldX[index];
        arrayY[tid] = oldY[index];
    }
}
"""


def _likelihood_buffers():
    r = rng(1601)
    return {
        "arrayX": Buffer("arrayX",
                         r.standard_normal(_PARTICLES).astype(np.float32)),
        "arrayY": Buffer("arrayY",
                         r.standard_normal(_PARTICLES).astype(np.float32)),
        "observations": Buffer("observations",
                               r.standard_normal(8).astype(np.float32)),
        "weights": Buffer("weights",
                          np.zeros(_PARTICLES, np.float32)),
    }


def _likelihood_reference(inputs):
    x = inputs["arrayX"].astype(np.float64)
    y = inputs["arrayY"].astype(np.float64)
    obs = inputs["observations"].astype(np.float64)
    like = np.zeros(_PARTICLES)
    for o in obs:
        like += ((x - o) ** 2 + (y - o * 0.5) ** 2) / 50.0
    return {"weights": np.exp(-like / 8.0).astype(np.float32)}


def _sum_buffers():
    r = rng(1602)
    return {
        "weights": Buffer("weights",
                          r.random(_PARTICLES).astype(np.float32)),
        # sized for the smallest swept work-group (16) so design-space
        # analysis never overruns it
        "partial_sums": Buffer("partial_sums",
                               np.zeros(_PARTICLES // 16, np.float32)),
    }


def _sum_reference(inputs):
    w = inputs["weights"].reshape(-1, 64)
    out = np.zeros(_PARTICLES // 16, np.float32)
    out[:w.shape[0]] = w.sum(1).astype(np.float32)
    return {"partial_sums": out}


def _normalize_buffers():
    r = rng(1603)
    w = r.random(_PARTICLES).astype(np.float32)
    return {
        "weights": Buffer("weights", w),
        "total": Buffer("total",
                        np.array([w.sum()], np.float32)),
    }


def _normalize_reference(inputs):
    w = inputs["weights"]
    return {"weights": (w / inputs["total"][0]).astype(np.float32)}


def _find_index_buffers():
    r = rng(1604)
    w = r.random(_PARTICLES)
    cdf = (np.cumsum(w) / w.sum()).astype(np.float32)
    return {
        "cdf": Buffer("cdf", cdf),
        "u": Buffer("u", r.random(_PARTICLES).astype(np.float32)),
        "arrayX": Buffer("arrayX", np.zeros(_PARTICLES, np.float32)),
        "arrayY": Buffer("arrayY", np.zeros(_PARTICLES, np.float32)),
        "oldX": Buffer("oldX",
                       r.standard_normal(_PARTICLES).astype(np.float32)),
        "oldY": Buffer("oldY",
                       r.standard_normal(_PARTICLES).astype(np.float32)),
    }


def _find_index_reference(inputs):
    cdf = inputs["cdf"]
    u = inputs["u"]
    idx = np.searchsorted(cdf, u, side="left")
    idx = np.minimum(idx, _PARTICLES - 1)
    return {"arrayX": inputs["oldX"][idx].astype(np.float32),
            "arrayY": inputs["oldY"][idx].astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="particlefilter", kernel="likelihood",
        source=LIKELIHOOD_SRC, global_size=_PARTICLES,
        default_local_size=64, make_buffers=_likelihood_buffers,
        scalars={"n": _PARTICLES}, reference=_likelihood_reference,
    ),
    Workload(
        suite="rodinia", benchmark="particlefilter", kernel="sum",
        source=SUM_SRC, global_size=_PARTICLES, default_local_size=64,
        make_buffers=_sum_buffers, scalars={"n": _PARTICLES},
        reference=_sum_reference,
    ),
    Workload(
        suite="rodinia", benchmark="particlefilter", kernel="normalize",
        source=NORMALIZE_SRC, global_size=_PARTICLES,
        default_local_size=64, make_buffers=_normalize_buffers,
        scalars={"n": _PARTICLES}, reference=_normalize_reference,
    ),
    Workload(
        suite="rodinia", benchmark="particlefilter", kernel="find_index",
        source=FIND_INDEX_SRC, global_size=_PARTICLES,
        default_local_size=64, make_buffers=_find_index_buffers,
        scalars={"n": _PARTICLES}, reference=_find_index_reference,
    ),
]
