"""nw: Needleman-Wunsch anti-diagonal dynamic programming kernels.

nw1 processes one north-west anti-diagonal of the score matrix; nw2 is
the symmetric south-east pass of the original benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_DIM = 256           # score-matrix dimension (with halo row/col)
_DIAG = 128          # cells on the processed anti-diagonal

NW1_SRC = r"""
// One anti-diagonal: score[i][j] = max of the three predecessors.
__kernel void nw1(__global int* score,
                  __global const int* reference_m,
                  int diag, int dim, int penalty) {
    int tid = get_global_id(0);
    if (tid < diag) {
        int i = tid + 1;
        int j = diag - tid;
        int idx = i * 256 + j;
        int nw = score[idx - 256 - 1] + reference_m[idx];
        int up = score[idx - 256] - penalty;
        int left = score[idx - 1] - penalty;
        int best = max(nw, max(up, left));
        score[idx] = best;
    }
}
"""

NW2_SRC = r"""
// The reverse-sweep anti-diagonal of the second kernel.
__kernel void nw2(__global int* score,
                  __global const int* reference_m,
                  int diag, int dim, int penalty) {
    int tid = get_global_id(0);
    if (tid < diag) {
        int i = 255 - 1 - tid;
        int j = 255 - (diag - tid);
        int idx = i * 256 + j;
        int se = score[idx + 256 + 1] + reference_m[idx];
        int down = score[idx + 256] - penalty;
        int right = score[idx + 1] - penalty;
        int best = max(se, max(down, right));
        score[idx] = best;
    }
}
"""


def _nw_buffers(seed: int):
    r = rng(seed)
    score = r.integers(-50, 50, _DIM * _DIM).astype(np.int32)
    ref = r.integers(-10, 10, _DIM * _DIM).astype(np.int32)
    return {
        "score": Buffer("score", score),
        "reference_m": Buffer("reference_m", ref),
    }


def _nw1_reference(inputs):
    score = inputs["score"].reshape(_DIM, _DIM).copy()
    ref = inputs["reference_m"].reshape(_DIM, _DIM)
    penalty = 10
    diag = _DIAG
    for tid in range(diag):
        i = tid + 1
        j = diag - tid
        nw = score[i - 1, j - 1] + ref[i, j]
        up = score[i - 1, j] - penalty
        left = score[i, j - 1] - penalty
        score[i, j] = max(nw, up, left)
    return {"score": score.reshape(-1)}


def _nw2_reference(inputs):
    score = inputs["score"].reshape(_DIM, _DIM).copy()
    ref = inputs["reference_m"].reshape(_DIM, _DIM)
    penalty = 10
    diag = _DIAG
    for tid in range(diag):
        i = 254 - tid
        j = 255 - (diag - tid)
        se = score[i + 1, j + 1] + ref[i, j]
        down = score[i + 1, j] - penalty
        right = score[i, j + 1] - penalty
        score[i, j] = max(se, down, right)
    return {"score": score.reshape(-1)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="nw", kernel="nw1",
        source=NW1_SRC, global_size=_DIAG, default_local_size=32,
        make_buffers=lambda: _nw_buffers(1501),
        scalars={"diag": _DIAG, "dim": _DIM, "penalty": 10},
        reference=_nw1_reference,
    ),
    Workload(
        suite="rodinia", benchmark="nw", kernel="nw2",
        source=NW2_SRC, global_size=_DIAG, default_local_size=32,
        make_buffers=lambda: _nw_buffers(1502),
        scalars={"diag": _DIAG, "dim": _DIM, "penalty": 10},
        reference=_nw2_reference,
    ),
]
