"""hotspot: 2-D thermal simulation stencil (one time step)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_DIM = 64
_N = _DIM * _DIM

HOTSPOT_SRC = r"""
// One Jacobi-style step of the thermal grid: each work-item owns one
// cell; neighbours come straight from global memory (FPGA flows would
// line-buffer this — the naive form is what the OpenCL benchmark ships).
__kernel void hotspot(__global const float* temp_in,
                      __global const float* power,
                      __global float* temp_out,
                      int dim, float cap, float rx, float ry, float rz,
                      float amb) {
    int tid = get_global_id(0);
    int n = dim * dim;
    if (tid < n) {
        int row = tid / dim;
        int col = tid % dim;
        float center = temp_in[tid];
        float north = row > 0 ? temp_in[tid - dim] : center;
        float south = row < dim - 1 ? temp_in[tid + dim] : center;
        float west = col > 0 ? temp_in[tid - 1] : center;
        float east = col < dim - 1 ? temp_in[tid + 1] : center;
        float delta = (power[tid]
                       + (north + south - 2.0f * center) / ry
                       + (east + west - 2.0f * center) / rx
                       + (amb - center) / rz) / cap;
        temp_out[tid] = center + delta;
    }
}
"""


def _buffers():
    r = rng(701)
    return {
        "temp_in": Buffer("temp_in",
                          (320.0 + r.random(_N) * 20).astype(np.float32)),
        "power": Buffer("power", r.random(_N).astype(np.float32)),
        "temp_out": Buffer("temp_out", np.zeros(_N, np.float32)),
    }


_PARAMS = {"dim": _DIM, "cap": 0.5, "rx": 1.0, "ry": 1.0,
           "rz": 4.0, "amb": 80.0}


def _reference(inputs):
    t = inputs["temp_in"].reshape(_DIM, _DIM).astype(np.float64)
    p = inputs["power"].reshape(_DIM, _DIM).astype(np.float64)
    north = np.vstack([t[:1], t[:-1]])
    south = np.vstack([t[1:], t[-1:]])
    west = np.hstack([t[:, :1], t[:, :-1]])
    east = np.hstack([t[:, 1:], t[:, -1:]])
    delta = (p + (north + south - 2 * t) / _PARAMS["ry"]
             + (east + west - 2 * t) / _PARAMS["rx"]
             + (_PARAMS["amb"] - t) / _PARAMS["rz"]) / _PARAMS["cap"]
    return {"temp_out": (t + delta).reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="hotspot", kernel="hotspot",
        source=HOTSPOT_SRC, global_size=_N, default_local_size=64,
        make_buffers=_buffers, scalars=_PARAMS, reference=_reference,
    ),
]
