"""srad: speckle-reducing anisotropic diffusion kernels (the six
kernels of the OpenCL port: extract, prepare, reduce, srad, srad2,
compress)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_W = 64
_H = 32
_N = _W * _H

EXTRACT_SRC = r"""
// Convert the image from stored log space.
__kernel void extract(__global float* image, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        image[tid] = exp(image[tid] / 255.0f);
    }
}
"""

PREPARE_SRC = r"""
// Stage the image into the sum buffers for the statistics reduction.
__kernel void prepare(__global const float* image,
                      __global float* sums,
                      __global float* sums2, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float v = image[tid];
        sums[tid] = v;
        sums2[tid] = v * v;
    }
}
"""

REDUCE_SRC = r"""
// Tree reduction of both sum buffers, one partial pair per work-group.
__kernel void reduce(__global float* sums,
                     __global float* sums2,
                     __global float* partial,
                     __global float* partial2, int n) {
    int tid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    __local float s[256];
    __local float s2[256];
    s[lid] = tid < n ? sums[tid] : 0.0f;
    s2[lid] = tid < n ? sums2[tid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int stride = 128; stride > 0; stride >>= 1) {
        if (lid < stride && lid + stride < lsz) {
            s[lid] += s[lid + stride];
            s2[lid] += s2[lid + stride];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = s[0];
        partial2[get_group_id(0)] = s2[0];
    }
}
"""

SRAD_SRC = r"""
// Diffusion coefficient from the image Laplacian and gradients.
__kernel void srad(__global const float* image,
                   __global float* dN, __global float* dS,
                   __global float* dW, __global float* dE,
                   __global float* c, float q0sqr, int width, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        int row = tid / 64;
        int col = tid % 64;
        float jc = image[tid];
        float north = row > 0 ? image[tid - 64] : jc;
        float south = row < 31 ? image[tid + 64] : jc;
        float west = col > 0 ? image[tid - 1] : jc;
        float east = col < 63 ? image[tid + 1] : jc;
        float dn = north - jc;
        float ds = south - jc;
        float dw = west - jc;
        float de = east - jc;
        float g2 = (dn * dn + ds * ds + dw * dw + de * de)
                 / (jc * jc);
        float l = (dn + ds + dw + de) / jc;
        float num = 0.5f * g2 - 0.0625f * (l * l);
        float den = 1.0f + 0.25f * l;
        float qsqr = num / (den * den);
        den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
        float coeff = 1.0f / (1.0f + den);
        coeff = fmax(0.0f, fmin(1.0f, coeff));
        dN[tid] = dn;
        dS[tid] = ds;
        dW[tid] = dw;
        dE[tid] = de;
        c[tid] = coeff;
    }
}
"""

SRAD2_SRC = r"""
// Apply the diffusion update using the neighbour coefficients.
__kernel void srad2(__global float* image,
                    __global const float* dN, __global const float* dS,
                    __global const float* dW, __global const float* dE,
                    __global const float* c,
                    float lambda, int width, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        int row = tid / 64;
        int col = tid % 64;
        float cN = c[tid];
        float cS = row < 31 ? c[tid + 64] : cN;
        float cW = cN;
        float cE = col < 63 ? c[tid + 1] : cN;
        float d = cN * dN[tid] + cS * dS[tid]
                + cW * dW[tid] + cE * dE[tid];
        image[tid] += 0.25f * lambda * d;
    }
}
"""

COMPRESS_SRC = r"""
// Back to log space for storage.
__kernel void compress(__global float* image, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        image[tid] = log(image[tid]) * 255.0f;
    }
}
"""


def _image(seed: int) -> np.ndarray:
    return (rng(seed).random(_N) * 100 + 1).astype(np.float32)


def _extract_buffers():
    return {"image": Buffer("image", _image(1801))}


def _extract_reference(inputs):
    return {"image": np.exp(inputs["image"] / np.float32(255.0))
            .astype(np.float32)}


def _prepare_buffers():
    return {
        "image": Buffer("image", _image(1802)),
        "sums": Buffer("sums", np.zeros(_N, np.float32)),
        "sums2": Buffer("sums2", np.zeros(_N, np.float32)),
    }


def _prepare_reference(inputs):
    v = inputs["image"]
    return {"sums": v.copy(), "sums2": (v * v).astype(np.float32)}


def _reduce_buffers():
    r = rng(1803)
    return {
        "sums": Buffer("sums", r.random(_N).astype(np.float32)),
        "sums2": Buffer("sums2", r.random(_N).astype(np.float32)),
        "partial": Buffer("partial", np.zeros(_N // 16, np.float32)),
        "partial2": Buffer("partial2", np.zeros(_N // 16, np.float32)),
    }


def _reduce_reference(inputs):
    s = inputs["sums"].reshape(-1, 64)
    s2 = inputs["sums2"].reshape(-1, 64)
    out = np.zeros(_N // 16, np.float32)
    out2 = np.zeros(_N // 16, np.float32)
    out[:s.shape[0]] = s.sum(1)
    out2[:s.shape[0]] = s2.sum(1)
    return {"partial": out, "partial2": out2}


def _srad_buffers():
    return {
        "image": Buffer("image", _image(1804)),
        "dN": Buffer("dN", np.zeros(_N, np.float32)),
        "dS": Buffer("dS", np.zeros(_N, np.float32)),
        "dW": Buffer("dW", np.zeros(_N, np.float32)),
        "dE": Buffer("dE", np.zeros(_N, np.float32)),
        "c": Buffer("c", np.zeros(_N, np.float32)),
    }


def _srad2_buffers():
    r = rng(1805)
    return {
        "image": Buffer("image", _image(1805)),
        "dN": Buffer("dN", r.standard_normal(_N).astype(np.float32)),
        "dS": Buffer("dS", r.standard_normal(_N).astype(np.float32)),
        "dW": Buffer("dW", r.standard_normal(_N).astype(np.float32)),
        "dE": Buffer("dE", r.standard_normal(_N).astype(np.float32)),
        "c": Buffer("c", r.random(_N).astype(np.float32)),
    }


def _srad2_reference(inputs):
    c = inputs["c"].reshape(_H, _W)
    cS = np.vstack([c[1:], c[-1:]])
    cE = np.hstack([c[:, 1:], c[:, -1:]])
    d = (c * inputs["dN"].reshape(_H, _W)
         + cS * inputs["dS"].reshape(_H, _W)
         + c * inputs["dW"].reshape(_H, _W)
         + cE * inputs["dE"].reshape(_H, _W))
    out = inputs["image"].reshape(_H, _W) + 0.25 * 0.5 * d
    return {"image": out.reshape(-1).astype(np.float32)}


def _compress_buffers():
    return {"image": Buffer("image", _image(1806))}


def _compress_reference(inputs):
    return {"image": (np.log(inputs["image"]) * 255.0)
            .astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="srad", kernel="extract",
        source=EXTRACT_SRC, global_size=_N, default_local_size=64,
        make_buffers=_extract_buffers, scalars={"n": _N},
        reference=_extract_reference,
    ),
    Workload(
        suite="rodinia", benchmark="srad", kernel="prepare",
        source=PREPARE_SRC, global_size=_N, default_local_size=64,
        make_buffers=_prepare_buffers, scalars={"n": _N},
        reference=_prepare_reference,
    ),
    Workload(
        suite="rodinia", benchmark="srad", kernel="reduce",
        source=REDUCE_SRC, global_size=_N, default_local_size=64,
        make_buffers=_reduce_buffers, scalars={"n": _N},
        reference=_reduce_reference,
    ),
    Workload(
        suite="rodinia", benchmark="srad", kernel="srad",
        source=SRAD_SRC, global_size=_N, default_local_size=64,
        make_buffers=_srad_buffers,
        scalars={"q0sqr": 0.05, "width": _W, "n": _N},
        reference=None,     # checked against srad2 in integration tests
    ),
    Workload(
        suite="rodinia", benchmark="srad", kernel="srad2",
        source=SRAD2_SRC, global_size=_N, default_local_size=64,
        make_buffers=_srad2_buffers,
        scalars={"lambda": 0.5, "width": _W, "n": _N},
        reference=_srad2_reference,
    ),
    Workload(
        suite="rodinia", benchmark="srad", kernel="compress",
        source=COMPRESS_SRC, global_size=_N, default_local_size=64,
        make_buffers=_compress_buffers, scalars={"n": _N},
        reference=_compress_reference,
    ),
]
