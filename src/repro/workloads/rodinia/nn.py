"""nn: k-nearest-neighbour distance kernel over hurricane records."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_RECORDS = 4096

NN_SRC = r"""
// Euclidean distance of every record to the query point.
__kernel void nn(__global const float* lat,
                 __global const float* lng,
                 __global float* distances,
                 float query_lat, float query_lng, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float dlat = lat[tid] - query_lat;
        float dlng = lng[tid] - query_lng;
        distances[tid] = sqrt(dlat * dlat + dlng * dlng);
    }
}
"""


def _buffers():
    r = rng(1401)
    return {
        "lat": Buffer("lat",
                      (r.random(_RECORDS) * 180 - 90).astype(np.float32)),
        "lng": Buffer("lng",
                      (r.random(_RECORDS) * 360 - 180).astype(np.float32)),
        "distances": Buffer("distances",
                            np.zeros(_RECORDS, np.float32)),
    }


def _reference(inputs):
    dlat = inputs["lat"] - np.float32(30.0)
    dlng = inputs["lng"] - np.float32(-90.0)
    return {"distances": np.sqrt(dlat * dlat + dlng * dlng)
            .astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="nn", kernel="nn",
        source=NN_SRC, global_size=_RECORDS, default_local_size=64,
        make_buffers=_buffers,
        scalars={"query_lat": 30.0, "query_lng": -90.0, "n": _RECORDS},
        reference=_reference,
    ),
]
