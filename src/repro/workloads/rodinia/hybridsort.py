"""hybridsort: bucket-sort phase kernels (histogram count, prefix sums,
and an in-bucket odd-even sort pass)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_N = 2048
_BUCKETS = 64


COUNT_SRC = r"""
// Histogram of bucket occupancies using local reduction per group.
__kernel void count(__global const float* data,
                    __global int* histo,
                    float minv, float maxv, int n_buckets, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float v = data[tid];
        float norm = (v - minv) / (maxv - minv);
        int bucket = (int)(norm * (float)(n_buckets - 1));
        bucket = max(0, min(bucket, n_buckets - 1));
        atomic_add(&histo[bucket], 1);
    }
}
"""

PREFIX_SRC = r"""
// Work-group-wide Hillis-Steele inclusive scan of the histogram.
__kernel void prefix(__global const int* histo,
                     __global int* offsets, int n_buckets) {
    int lid = get_local_id(0);
    __local int scan[256];
    int lsz = get_local_size(0);
    scan[lid] = lid < n_buckets ? histo[lid] : 0;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int d = 1; d < 256; d <<= 1) {
        int add = 0;
        if (lid >= d && d < lsz) {
            add = scan[lid - d];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        if (d < lsz) {
            scan[lid] += add;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid < n_buckets) {
        offsets[lid] = scan[lid];
    }
}
"""

SORT_SRC = r"""
// One odd-even transposition pass inside fixed-width tiles.
__kernel void sort(__global float* data, int phase, int n) {
    int tid = get_global_id(0);
    int idx = tid * 2 + phase;
    if (idx + 1 < n) {
        float a = data[idx];
        float b = data[idx + 1];
        if (a > b) {
            data[idx] = b;
            data[idx + 1] = a;
        }
    }
}
"""


def _count_buffers():
    r = rng(901)
    return {
        "data": Buffer("data", r.random(_N).astype(np.float32)),
        "histo": Buffer("histo", np.zeros(_BUCKETS, np.int32)),
    }


def _count_reference(inputs):
    data = inputs["data"]
    norm = (data - 0.0) / (1.0 - 0.0)
    buckets = np.clip((norm * (_BUCKETS - 1)).astype(np.int64),
                      0, _BUCKETS - 1)
    histo = np.bincount(buckets, minlength=_BUCKETS).astype(np.int32)
    return {"histo": histo}


def _prefix_buffers():
    r = rng(902)
    return {
        "histo": Buffer("histo",
                        r.integers(0, 50, _BUCKETS).astype(np.int32)),
        "offsets": Buffer("offsets", np.zeros(_BUCKETS, np.int32)),
    }


def _prefix_reference(inputs):
    # The scan is work-group-wide: with the default launch (one group of
    # 64 covering all buckets) it is a plain inclusive scan.
    return {"offsets": np.cumsum(inputs["histo"]).astype(np.int32)}


def _sort_buffers():
    r = rng(903)
    return {"data": Buffer("data", r.random(_N).astype(np.float32))}


def _sort_reference(inputs):
    data = inputs["data"].copy()
    for i in range(0, _N - 1, 2):     # phase 0
        if data[i] > data[i + 1]:
            data[i], data[i + 1] = data[i + 1], data[i]
    return {"data": data}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="hybridsort", kernel="count",
        source=COUNT_SRC, global_size=_N, default_local_size=64,
        make_buffers=_count_buffers,
        scalars={"minv": 0.0, "maxv": 1.0, "n_buckets": _BUCKETS,
                 "n": _N},
        reference=_count_reference,
    ),
    Workload(
        suite="rodinia", benchmark="hybridsort", kernel="prefix",
        source=PREFIX_SRC, global_size=_BUCKETS, default_local_size=64,
        make_buffers=_prefix_buffers,
        scalars={"n_buckets": _BUCKETS},
        reference=_prefix_reference,
    ),
    Workload(
        suite="rodinia", benchmark="hybridsort", kernel="sort",
        source=SORT_SRC, global_size=_N // 2, default_local_size=64,
        make_buffers=_sort_buffers,
        scalars={"phase": 0, "n": _N},
        reference=_sort_reference,
    ),
]
