"""The Rodinia benchmark suite (Che et al., IISWC'09): all 45 kernels
of the paper's Table 2, re-written in the supported OpenCL C subset with
representative loop structure, local-memory usage, and global access
patterns."""

from repro.workloads.rodinia.registry import RODINIA

__all__ = ["RODINIA"]
