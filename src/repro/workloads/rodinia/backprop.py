"""backprop: feed-forward layer evaluation and weight adjustment."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_HID = 16          # hidden units per work-group tile
_N = 2048          # input units

LAYER_SRC = r"""
// Forward pass: each work-item accumulates one input unit's
// contribution into the hidden layer partial sums held in local memory.
__kernel void layer(__global const float* input_units,
                    __global const float* weights,
                    __global float* partial_sums,
                    int hid, int n_in) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    __local float tile[256];

    tile[lid] = gid < n_in ? input_units[gid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);

    if (gid < n_in) {
        float unit = tile[lid];
        for (int h = 0; h < 16; h++) {
            float w = weights[gid * 16 + h];
            partial_sums[gid * 16 + h] = unit * w;
        }
    }
}
"""

ADJUST_SRC = r"""
// Weight adjustment: w += eta * delta * unit + momentum * old_dw.
__kernel void adjust(__global float* weights,
                     __global float* old_dw,
                     __global const float* deltas,
                     __global const float* units,
                     float eta, float momentum, int hid, int n_in) {
    int gid = get_global_id(0);
    if (gid < n_in) {
        float unit = units[gid];
        for (int h = 0; h < 16; h++) {
            int idx = gid * 16 + h;
            float dw = eta * deltas[h] * unit + momentum * old_dw[idx];
            weights[idx] += dw;
            old_dw[idx] = dw;
        }
    }
}
"""


def _layer_buffers():
    r = rng(101)
    units = r.standard_normal(_N).astype(np.float32)
    weights = r.standard_normal(_N * _HID).astype(np.float32)
    return {
        "input_units": Buffer("input_units", units),
        "weights": Buffer("weights", weights),
        "partial_sums": Buffer("partial_sums",
                               np.zeros(_N * _HID, np.float32)),
    }


def _layer_reference(inputs):
    units = inputs["input_units"]
    weights = inputs["weights"].reshape(_N, _HID)
    return {"partial_sums": (units[:, None] * weights).reshape(-1)}


def _adjust_buffers():
    r = rng(102)
    return {
        "weights": Buffer("weights",
                          r.standard_normal(_N * _HID).astype(np.float32)),
        "old_dw": Buffer("old_dw",
                         r.standard_normal(_N * _HID).astype(np.float32)),
        "deltas": Buffer("deltas",
                         r.standard_normal(_HID).astype(np.float32)),
        "units": Buffer("units",
                        r.standard_normal(_N).astype(np.float32)),
    }


def _adjust_reference(inputs):
    eta, momentum = 0.3, 0.3
    weights = inputs["weights"].reshape(_N, _HID).copy()
    old_dw = inputs["old_dw"].reshape(_N, _HID)
    dw = (eta * inputs["deltas"][None, :] * inputs["units"][:, None]
          + momentum * old_dw)
    return {"weights": (weights + dw).reshape(-1).astype(np.float32),
            "old_dw": dw.reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="backprop", kernel="layer",
        source=LAYER_SRC, global_size=_N, default_local_size=64,
        make_buffers=_layer_buffers,
        scalars={"hid": _HID, "n_in": _N},
        reference=_layer_reference,
    ),
    Workload(
        suite="rodinia", benchmark="backprop", kernel="adjust",
        source=ADJUST_SRC, global_size=_N, default_local_size=64,
        make_buffers=_adjust_buffers,
        scalars={"eta": 0.3, "momentum": 0.3, "hid": _HID, "n_in": _N},
        reference=_adjust_reference,
    ),
]
