"""lavaMD: particle potential within a box and its neighbour boxes."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_BOXES = 32
_PER_BOX = 16
_NEIGHBORS = 4
_N = _BOXES * _PER_BOX

LAVAMD_SRC = r"""
// Each work-item owns one particle; it accumulates a pairwise kernel
// over all particles in the home box and a fixed neighbour list.
__kernel void lavaMD(__global const float* px,
                     __global const float* py,
                     __global const float* pz,
                     __global const float* charge,
                     __global const int* neighbor_boxes,
                     __global float* force,
                     float alpha, int per_box, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        int box = tid / 16;
        float xi = px[tid];
        float yi = py[tid];
        float zi = pz[tid];
        float acc = 0.0f;
        for (int nb = 0; nb < 5; nb++) {
            int other_box = box;
            if (nb > 0) {
                other_box = neighbor_boxes[box * 4 + nb - 1];
            }
            for (int j = 0; j < 16; j++) {
                int pj = other_box * 16 + j;
                float dx = xi - px[pj];
                float dy = yi - py[pj];
                float dz = zi - pz[pj];
                float r2 = dx * dx + dy * dy + dz * dz;
                float u2 = alpha * alpha * r2;
                float vij = exp(-u2);
                acc += charge[pj] * vij;
            }
        }
        force[tid] = acc;
    }
}
"""


def _buffers():
    r = rng(1101)
    neighbors = r.integers(0, _BOXES,
                           _BOXES * _NEIGHBORS).astype(np.int32)
    return {
        "px": Buffer("px", r.random(_N).astype(np.float32)),
        "py": Buffer("py", r.random(_N).astype(np.float32)),
        "pz": Buffer("pz", r.random(_N).astype(np.float32)),
        "charge": Buffer("charge", r.random(_N).astype(np.float32)),
        "neighbor_boxes": Buffer("neighbor_boxes", neighbors),
        "force": Buffer("force", np.zeros(_N, np.float32)),
    }


def _reference(inputs):
    px, py, pz = inputs["px"], inputs["py"], inputs["pz"]
    charge = inputs["charge"]
    neighbors = inputs["neighbor_boxes"].reshape(_BOXES, _NEIGHBORS)
    alpha = 0.5
    force = np.zeros(_N, np.float64)
    for tid in range(_N):
        box = tid // _PER_BOX
        boxes = [box] + list(neighbors[box])
        for ob in boxes:
            sl = slice(ob * _PER_BOX, (ob + 1) * _PER_BOX)
            dx = px[tid] - px[sl]
            dy = py[tid] - py[sl]
            dz = pz[tid] - pz[sl]
            r2 = dx * dx + dy * dy + dz * dz
            force[tid] += (charge[sl] * np.exp(-(alpha ** 2) * r2)).sum()
    return {"force": force.astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="lavaMD", kernel="lavaMD",
        source=LAVAMD_SRC, global_size=_N, default_local_size=64,
        make_buffers=_buffers,
        scalars={"alpha": 0.5, "per_box": _PER_BOX, "n": _N},
        reference=_reference,
    ),
]
