"""lud: blocked LU decomposition kernels (diagonal block factorisation
and perimeter update)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_B = 16              # block size
_N = _B * _B


def _block(seed: int) -> np.ndarray:
    r = rng(seed)
    a = r.standard_normal((_B, _B)).astype(np.float32)
    np.fill_diagonal(a, a.diagonal() + _B)
    return a


DIAGONAL_SRC = r"""
// In-place LU factorisation of the 16x16 diagonal block, cooperative
// across the work-group through local memory.
__kernel void diagonal(__global float* matrix, int bs) {
    int lid = get_local_id(0);
    __local float tile[256];
    // load one column per work-item (16 work-items active)
    if (lid < 16) {
        for (int i = 0; i < 16; i++) {
            tile[i * 16 + lid] = matrix[i * 16 + lid];
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 15; k++) {
        if (lid < 16) {
            if (lid > k) {
                tile[lid * 16 + k] /= tile[k * 16 + k];
                for (int j = k + 1; j < 16; j++) {
                    tile[lid * 16 + j] -= tile[lid * 16 + k]
                                        * tile[k * 16 + j];
                }
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid < 16) {
        for (int i = 0; i < 16; i++) {
            matrix[i * 16 + lid] = tile[i * 16 + lid];
        }
    }
}
"""

PERIMETER_SRC = r"""
// Update one row block of the perimeter using the factorised diagonal.
__kernel void perimeter(__global const float* diag,
                        __global float* row_block, int bs, int n_cols) {
    int col = get_global_id(0);
    if (col < n_cols) {
        // forward substitution: solve L * x = b for this column
        for (int i = 0; i < 16; i++) {
            float sum = row_block[i * 256 + col];
            for (int k = 0; k < 16; k++) {
                if (k < i) {
                    sum -= diag[i * 16 + k] * row_block[k * 256 + col];
                }
            }
            row_block[i * 256 + col] = sum;
        }
    }
}
"""


def _diagonal_buffers():
    return {"matrix": Buffer("matrix", _block(1301).reshape(-1))}


def _diagonal_reference(inputs):
    a = inputs["matrix"].reshape(_B, _B).astype(np.float32).copy()
    for k in range(_B - 1):
        for i in range(k + 1, _B):
            a[i, k] = np.float32(a[i, k] / a[k, k])
            a[i, k + 1:] = (a[i, k + 1:]
                            - a[i, k] * a[k, k + 1:]).astype(np.float32)
    return {"matrix": a.reshape(-1)}


_COLS = 256


def _perimeter_buffers():
    r = rng(1302)
    diag = _block(1301)
    # lower-triangular factor with unit diagonal, as diagonal() leaves it
    return {
        "diag": Buffer("diag", diag.reshape(-1)),
        "row_block": Buffer("row_block",
                            r.standard_normal(_B * _COLS)
                            .astype(np.float32)),
    }


def _perimeter_reference(inputs):
    diag = inputs["diag"].reshape(_B, _B)
    rb = inputs["row_block"].reshape(_B, _COLS).astype(np.float32).copy()
    for i in range(_B):
        s = rb[i].copy()
        for k in range(i):
            s = (s - np.float32(diag[i, k]) * rb[k]).astype(np.float32)
        rb[i] = s
    return {"row_block": rb.reshape(-1)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="lud", kernel="diagonal",
        source=DIAGONAL_SRC, global_size=16, default_local_size=16,
        make_buffers=_diagonal_buffers, scalars={"bs": _B},
        reference=_diagonal_reference,
    ),
    Workload(
        suite="rodinia", benchmark="lud", kernel="perimeter",
        source=PERIMETER_SRC, global_size=_COLS, default_local_size=64,
        make_buffers=_perimeter_buffers,
        scalars={"bs": _B, "n_cols": _COLS},
        reference=_perimeter_reference,
    ),
]
