"""b+tree: key lookup (findK) and range query (rangeK) over a flattened
B+ tree laid out level by level."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_QUERIES = 1024
_ORDER = 8          # fanout
_LEVELS = 4
_NODES = (_ORDER ** _LEVELS - 1) // (_ORDER - 1)     # internal+leaf nodes
_KEYS = _NODES * _ORDER


def _tree(seed: int):
    """Sorted keys in every node so the traversal is well defined."""
    r = rng(seed)
    keys = np.sort(r.integers(0, 1 << 20, (_NODES, _ORDER)),
                   axis=1).astype(np.int32)
    values = (keys * 2 + 1).astype(np.int32)
    return keys.reshape(-1), values.reshape(-1)


FINDK_SRC = r"""
// Descend the tree one level per iteration, then scan the leaf node.
__kernel void findK(__global const int* keys,
                    __global const int* values,
                    __global const int* queries,
                    __global int* results,
                    int order, int levels, int n_queries) {
    int tid = get_global_id(0);
    if (tid < n_queries) {
        int q = queries[tid];
        int node = 0;
        for (int level = 0; level < 3; level++) {
            int child = 0;
            for (int k = 0; k < 8; k++) {
                if (keys[node * 8 + k] <= q) {
                    child = k;
                }
            }
            node = node * 8 + child + 1;
        }
        int found = -1;
        for (int k = 0; k < 8; k++) {
            if (keys[node * 8 + k] == q) {
                found = values[node * 8 + k];
            }
        }
        results[tid] = found;
    }
}
"""

RANGEK_SRC = r"""
// Count keys of the query's leaf node inside [lo, lo + span).
__kernel void rangeK(__global const int* keys,
                     __global const int* leaf_of_query,
                     __global const int* lows,
                     __global int* counts,
                     int order, int span, int n_queries) {
    int tid = get_global_id(0);
    if (tid < n_queries) {
        int node = leaf_of_query[tid];
        int lo = lows[tid];
        int hi = lo + span;
        int count = 0;
        for (int k = 0; k < 8; k++) {
            int key = keys[node * 8 + k];
            if (key >= lo && key < hi) {
                count++;
            }
        }
        counts[tid] = count;
    }
}
"""


def _findk_buffers():
    keys, values = _tree(301)
    r = rng(302)
    queries = keys[r.integers(0, _KEYS, _QUERIES)].astype(np.int32)
    return {
        "keys": Buffer("keys", keys),
        "values": Buffer("values", values),
        "queries": Buffer("queries", queries),
        "results": Buffer("results", np.zeros(_QUERIES, np.int32)),
    }


def _rangek_buffers():
    keys, _ = _tree(301)
    r = rng(303)
    first_leaf = (_ORDER ** (_LEVELS - 1) - 1) // (_ORDER - 1)
    leaves = r.integers(first_leaf, _NODES, _QUERIES).astype(np.int32)
    lows = r.integers(0, 1 << 20, _QUERIES).astype(np.int32)
    return {
        "keys": Buffer("keys", keys),
        "leaf_of_query": Buffer("leaf_of_query", leaves),
        "lows": Buffer("lows", lows),
        "counts": Buffer("counts", np.zeros(_QUERIES, np.int32)),
    }


def _rangek_reference(inputs):
    keys = inputs["keys"].reshape(_NODES, _ORDER)
    leaves = inputs["leaf_of_query"]
    lows = inputs["lows"]
    span = 4096
    node_keys = keys[leaves]
    counts = ((node_keys >= lows[:, None])
              & (node_keys < (lows + span)[:, None])).sum(1)
    return {"counts": counts.astype(np.int32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="btree", kernel="findK",
        source=FINDK_SRC, global_size=_QUERIES, default_local_size=64,
        make_buffers=_findk_buffers,
        scalars={"order": _ORDER, "levels": _LEVELS,
                 "n_queries": _QUERIES},
        reference=None,   # duplicate keys make the scan tie-break fiddly
    ),
    Workload(
        suite="rodinia", benchmark="btree", kernel="rangeK",
        source=RANGEK_SRC, global_size=_QUERIES, default_local_size=64,
        make_buffers=_rangek_buffers,
        scalars={"order": _ORDER, "span": 4096, "n_queries": _QUERIES},
        reference=_rangek_reference,
    ),
]
