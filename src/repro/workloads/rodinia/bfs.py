"""bfs: breadth-first search frontier expansion (two kernels)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_NODES = 2048
_DEGREE = 4


def _graph(seed: int):
    r = rng(seed)
    starts = np.arange(_NODES, dtype=np.int32) * _DEGREE
    edges = r.integers(0, _NODES, _NODES * _DEGREE).astype(np.int32)
    return starts, edges


BFS1_SRC = r"""
// Expand the current frontier: every masked node visits its neighbours.
__kernel void bfs_1(__global const int* starts,
                    __global const int* edges,
                    __global const int* mask,
                    __global int* updating_mask,
                    __global int* visited,
                    __global int* cost,
                    int degree, int n_nodes) {
    int tid = get_global_id(0);
    if (tid < n_nodes) {
        if (mask[tid] != 0) {
            int my_cost = cost[tid];
            int first = starts[tid];
            for (int e = 0; e < 4; e++) {
                int nb = edges[first + e];
                if (visited[nb] == 0) {
                    cost[nb] = my_cost + 1;
                    updating_mask[nb] = 1;
                }
            }
        }
    }
}
"""

BFS2_SRC = r"""
// Commit the updating mask into the frontier for the next level.
__kernel void bfs_2(__global int* mask,
                    __global int* updating_mask,
                    __global int* visited,
                    __global int* over,
                    int n_nodes) {
    int tid = get_global_id(0);
    if (tid < n_nodes) {
        mask[tid] = 0;
        if (updating_mask[tid] != 0) {
            mask[tid] = 1;
            visited[tid] = 1;
            updating_mask[tid] = 0;
            over[0] = 1;
        }
    }
}
"""


def _bfs1_buffers():
    starts, edges = _graph(201)
    mask = np.zeros(_NODES, np.int32)
    mask[:64] = 1
    visited = np.zeros(_NODES, np.int32)
    visited[:64] = 1
    return {
        "starts": Buffer("starts", starts),
        "edges": Buffer("edges", edges),
        "mask": Buffer("mask", mask),
        "updating_mask": Buffer("updating_mask",
                                np.zeros(_NODES, np.int32)),
        "visited": Buffer("visited", visited),
        "cost": Buffer("cost", np.zeros(_NODES, np.int32)),
    }


def _bfs2_buffers():
    r = rng(202)
    updating = (r.random(_NODES) < 0.3).astype(np.int32)
    return {
        "mask": Buffer("mask", np.zeros(_NODES, np.int32)),
        "updating_mask": Buffer("updating_mask", updating),
        "visited": Buffer("visited", np.zeros(_NODES, np.int32)),
        "over": Buffer("over", np.zeros(4, np.int32)),
    }


def _bfs2_reference(inputs):
    updating = inputs["updating_mask"]
    mask = (updating != 0).astype(np.int32)
    visited = mask.copy()
    over = inputs["over"].copy()
    if mask.any():
        over[0] = 1
    return {"mask": mask, "visited": visited,
            "updating_mask": np.zeros(_NODES, np.int32), "over": over}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="bfs", kernel="bfs_1",
        source=BFS1_SRC, global_size=_NODES, default_local_size=64,
        make_buffers=_bfs1_buffers,
        scalars={"degree": _DEGREE, "n_nodes": _NODES},
        reference=None,   # scatter order makes a simple reference racy
    ),
    Workload(
        suite="rodinia", benchmark="bfs", kernel="bfs_2",
        source=BFS2_SRC, global_size=_NODES, default_local_size=64,
        make_buffers=_bfs2_buffers,
        scalars={"n_nodes": _NODES},
        reference=_bfs2_reference,
    ),
]
