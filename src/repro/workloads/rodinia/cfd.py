"""cfd: Euler solver helper kernels (memset / initialize / compute /
time_step) over unstructured-mesh element state."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_ELEMS = 2048
_VARS = 4            # density + 3 momentum components (simplified)
_NEIGHBORS = 4


MEMSET_SRC = r"""
__kernel void memset(__global float* data, float value, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        for (int v = 0; v < 4; v++) {
            data[v * 2048 + tid] = value;
        }
    }
}
"""

INITIALIZE_SRC = r"""
__kernel void initialize(__global float* variables,
                         __global const float* ff_variable, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        for (int v = 0; v < 4; v++) {
            variables[v * 2048 + tid] = ff_variable[v];
        }
    }
}
"""

COMPUTE_SRC = r"""
// Flux accumulation from mesh neighbours.
__kernel void compute(__global const float* variables,
                      __global const int* neighbors,
                      __global const float* normals,
                      __global float* fluxes, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float density = variables[tid];
        float mx = variables[2048 + tid];
        float my = variables[2 * 2048 + tid];
        float mz = variables[3 * 2048 + tid];
        float flux_d = 0.0f;
        float flux_x = 0.0f;
        for (int j = 0; j < 4; j++) {
            int nb = neighbors[tid * 4 + j];
            float normal = normals[tid * 4 + j];
            if (nb >= 0) {
                float nb_density = variables[nb];
                float nb_mx = variables[2048 + nb];
                flux_d += normal * (nb_density - density);
                flux_x += normal * (nb_mx - mx);
            }
        }
        fluxes[tid] = flux_d + 0.25f * (mx + my + mz);
        fluxes[2048 + tid] = flux_x;
    }
}
"""

TIME_STEP_SRC = r"""
__kernel void time_step(__global float* variables,
                        __global const float* old_variables,
                        __global const float* fluxes,
                        __global const float* step_factors, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        float factor = step_factors[tid] / 3.0f;
        variables[tid] = old_variables[tid] + factor * fluxes[tid];
        variables[2048 + tid] = old_variables[2048 + tid]
                              + factor * fluxes[2048 + tid];
    }
}
"""


def _memset_buffers():
    return {"data": Buffer("data",
                           rng(401).standard_normal(_VARS * _ELEMS)
                           .astype(np.float32))}


def _memset_reference(inputs):
    return {"data": np.full(_VARS * _ELEMS, 0.0, np.float32)}


def _initialize_buffers():
    r = rng(402)
    return {
        "variables": Buffer("variables",
                            np.zeros(_VARS * _ELEMS, np.float32)),
        "ff_variable": Buffer("ff_variable",
                              r.standard_normal(_VARS)
                              .astype(np.float32)),
    }


def _initialize_reference(inputs):
    ff = inputs["ff_variable"]
    out = np.repeat(ff, _ELEMS).astype(np.float32)
    return {"variables": out}


def _compute_buffers():
    r = rng(403)
    neighbors = r.integers(-1, _ELEMS, _ELEMS * _NEIGHBORS).astype(np.int32)
    return {
        "variables": Buffer("variables",
                            r.standard_normal(_VARS * _ELEMS)
                            .astype(np.float32)),
        "neighbors": Buffer("neighbors", neighbors),
        "normals": Buffer("normals",
                          r.standard_normal(_ELEMS * _NEIGHBORS)
                          .astype(np.float32)),
        "fluxes": Buffer("fluxes", np.zeros(2 * _ELEMS, np.float32)),
    }


def _time_step_buffers():
    r = rng(404)
    return {
        "variables": Buffer("variables",
                            np.zeros(_VARS * _ELEMS, np.float32)),
        "old_variables": Buffer("old_variables",
                                r.standard_normal(_VARS * _ELEMS)
                                .astype(np.float32)),
        "fluxes": Buffer("fluxes",
                         r.standard_normal(2 * _ELEMS)
                         .astype(np.float32)),
        "step_factors": Buffer("step_factors",
                               r.random(_ELEMS).astype(np.float32)),
    }


def _time_step_reference(inputs):
    old = inputs["old_variables"].copy()
    fluxes = inputs["fluxes"]
    factor = inputs["step_factors"] / np.float32(3.0)
    out = inputs["variables"].copy()
    out[:_ELEMS] = old[:_ELEMS] + factor * fluxes[:_ELEMS]
    out[_ELEMS:2 * _ELEMS] = (old[_ELEMS:2 * _ELEMS]
                              + factor * fluxes[_ELEMS:2 * _ELEMS])
    return {"variables": out.astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="cfd", kernel="memset",
        source=MEMSET_SRC, global_size=_ELEMS, default_local_size=64,
        make_buffers=_memset_buffers,
        scalars={"value": 0.0, "n": _ELEMS},
        reference=_memset_reference,
    ),
    Workload(
        suite="rodinia", benchmark="cfd", kernel="initialize",
        source=INITIALIZE_SRC, global_size=_ELEMS, default_local_size=64,
        make_buffers=_initialize_buffers,
        scalars={"n": _ELEMS},
        reference=_initialize_reference,
    ),
    Workload(
        suite="rodinia", benchmark="cfd", kernel="compute",
        source=COMPUTE_SRC, global_size=_ELEMS, default_local_size=64,
        make_buffers=_compute_buffers,
        scalars={"n": _ELEMS},
        reference=None,    # gather over random neighbours: checked by
                           # a dedicated integration test instead
    ),
    Workload(
        suite="rodinia", benchmark="cfd", kernel="time_step",
        source=TIME_STEP_SRC, global_size=_ELEMS, default_local_size=64,
        make_buffers=_time_step_buffers,
        scalars={"n": _ELEMS},
        reference=_time_step_reference,
    ),
]
