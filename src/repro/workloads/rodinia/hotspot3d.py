"""hotspot3D: 3-D thermal stencil (one time step)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_NX = 16
_NY = 16
_NZ = 8
_N = _NX * _NY * _NZ

HOTSPOT3D_SRC = r"""
// 7-point 3-D stencil, flattened z-major.
__kernel void hotspot3D(__global const float* tIn,
                        __global const float* pIn,
                        __global float* tOut,
                        int nx, int ny, int nz,
                        float cc, float cn, float cs, float ce,
                        float cw, float ct, float cb, float amb) {
    int tid = get_global_id(0);
    int n = nx * ny * nz;
    if (tid < n) {
        int plane = nx * ny;
        int z = tid / plane;
        int rem = tid % plane;
        int y = rem / nx;
        int x = rem % nx;
        float center = tIn[tid];
        float west = x > 0 ? tIn[tid - 1] : center;
        float east = x < nx - 1 ? tIn[tid + 1] : center;
        float north = y > 0 ? tIn[tid - nx] : center;
        float south = y < ny - 1 ? tIn[tid + nx] : center;
        float bottom = z > 0 ? tIn[tid - plane] : center;
        float top = z < nz - 1 ? tIn[tid + plane] : center;
        tOut[tid] = cc * center + cn * north + cs * south
                  + ce * east + cw * west + ct * top + cb * bottom
                  + cb * amb + pIn[tid];
    }
}
"""

_PARAMS = {"nx": _NX, "ny": _NY, "nz": _NZ,
           "cc": 0.4, "cn": 0.1, "cs": 0.1, "ce": 0.1, "cw": 0.1,
           "ct": 0.1, "cb": 0.1, "amb": 80.0}


def _buffers():
    r = rng(801)
    return {
        "tIn": Buffer("tIn",
                      (320.0 + r.random(_N) * 20).astype(np.float32)),
        "pIn": Buffer("pIn", r.random(_N).astype(np.float32)),
        "tOut": Buffer("tOut", np.zeros(_N, np.float32)),
    }


def _reference(inputs):
    t = inputs["tIn"].reshape(_NZ, _NY, _NX).astype(np.float64)
    p = inputs["pIn"].reshape(_NZ, _NY, _NX).astype(np.float64)

    def shift(axis, direction):
        s = np.roll(t, direction, axis=axis)
        # Boundary clamps to the centre value.
        idx = [slice(None)] * 3
        idx[axis] = 0 if direction == 1 else -1
        s[tuple(idx)] = t[tuple(idx)]
        return s

    west = shift(2, 1)
    east = shift(2, -1)
    north = shift(1, 1)
    south = shift(1, -1)
    bottom = shift(0, 1)
    top = shift(0, -1)
    c = _PARAMS
    out = (c["cc"] * t + c["cn"] * north + c["cs"] * south
           + c["ce"] * east + c["cw"] * west + c["ct"] * top
           + c["cb"] * bottom + c["cb"] * c["amb"] + p)
    return {"tOut": out.reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="hotspot3D", kernel="hotspot3D",
        source=HOTSPOT3D_SRC, global_size=_N, default_local_size=64,
        make_buffers=_buffers, scalars=_PARAMS, reference=_reference,
    ),
]
