"""leukocyte: cell-detection kernels — GICOV score, grey-scale dilation,
and the motion gradient vector flow (IMGVF) step."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_W = 64
_H = 32
_N = _W * _H

GICOV_SRC = r"""
// Gradient inverse coefficient of variation along a fixed-size circle
// stencil approximated by an 8-sample ring.
__kernel void gicov(__global const float* gradx,
                    __global const float* grady,
                    __global float* score,
                    int width, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        int row = tid / 64;
        int col = tid % 64;
        float sum = 0.0f;
        float sum2 = 0.0f;
        for (int s = 0; s < 8; s++) {
            int dr = s < 4 ? s - 2 : 0;
            int dc = s < 4 ? 0 : s - 6;
            int r = row + dr;
            int c = col + dc;
            r = max(0, min(r, 31));
            c = max(0, min(c, 63));
            float g = gradx[r * 64 + c] + grady[r * 64 + c];
            sum += g;
            sum2 += g * g;
        }
        float mean = sum / 8.0f;
        float var = sum2 / 8.0f - mean * mean;
        score[tid] = var > 1.0e-6f ? mean * mean / var : 0.0f;
    }
}
"""

DILATE_SRC = r"""
// Grey-scale dilation with a 3x3 structuring element.
__kernel void dilate(__global const float* img,
                     __global float* out,
                     int width, int height) {
    int tid = get_global_id(0);
    int n = width * height;
    if (tid < n) {
        int row = tid / 64;
        int col = tid % 64;
        float best = -3.402823466e38f;
        for (int dr = -1; dr <= 1; dr++) {
            for (int dc = -1; dc <= 1; dc++) {
                int r = max(0, min(row + dr, 31));
                int c = max(0, min(col + dc, 63));
                float v = img[r * 64 + c];
                best = fmax(best, v);
            }
        }
        out[tid] = best;
    }
}
"""

IMGVF_SRC = r"""
// One Jacobi iteration of the motion gradient vector flow.
__kernel void imgvf(__global const float* imgvf_in,
                    __global const float* I,
                    __global float* imgvf_out,
                    float mu, float lambda, int width, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        int row = tid / 64;
        int col = tid % 64;
        float c = imgvf_in[tid];
        float up = row > 0 ? imgvf_in[tid - 64] : c;
        float down = row < 31 ? imgvf_in[tid + 64] : c;
        float left = col > 0 ? imgvf_in[tid - 1] : c;
        float right = col < 63 ? imgvf_in[tid + 1] : c;
        float lap = up + down + left + right - 4.0f * c;
        float vI = I[tid];
        imgvf_out[tid] = c + mu / lambda * lap - vI * (c - vI);
    }
}
"""


def _gicov_buffers():
    r = rng(1201)
    return {
        "gradx": Buffer("gradx", r.standard_normal(_N).astype(np.float32)),
        "grady": Buffer("grady", r.standard_normal(_N).astype(np.float32)),
        "score": Buffer("score", np.zeros(_N, np.float32)),
    }


def _dilate_buffers():
    r = rng(1202)
    return {
        "img": Buffer("img", r.random(_N).astype(np.float32)),
        "out": Buffer("out", np.zeros(_N, np.float32)),
    }


def _dilate_reference(inputs):
    img = inputs["img"].reshape(_H, _W)
    out = np.empty_like(img)
    for row in range(_H):
        for col in range(_W):
            r0, r1 = max(0, row - 1), min(_H - 1, row + 1)
            c0, c1 = max(0, col - 1), min(_W - 1, col + 1)
            out[row, col] = img[r0:r1 + 1, c0:c1 + 1].max()
    return {"out": out.reshape(-1)}


def _imgvf_buffers():
    r = rng(1203)
    return {
        "imgvf_in": Buffer("imgvf_in",
                           r.standard_normal(_N).astype(np.float32)),
        "I": Buffer("I", r.random(_N).astype(np.float32)),
        "imgvf_out": Buffer("imgvf_out", np.zeros(_N, np.float32)),
    }


def _imgvf_reference(inputs):
    c = inputs["imgvf_in"].reshape(_H, _W).astype(np.float64)
    vI = inputs["I"].reshape(_H, _W).astype(np.float64)
    up = np.vstack([c[:1], c[:-1]])
    down = np.vstack([c[1:], c[-1:]])
    left = np.hstack([c[:, :1], c[:, :-1]])
    right = np.hstack([c[:, 1:], c[:, -1:]])
    lap = up + down + left + right - 4 * c
    mu, lam = 0.05, 1.0
    out = c + mu / lam * lap - vI * (c - vI)
    return {"imgvf_out": out.reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="leukocyte", kernel="gicov",
        source=GICOV_SRC, global_size=_N, default_local_size=64,
        make_buffers=_gicov_buffers,
        scalars={"width": _W, "n": _N},
        reference=None,    # ring-sample tie-breaking is checked in unit
                           # tests via spot values
    ),
    Workload(
        suite="rodinia", benchmark="leukocyte", kernel="dilate",
        source=DILATE_SRC, global_size=_N, default_local_size=64,
        make_buffers=_dilate_buffers,
        scalars={"width": _W, "height": _H},
        reference=_dilate_reference,
    ),
    Workload(
        suite="rodinia", benchmark="leukocyte", kernel="imgvf",
        source=IMGVF_SRC, global_size=_N, default_local_size=64,
        make_buffers=_imgvf_buffers,
        scalars={"mu": 0.05, "lambda": 1.0, "width": _W, "n": _N},
        reference=_imgvf_reference,
    ),
]
