"""dwt2d: 2-D discrete wavelet transform pipeline kernels."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_W = 64
_H = 32
_PIXELS = _W * _H


COMPUTE_SRC = r"""
// Colour-space compute: RGB -> luminance-style weighted combination.
__kernel void compute(__global const float* r,
                      __global const float* g,
                      __global const float* b,
                      __global float* out, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        out[tid] = 0.299f * r[tid] + 0.587f * g[tid] + 0.114f * b[tid];
    }
}
"""

COMPONENTS_SRC = r"""
// De-interleave packed RGB into planar components.
__kernel void components(__global const float* packed,
                         __global float* r,
                         __global float* g,
                         __global float* b, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        r[tid] = packed[tid * 3];
        g[tid] = packed[tid * 3 + 1];
        b[tid] = packed[tid * 3 + 2];
    }
}
"""

COMPONENT_SRC = r"""
// Single-component copy with level shift (the bmp -> component kernel).
__kernel void component(__global const float* src,
                        __global float* dst, int n) {
    int tid = get_global_id(0);
    if (tid < n) {
        dst[tid] = src[tid] - 128.0f;
    }
}
"""

FDWT_SRC = r"""
// Forward 5/3 lifting step along rows: predict + update via local tile.
__kernel void fdwt(__global const float* src,
                   __global float* low,
                   __global float* high,
                   int width, int n_rows) {
    int row = get_global_id(0);
    int half = width / 2;
    if (row < n_rows) {
        for (int i = 0; i < 32; i++) {
            float even = src[row * 64 + 2 * i];
            float odd = src[row * 64 + 2 * i + 1];
            float next = 0.0f;
            if (i < 31) {
                next = src[row * 64 + 2 * i + 2];
            } else {
                next = even;
            }
            float d = odd - 0.5f * (even + next);
            float s = even + 0.25f * d;
            low[row * 32 + i] = s;
            high[row * 32 + i] = d;
        }
    }
}
"""


def _compute_buffers():
    r = rng(501)
    return {
        "r": Buffer("r", r.random(_PIXELS).astype(np.float32)),
        "g": Buffer("g", r.random(_PIXELS).astype(np.float32)),
        "b": Buffer("b", r.random(_PIXELS).astype(np.float32)),
        "out": Buffer("out", np.zeros(_PIXELS, np.float32)),
    }


def _compute_reference(inputs):
    out = (0.299 * inputs["r"] + 0.587 * inputs["g"]
           + 0.114 * inputs["b"])
    return {"out": out.astype(np.float32)}


def _components_buffers():
    r = rng(502)
    return {
        "packed": Buffer("packed",
                         r.random(_PIXELS * 3).astype(np.float32)),
        "r": Buffer("r", np.zeros(_PIXELS, np.float32)),
        "g": Buffer("g", np.zeros(_PIXELS, np.float32)),
        "b": Buffer("b", np.zeros(_PIXELS, np.float32)),
    }


def _components_reference(inputs):
    packed = inputs["packed"].reshape(_PIXELS, 3)
    return {"r": packed[:, 0].copy(), "g": packed[:, 1].copy(),
            "b": packed[:, 2].copy()}


def _component_buffers():
    r = rng(503)
    return {
        "src": Buffer("src",
                      (r.random(_PIXELS) * 255).astype(np.float32)),
        "dst": Buffer("dst", np.zeros(_PIXELS, np.float32)),
    }


def _component_reference(inputs):
    return {"dst": (inputs["src"] - 128.0).astype(np.float32)}


def _fdwt_buffers():
    r = rng(504)
    return {
        "src": Buffer("src",
                      r.standard_normal(_H * _W).astype(np.float32)),
        "low": Buffer("low", np.zeros(_H * _W // 2, np.float32)),
        "high": Buffer("high", np.zeros(_H * _W // 2, np.float32)),
    }


def _fdwt_reference(inputs):
    src = inputs["src"].reshape(_H, _W)
    even = src[:, 0::2]
    odd = src[:, 1::2]
    nxt = np.concatenate([even[:, 1:], even[:, -1:]], axis=1)
    d = odd - 0.5 * (even + nxt)
    s = even + 0.25 * d
    return {"low": s.reshape(-1).astype(np.float32),
            "high": d.reshape(-1).astype(np.float32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="dwt2d", kernel="compute",
        source=COMPUTE_SRC, global_size=_PIXELS, default_local_size=64,
        make_buffers=_compute_buffers, scalars={"n": _PIXELS},
        reference=_compute_reference,
    ),
    Workload(
        suite="rodinia", benchmark="dwt2d", kernel="components",
        source=COMPONENTS_SRC, global_size=_PIXELS, default_local_size=64,
        make_buffers=_components_buffers, scalars={"n": _PIXELS},
        reference=_components_reference,
    ),
    Workload(
        suite="rodinia", benchmark="dwt2d", kernel="component",
        source=COMPONENT_SRC, global_size=_PIXELS, default_local_size=64,
        make_buffers=_component_buffers, scalars={"n": _PIXELS},
        reference=_component_reference,
    ),
    Workload(
        suite="rodinia", benchmark="dwt2d", kernel="fdwt",
        source=FDWT_SRC, global_size=_H * 2, default_local_size=16,
        make_buffers=_fdwt_buffers,
        scalars={"width": _W, "n_rows": _H},
        reference=_fdwt_reference,
    ),
]
