"""kmeans: nearest-centre assignment (center) and the layout-transpose
kernel (swap)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_POINTS = 1024
_FEATURES = 8
_CLUSTERS = 5


CENTER_SRC = r"""
// Assign each point to the nearest cluster centre.
__kernel void center(__global const float* features,
                     __global const float* clusters,
                     __global int* membership,
                     int n_points, int n_clusters, int n_features) {
    int tid = get_global_id(0);
    if (tid < n_points) {
        int index = 0;
        float min_dist = 3.402823466e38f;
        for (int c = 0; c < 5; c++) {
            float dist = 0.0f;
            for (int f = 0; f < 8; f++) {
                float diff = features[tid * 8 + f] - clusters[c * 8 + f];
                dist += diff * diff;
            }
            if (dist < min_dist) {
                min_dist = dist;
                index = c;
            }
        }
        membership[tid] = index;
    }
}
"""

SWAP_SRC = r"""
// Transpose point-major feature layout into feature-major.
__kernel void swap(__global const float* features,
                   __global float* features_swap,
                   int n_points, int n_features) {
    int tid = get_global_id(0);
    if (tid < n_points) {
        for (int f = 0; f < 8; f++) {
            features_swap[f * 1024 + tid] = features[tid * 8 + f];
        }
    }
}
"""


def _center_buffers():
    r = rng(1001)
    return {
        "features": Buffer("features",
                           r.standard_normal(_POINTS * _FEATURES)
                           .astype(np.float32)),
        "clusters": Buffer("clusters",
                           r.standard_normal(_CLUSTERS * _FEATURES)
                           .astype(np.float32)),
        "membership": Buffer("membership",
                             np.zeros(_POINTS, np.int32)),
    }


def _center_reference(inputs):
    pts = inputs["features"].reshape(_POINTS, _FEATURES)
    ctr = inputs["clusters"].reshape(_CLUSTERS, _FEATURES)
    d = ((pts[:, None, :] - ctr[None, :, :]) ** 2).sum(-1)
    return {"membership": d.argmin(1).astype(np.int32)}


def _swap_buffers():
    r = rng(1002)
    return {
        "features": Buffer("features",
                           r.standard_normal(_POINTS * _FEATURES)
                           .astype(np.float32)),
        "features_swap": Buffer("features_swap",
                                np.zeros(_POINTS * _FEATURES,
                                         np.float32)),
    }


def _swap_reference(inputs):
    pts = inputs["features"].reshape(_POINTS, _FEATURES)
    return {"features_swap": pts.T.reshape(-1).copy()}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="kmeans", kernel="center",
        source=CENTER_SRC, global_size=_POINTS, default_local_size=64,
        make_buffers=_center_buffers,
        scalars={"n_points": _POINTS, "n_clusters": _CLUSTERS,
                 "n_features": _FEATURES},
        reference=_center_reference,
    ),
    Workload(
        suite="rodinia", benchmark="kmeans", kernel="swap",
        source=SWAP_SRC, global_size=_POINTS, default_local_size=64,
        make_buffers=_swap_buffers,
        scalars={"n_points": _POINTS, "n_features": _FEATURES},
        reference=_swap_reference,
    ),
]
