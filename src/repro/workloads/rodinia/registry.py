"""Assemble the 45-kernel Rodinia registry (Table 2's kernel list)."""

from __future__ import annotations

from repro.workloads.base import WorkloadRegistry
from repro.workloads.rodinia import (
    backprop,
    bfs,
    btree,
    cfd,
    dwt2d,
    gaussian,
    hotspot,
    hotspot3d,
    hybridsort,
    kmeans,
    lavamd,
    leukocyte,
    lud,
    nn,
    nw,
    particlefilter,
    pathfinder,
    srad,
    streamcluster,
)

RODINIA = WorkloadRegistry()
for _module in (backprop, bfs, btree, cfd, dwt2d, gaussian, hotspot,
                hotspot3d, hybridsort, kmeans, lavamd, leukocyte, lud,
                nn, nw, particlefilter, pathfinder, srad, streamcluster):
    for _workload in _module.WORKLOADS:
        RODINIA.add(_workload)
