"""pathfinder: dynamic-programming grid traversal (one row step)."""

from __future__ import annotations

import numpy as np

from repro.interp import Buffer
from repro.workloads.base import Workload, rng

_COLS = 2048

DYNPROC_SRC = r"""
// dst[c] = wall[c] + min(src[c-1], src[c], src[c+1]), with a local tile
// so neighbours are read from on-chip memory.
__kernel void dynproc(__global const int* wall,
                      __global const int* src,
                      __global int* dst, int cols) {
    int tid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    __local int tile[258];
    if (tid < cols) {
        tile[lid + 1] = src[tid];
        if (lid == 0) {
            tile[0] = tid > 0 ? src[tid - 1] : src[tid];
        }
        if (lid == lsz - 1) {
            tile[lsz + 1] = tid < cols - 1 ? src[tid + 1] : src[tid];
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (tid < cols) {
        int left = tile[lid];
        int center = tile[lid + 1];
        int right = tile[lid + 2];
        int shortest = min(left, min(center, right));
        dst[tid] = wall[tid] + shortest;
    }
}
"""


def _buffers():
    r = rng(1701)
    return {
        "wall": Buffer("wall",
                       r.integers(0, 10, _COLS).astype(np.int32)),
        "src": Buffer("src",
                      r.integers(0, 100, _COLS).astype(np.int32)),
        "dst": Buffer("dst", np.zeros(_COLS, np.int32)),
    }


def _reference(inputs):
    src = inputs["src"].astype(np.int64)
    left = np.concatenate([src[:1], src[:-1]])
    right = np.concatenate([src[1:], src[-1:]])
    shortest = np.minimum(left, np.minimum(src, right))
    return {"dst": (inputs["wall"] + shortest).astype(np.int32)}


WORKLOADS = [
    Workload(
        suite="rodinia", benchmark="pathfinder", kernel="dynproc",
        source=DYNPROC_SRC, global_size=_COLS, default_local_size=64,
        make_buffers=_buffers, scalars={"cols": _COLS},
        reference=_reference,
    ),
]
