"""The daemon's bounded worker pool.

Model evaluation is CPU-bound Python, so the default executor is a
forked :class:`~concurrent.futures.ProcessPoolExecutor` sized by
``--jobs`` — the same strategy as ``explore --jobs`` and
``suite --jobs``.  Each forked worker opens its own handle on the
shared *disk* store (content-addressed + atomic writes make concurrent
stores safe), and everything it computes lands there for the parent
and future workers to reuse.

``--executor thread`` swaps in a :class:`ThreadPoolExecutor` whose
workers share the parent's in-memory :class:`~repro.cache.hot.HotCache`
directly, so even the artifact layers (analysis, PE schedules, memory
model) are served from memory.  Threads serialize on the GIL for
cold evaluations, but a warm server answers from the hot tier without
entering the pool at all — this is the mode the tests and the CI smoke
job use, and the right choice when requests repeat heavily.

Tasks and results cross the pool as plain dicts/lists
(:func:`repro.serve.api.run_task`), so no closure pickling is needed
in either mode.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Optional

from repro.serve.api import run_task

#: the forked worker's cache handle, opened once per worker process
_worker_cache = None
_worker_cache_opened = False


def _process_worker_run(task: dict):
    """Top-level (picklable) worker entry: run one task against the
    worker's own disk-store handle."""
    global _worker_cache, _worker_cache_opened
    if not _worker_cache_opened:
        _worker_cache_opened = True
        if not task.get("no_cache"):
            from repro.cache import open_cache
            _worker_cache = open_cache(task.get("cache_dir"))
    return run_task(task, cache=_worker_cache)


def default_jobs() -> int:
    """Worker count when none is requested: one per core, minus one
    for the event loop."""
    return max(1, (os.cpu_count() or 2) - 1)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method (the
    only one that lets workers inherit compiled modules for free)."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """A bounded executor the daemon submits :func:`run_task` dicts to.

    ``mode`` is 'process', 'thread', or 'auto' (process when fork is
    available).  In thread mode *shared_cache* (the daemon's HotCache)
    is handed to every task so artifact lookups hit the in-memory tier;
    in process mode tasks carry ``cache_dir``/``no_cache`` and workers
    open the disk store themselves.
    """

    def __init__(self, jobs: Optional[int] = None, mode: str = "auto",
                 shared_cache=None) -> None:
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        if mode == "auto":
            mode = "process" if fork_available() else "thread"
        if mode == "process" and not fork_available():
            mode = "thread"
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = mode
        self.shared_cache = shared_cache
        if mode == "process":
            ctx = multiprocessing.get_context("fork")
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx)
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix="repro-serve")

    def submit(self, task: dict) -> concurrent.futures.Future:
        """Schedule one task; returns the executor future (wrap with
        ``asyncio.wrap_future`` to await it on the event loop)."""
        if self.mode == "process":
            return self._executor.submit(_process_worker_run, task)
        return self._executor.submit(run_task, task, self.shared_cache)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
