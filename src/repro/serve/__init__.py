"""``repro serve``: a long-running prediction daemon (``repro.serve``).

The CLI pays Python start-up, frontend compilation, and (on a cold
cache) kernel profiling for every invocation.  This package keeps one
warm process resident and answers the same questions over HTTP/JSON —
with an in-memory hot tier above the persistent store, coalescing of
concurrent identical requests, a bounded worker pool for cold
evaluations, and backpressure instead of unbounded queueing.

:mod:`repro.serve.api` is the shared payload layer: the CLI's
``--json`` output and the daemon's responses are rendered from the
same builders, which makes served responses byte-identical to the
equivalent CLI invocation (see ``tests/test_serve_differential.py``).

See ``docs/SERVING.md`` for the endpoint reference.
"""

from repro.serve.api import (
    ApiError,
    canonical_json,
    encode_body,
    explore_payload,
    predict_graph_payload,
    predict_payload,
    request_key,
    suite_payload,
)
from repro.serve.daemon import (
    PredictionServer,
    ServeHandle,
    ServerConfig,
    serve_in_thread,
)
from repro.serve.pool import WorkerPool

__all__ = [
    "ApiError",
    "PredictionServer",
    "ServeHandle",
    "ServerConfig",
    "WorkerPool",
    "canonical_json",
    "encode_body",
    "explore_payload",
    "predict_graph_payload",
    "predict_payload",
    "request_key",
    "serve_in_thread",
    "suite_payload",
]
