"""Canonical request specs and JSON payload builders.

This module is the single source of truth for what a prediction
*means* as data: the CLI's ``--json`` output and the serve daemon's
HTTP responses are both produced by the functions here, which is what
makes the differential guarantee — a served response is byte-identical
to the equivalent CLI invocation — enforceable rather than aspirational.

Everything here is deterministic: payloads contain no wall-clock
timings, worker counts, or cache statistics, only the modelled facts.
:func:`canonical_json` fixes the byte encoding (sorted keys, 2-space
indent, trailing newline).

The functions take a *spec* — a plain JSON-able dict — so the same
values can arrive from ``argparse`` or an HTTP body, and so a request
can cross a process-pool boundary without custom pickling.

Request shapes (all fields beyond the required ones have defaults):

``predict`` / ``explore``::

    {"source": "<OpenCL C>", "kernel": "saxpy", "global_size": 4096,
     "wg": 64, "pe": 1, "cu": 1, "vector": 1, "mode": "pipeline",
     "pipeline": true, "wg_pipeline": false, "device": "virtex7",
     "static_trace": "auto", "args": {"alpha": 2.0}, "simulate": false}
    {"workload": "rodinia/nw/kernel1", "wg": 16}     # catalog form

``predict-graph``::

    {"program": "srad", "realization": "both", "depth": 16,
     "wg": null, "device": "virtex7"}

``suite``::

    {"suite": "rodinia", "limit": 4, "designs": 8,
     "static_trace": "auto", "device": "virtex7"}
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache import (
    device_fingerprint,
    digest,
    function_fingerprint,
    open_cache,
)

#: design parameters shared by the predict spec and the CLI flags
STATIC_TRACE_MODES = ("auto", "always", "never")
INTERP_MODES = ("auto", "vectorized", "scalar")
COMM_MODES = ("pipeline", "barrier")
REALIZATION_MODES = ("dram", "pipe", "both")
#: /predict answer tiers: the exact analytical model, or the learned
#: surrogate's approximate-but-instant answer with confidence bounds
PREDICT_TIERS = ("exact", "instant")
#: /explore pre-filter modes (surrogate = exact-evaluate only the
#: surrogate-ranked top slice; see repro.dse.explorer)
EXPLORE_PREFILTERS = ("none", "surrogate")

#: KernelInfo.trace_source -> the provenance string payloads report
TRACE_PROVENANCE = {"synth": "synthesized",
                    "vectorized": "vectorized",
                    "scalar": "interpreted"}


class ApiError(Exception):
    """A malformed or unsatisfiable request: reported as HTTP 400 by
    the daemon and as a ``CLIError`` (exit 2) by the CLI."""


def canonical_json(payload) -> str:
    """The one true serialization (sorted keys, 2-space indent)."""
    return json.dumps(payload, indent=2, sort_keys=True)


def encode_body(payload) -> bytes:
    """Response body bytes: canonical JSON plus the trailing newline
    ``print`` appends on the CLI side."""
    return (canonical_json(payload) + "\n").encode("utf-8")


# ---------------------------------------------------------------------
# spec normalization
# ---------------------------------------------------------------------

def _as_int(spec, key, default) -> int:
    try:
        return int(spec.get(key, default))
    except (TypeError, ValueError):
        raise ApiError(f"{key!r} must be an integer") from None


def _as_bool(spec, key, default) -> bool:
    value = spec.get(key, default)
    if not isinstance(value, bool):
        raise ApiError(f"{key!r} must be a boolean")
    return value


def _choice(spec, key, default, choices) -> str:
    value = spec.get(key) or default
    if value not in choices:
        raise ApiError(f"{key!r} must be one of {', '.join(choices)}; "
                       f"got {value!r}")
    return value


def _device_name(spec) -> str:
    from repro.devices import device_by_name
    name = spec.get("device") or "virtex7"
    try:
        device_by_name(name)
    except Exception:
        raise ApiError(f"unknown device {name!r}") from None
    return name


def _kernel_fields(spec) -> Dict[str, object]:
    """The source-selection half shared by predict and explore specs."""
    source = spec.get("source") or None
    workload = spec.get("workload") or None
    if (source is None) == (workload is None):
        raise ApiError(
            "exactly one of 'source' (OpenCL C text) or 'workload' "
            "(catalog name like 'rodinia/nw/kernel1') is required")
    out: Dict[str, object] = {
        "source": source, "workload": workload,
        "kernel": spec.get("kernel") or None,
        "device": _device_name(spec),
        "static_trace": _choice(spec, "static_trace", "auto",
                                STATIC_TRACE_MODES),
        "interp": _choice(spec, "interp", "auto", INTERP_MODES),
    }
    if source is not None:
        if not spec.get("global_size"):
            raise ApiError("'global_size' is required with 'source'")
        out["global_size"] = _as_int(spec, "global_size", 0)
        if out["global_size"] < 1:
            raise ApiError("'global_size' must be >= 1")
    else:
        if spec.get("global_size"):
            raise ApiError("'global_size' is fixed by the catalog "
                           "workload; omit it with 'workload'")
        out["global_size"] = None
    args = spec.get("args") or {}
    if not isinstance(args, dict):
        raise ApiError("'args' must be an object of scalar overrides")
    try:
        out["args"] = {str(k): float(v) for k, v in args.items()}
    except (TypeError, ValueError):
        raise ApiError("'args' values must be numbers") from None
    return out


def normalize_predict_spec(spec: dict) -> dict:
    """Validate and default-fill a ``predict`` request."""
    out = _kernel_fields(spec)
    out.update(
        wg=_as_int(spec, "wg", 64),
        pe=_as_int(spec, "pe", 1),
        cu=_as_int(spec, "cu", 1),
        vector=_as_int(spec, "vector", 1),
        mode=_choice(spec, "mode", "pipeline", COMM_MODES),
        pipeline=_as_bool(spec, "pipeline", True),
        wg_pipeline=_as_bool(spec, "wg_pipeline", False),
        simulate=_as_bool(spec, "simulate", False),
        tier=_choice(spec, "tier", "exact", PREDICT_TIERS),
    )
    if min(out["wg"], out["pe"], out["cu"], out["vector"]) < 1:
        raise ApiError("design parameters must be positive")
    if out["tier"] == "instant" and out["simulate"]:
        raise ApiError("'simulate' requires the exact tier")
    return out


def normalize_explore_spec(spec: dict) -> dict:
    """Validate and default-fill an ``explore`` request."""
    out = _kernel_fields(spec)
    out["top"] = _as_int(spec, "top", 5)
    if out["top"] < 1:
        raise ApiError("'top' must be >= 1")
    out["prefilter"] = _choice(spec, "prefilter", "none",
                               EXPLORE_PREFILTERS)
    out["top_k"] = _as_int(spec, "top_k", 0)
    if out["top_k"] < 0:
        raise ApiError("'top_k' must be >= 0 (0 = automatic)")
    return out


def normalize_graph_spec(spec: dict) -> dict:
    """Validate and default-fill a ``predict-graph`` request."""
    if not spec.get("program"):
        raise ApiError("'program' is required "
                       "(e.g. 'srad' or 'rodinia/srad')")
    out = {
        "program": str(spec["program"]),
        "realization": _choice(spec, "realization", "both",
                               REALIZATION_MODES),
        "depth": _as_int(spec, "depth", 16),
        "device": _device_name(spec),
        "wg": (_as_int(spec, "wg", 0) or None)
        if spec.get("wg") else None,
    }
    if out["depth"] < 1:
        raise ApiError("'depth' must be >= 1")
    return out


def normalize_suite_spec(spec: dict) -> dict:
    """Validate and default-fill a ``suite`` request."""
    suite = spec.get("suite") or None
    if suite not in (None, "rodinia", "polybench"):
        raise ApiError("'suite' must be 'rodinia' or 'polybench'")
    out = {
        "suite": suite,
        "limit": _as_int(spec, "limit", 0),
        "designs": _as_int(spec, "designs", 8),
        "device": _device_name(spec),
        "static_trace": _choice(spec, "static_trace", "auto",
                                STATIC_TRACE_MODES),
        "interp": _choice(spec, "interp", "auto", INTERP_MODES),
    }
    if out["limit"] < 0:
        raise ApiError("'limit' must be >= 0")
    if out["designs"] < 1:
        raise ApiError("'designs' must be >= 1")
    return out


# ---------------------------------------------------------------------
# kernel / program resolution
# ---------------------------------------------------------------------

def resolve_workload(name: str):
    """A catalog workload by its qualified ``suite/benchmark/kernel``."""
    from repro.workloads import get_workload
    parts = name.split("/")
    if len(parts) != 3:
        raise ApiError(f"workload {name!r} is not of the form "
                       "'suite/benchmark/kernel'")
    try:
        return get_workload(*parts)
    except KeyError:
        raise ApiError(f"no catalog workload {name!r}") from None


def resolve_kernel(spec: dict, module_memo: Optional[dict] = None):
    """The IR function a predict/explore spec names.

    Returns ``(fn, workload)`` where *workload* is None for inline
    source.  *module_memo* (digest(source) -> Module) lets a
    long-running caller skip recompiling repeated sources.
    """
    from repro.frontend import compile_opencl

    if spec["workload"] is not None:
        workload = resolve_workload(spec["workload"])
        return workload.function(), workload
    source = spec["source"]
    module = None
    memo_key = None
    if module_memo is not None:
        memo_key = digest("src", source)
        module = module_memo.get(memo_key)
    if module is None:
        try:
            module = compile_opencl(source)
        except Exception as exc:
            raise ApiError(f"cannot compile source: {exc}") from None
        if module_memo is not None:
            module_memo[memo_key] = module
    if spec["kernel"]:
        try:
            return module.get(spec["kernel"]), None
        except Exception:
            names = ", ".join(k.name for k in module.kernels)
            raise ApiError(f"no kernel {spec['kernel']!r} in source "
                           f"(kernels: {names})") from None
    if len(module.kernels) > 1:
        names = ", ".join(k.name for k in module.kernels)
        raise ApiError(f"source defines {len(module.kernels)} kernels "
                       f"({names}); pick one with 'kernel'")
    if not module.kernels:
        raise ApiError("source defines no kernels")
    return module.kernels[0], None


def resolve_program(name: str):
    """A registered program by bare (``srad``) or qualified
    (``rodinia/srad``) name."""
    from repro.workloads import get_program
    try:
        return get_program(name)
    except KeyError:
        if "/" in name:
            try:
                return get_program(name.split("/", 1)[1])
            except KeyError:
                pass
        from repro.workloads import all_programs
        known = ", ".join(sorted(p.qualified_name
                                 for p in all_programs()))
        raise ApiError(f"no program {name!r}; known: {known}") from None


def build_buffers(fn, global_size: int, overrides: Dict[str, float]):
    """Synthesise buffers/scalars for a kernel's signature.

    Seeding uses a stable content hash of the argument name (never the
    per-process-salted builtin ``hash``), so two invocations — CLI or
    server, any process — build bit-identical inputs, which is what
    lets the persistent cache recognise a repeated run.
    """
    from repro.interp import Buffer
    from repro.interp.memory import dtype_for_type
    from repro.ir.types import PointerType
    from repro.latency.microbench import _stable_hash

    buffers, scalars = {}, {}
    for arg in fn.args:
        if isinstance(arg.type, PointerType):
            dtype = dtype_for_type(arg.type.pointee)
            gen = np.random.default_rng(
                _stable_hash("clibuf", arg.name) % (2**32))
            if np.issubdtype(dtype, np.floating):
                data = gen.random(global_size).astype(dtype)
            else:
                data = gen.integers(
                    0, max(global_size, 2), global_size).astype(dtype)
            buffers[arg.name] = Buffer(arg.name, data)
        else:
            if arg.name in overrides:
                value = overrides[arg.name]
                scalars[arg.name] = (int(value) if arg.type.is_integer
                                     else float(value))
            elif arg.type.is_integer:
                scalars[arg.name] = global_size
            else:
                scalars[arg.name] = 1.0
    return buffers, scalars


def _spec_inputs(fn, workload, global_size: int,
                 overrides: Dict[str, float]):
    """Fresh input buffers/scalars for one analysis run."""
    if workload is None:
        return build_buffers(fn, global_size, overrides)
    buffers = workload.make_buffers()
    scalars = dict(workload.scalars)
    for name, value in overrides.items():
        if name in scalars:
            scalars[name] = (int(value)
                             if isinstance(scalars[name], int)
                             else float(value))
    return buffers, scalars


def _spec_global_size(spec, workload) -> int:
    if spec["global_size"] is not None:
        return spec["global_size"]
    return workload.global_size


# ---------------------------------------------------------------------
# predict
# ---------------------------------------------------------------------

def _design_payload(design) -> dict:
    return {
        "signature": design.signature(),
        "work_group_size": design.work_group_size,
        "work_item_pipeline": design.work_item_pipeline,
        "work_group_pipeline": design.work_group_pipeline,
        "num_pe": design.num_pe,
        "num_cu": design.num_cu,
        "vector_width": design.vector_width,
        "comm_mode": design.comm_mode,
    }


def spec_design(spec):
    """The :class:`Design` a normalized predict spec describes."""
    from repro.dse import Design
    return Design(work_group_size=spec["wg"],
                  work_item_pipeline=spec["pipeline"],
                  work_group_pipeline=spec["wg_pipeline"],
                  num_pe=spec["pe"], num_cu=spec["cu"],
                  vector_width=spec["vector"],
                  comm_mode=spec["mode"])


def predict_payload(spec: dict, cache=None,
                    module_memo: Optional[dict] = None,
                    instant_memo: Optional[dict] = None) -> dict:
    """Model one design point; the payload behind ``predict --json``
    and ``POST /predict``.  ``"tier": "instant"`` routes to the learned
    surrogate (:func:`instant_predict_payload`) instead of the exact
    analytical model."""
    from repro.analysis import analyze_kernel
    from repro.devices import device_by_name
    from repro.dse import check_feasibility
    from repro.interp import NDRange
    from repro.model import FlexCL
    from repro.model.area import estimate_area

    spec = normalize_predict_spec(spec)
    if spec["tier"] == "instant":
        return instant_predict_payload(spec, cache=cache,
                                       module_memo=module_memo,
                                       instant_memo=instant_memo)
    device = device_by_name(spec["device"])
    fn, workload = resolve_kernel(spec, module_memo)
    global_size = _spec_global_size(spec, workload)
    design = spec_design(spec)

    payload: dict = {
        "kernel": fn.name,
        "device": device.name,
        "global_size": global_size,
        "design": _design_payload(design),
        "tier": "exact",
    }
    if workload is not None:
        payload["workload"] = workload.qualified_name
    if global_size % spec["wg"] != 0:
        payload["feasible"] = False
        payload["reason"] = "work-group size does not divide the NDRange"
        return payload

    buffers, scalars = _spec_inputs(fn, workload, global_size,
                                    spec["args"])
    info = analyze_kernel(fn, buffers, scalars,
                          NDRange(global_size, spec["wg"]), device,
                          cache=cache, static_trace=spec["static_trace"],
                          interp=spec["interp"])
    reason = check_feasibility(info, design, device)
    if reason is not None:
        payload["feasible"] = False
        payload["reason"] = reason
        return payload

    payload["feasible"] = True
    if info.summary_verdict is not None:
        payload["traces"] = {
            "provenance": TRACE_PROVENANCE.get(
                getattr(info, "trace_source", "scalar"), "interpreted"),
            "summary": info.summary_verdict,
        }
    prediction = FlexCL(device, cache=cache).predict(info, design)
    area = estimate_area(info, design)
    payload["prediction"] = {
        "ii": prediction.pe.ii,
        "rec_mii": prediction.pe.rec_mii,
        "res_mii": prediction.pe.res_mii,
        "depth": prediction.pe.depth,
        "memory_latency_per_wi": prediction.memory.latency_per_wi,
        "cycles": prediction.cycles,
        "seconds": prediction.seconds,
        "clock_mhz": device.clock_mhz,
        "bottleneck": prediction.bottleneck,
    }
    util = area.utilisation(device)
    payload["area"] = {
        "dsp": area.dsp,
        "bram_36k": area.bram_36k,
        "luts": area.luts,
        "ffs": area.ffs,
        "utilisation": {k: float(v) for k, v in sorted(util.items())},
    }
    if spec["simulate"]:
        from repro.simulator import SystemRun
        actual = SystemRun(device).run(info, design)
        payload["simulated"] = {
            "cycles": actual.cycles,
            "model_error": abs(prediction.cycles - actual.cycles)
            / actual.cycles,
        }
    return payload


def _require_surrogate(cache, device):
    """The trained surrogate for *device*, or a client-facing error
    telling the caller how to get one."""
    from repro.surrogate import load_model
    model = load_model(cache, device) if cache is not None else None
    if model is None:
        raise ApiError(
            f"no trained surrogate for device '{device.name}' "
            "(or the cache is disabled); run 'repro surrogate train' "
            "first")
    return model


def instant_predict_payload(spec: dict, cache=None,
                            module_memo: Optional[dict] = None,
                            instant_memo: Optional[dict] = None) -> dict:
    """Approximate /predict answer from the learned surrogate.

    Mirrors the exact payload's skeleton (kernel/device/design/
    feasibility) but the prediction carries surrogate cycles plus
    lognormal confidence bounds instead of the analytical model's
    breakdown.  *instant_memo* (a plain dict owned by the caller,
    typically the serve daemon) memoizes the loaded model and the
    per-work-group-size kernel analyses, which is what makes warm
    repeat requests sub-millisecond.
    """
    from repro.analysis import analyze_kernel
    from repro.devices import device_by_name
    from repro.dse import check_feasibility
    from repro.interp import NDRange
    from repro.surrogate.features import feature_vector

    spec = normalize_predict_spec(spec)
    if spec["tier"] != "instant":
        raise ApiError("instant_predict_payload needs tier='instant'")
    device = device_by_name(spec["device"])
    memo = instant_memo if instant_memo is not None else {}

    model_slot = ("model", device.name)
    model = memo.get(model_slot)
    if model is None:
        model = _require_surrogate(cache, device)
        memo[model_slot] = model

    fn, workload = resolve_kernel(spec, module_memo)
    global_size = _spec_global_size(spec, workload)
    design = spec_design(spec)
    payload: dict = {
        "kernel": fn.name,
        "device": device.name,
        "global_size": global_size,
        "design": _design_payload(design),
        "tier": "instant",
    }
    if workload is not None:
        payload["workload"] = workload.qualified_name
    if global_size % spec["wg"] != 0:
        payload["feasible"] = False
        payload["reason"] = "work-group size does not divide the NDRange"
        return payload

    info_slot = ("info", spec["workload"] or function_fingerprint(fn),
                 device.name, global_size, spec["wg"],
                 spec["static_trace"], spec["interp"],
                 tuple(sorted(spec["args"].items())))
    info = memo.get(info_slot)
    if info is None:
        buffers, scalars = _spec_inputs(fn, workload, global_size,
                                        spec["args"])
        info = analyze_kernel(fn, buffers, scalars,
                              NDRange(global_size, spec["wg"]), device,
                              cache=cache,
                              static_trace=spec["static_trace"],
                              interp=spec["interp"])
        memo[info_slot] = info

    reason = check_feasibility(info, design, device)
    if reason is not None:
        payload["feasible"] = False
        payload["reason"] = reason
        return payload

    payload["feasible"] = True
    x = np.asarray(feature_vector(info, design), dtype=np.float64)
    cycles = float(model.predict_cycles(x[None, :])[0])
    lo, hi = model.confidence(cycles)
    payload["prediction"] = {
        "cycles": cycles,
        "cycles_lo": float(lo),
        "cycles_hi": float(hi),
        "sigma_log": float(model.sigma),
        "seconds": cycles / (device.clock_mhz * 1e6),
        "clock_mhz": device.clock_mhz,
    }
    payload["surrogate"] = model.describe()
    return payload


# ---------------------------------------------------------------------
# explore
# ---------------------------------------------------------------------

def make_spec_analyzer(spec: dict, fn, workload, device, cache=None
                       ) -> Callable[[int], object]:
    """A memoized ``analyze(wg) -> KernelInfo | None`` over fresh
    per-work-group-size inputs (profiling mutates buffers)."""
    from repro.analysis import analyze_kernel
    from repro.interp import NDRange

    global_size = _spec_global_size(spec, workload)
    memo: Dict[int, object] = {}

    def analyze(wg: int):
        if wg not in memo:
            try:
                buffers, scalars = _spec_inputs(fn, workload,
                                                global_size,
                                                spec["args"])
                memo[wg] = analyze_kernel(
                    fn, buffers, scalars, NDRange(global_size, wg),
                    device, cache=cache,
                    static_trace=spec["static_trace"],
                    interp=spec["interp"])
            except Exception:
                memo[wg] = None
        return memo[wg]

    return analyze


def explore_work_group_sizes(spec: dict) -> List[int]:
    """The work-group-size shards of an explore sweep, in design-space
    enumeration order (the server fans one pool task out per size)."""
    from repro.dse import DesignSpace
    spec = normalize_explore_spec(spec)
    _, workload = resolve_kernel(spec)
    space = DesignSpace.default_for(_spec_global_size(spec, workload))
    return list(space.work_group_sizes)


def explore_rows(spec: dict, cache=None,
                 wg_sizes: Optional[Sequence[int]] = None
                 ) -> List[dict]:
    """Evaluate every design of the default space whose work-group size
    is in *wg_sizes* (None = all).  Rows carry their enumeration index
    so sharded results reassemble into exactly the serial order."""
    from repro.devices import device_by_name
    from repro.dse import DesignSpace, check_feasibility
    from repro.model import FlexCL

    spec = normalize_explore_spec(spec)
    device = device_by_name(spec["device"])
    fn, workload = resolve_kernel(spec)
    analyze = make_spec_analyzer(spec, fn, workload, device, cache)
    model = FlexCL(device, cache=cache)
    space = DesignSpace.default_for(_spec_global_size(spec, workload))
    wanted = None if wg_sizes is None else set(wg_sizes)

    rows: List[dict] = []
    for index, design in enumerate(space):
        wg = design.work_group_size
        if wanted is not None and wg not in wanted:
            continue
        row = {"index": index, "design": design.signature(),
               "work_group_size": wg}
        info = analyze(wg)
        if info is None:
            row.update(feasible=False, cycles=None,
                       reason="analysis failed for this work-group size")
        else:
            reason = check_feasibility(info, design, device)
            if reason is not None:
                row.update(feasible=False, cycles=None, reason=reason)
            else:
                row.update(feasible=True,
                           cycles=model.predict(info, design).cycles,
                           reason=None)
        rows.append(row)
    return rows


def explore_payload_from_rows(spec: dict, rows: List[dict]) -> dict:
    """Assemble the final explore payload from (possibly sharded) rows.

    The ranking reproduces ``ExplorationResult.ranked()``: feasible
    points sorted by cycles with the stable enumeration order breaking
    ties.
    """
    spec = normalize_explore_spec(spec)
    fn, workload = resolve_kernel(spec)
    rows = sorted(rows, key=lambda r: r["index"])
    feasible = [r for r in rows if r["feasible"]]
    ranked = sorted(feasible, key=lambda r: r["cycles"])
    payload = {
        "kernel": fn.name,
        "device": spec["device"],
        "global_size": _spec_global_size(spec, workload),
        "evaluated": len(rows),
        "feasible": len(feasible),
        "top": [{"design": r["design"], "cycles": r["cycles"],
                 "work_group_size": r["work_group_size"]}
                for r in ranked[:spec["top"]]],
    }
    if workload is not None:
        payload["workload"] = workload.qualified_name
    return payload


def explore_prefiltered_payload(spec: dict, cache=None) -> dict:
    """Surrogate-pre-ranked explore: score the whole space with the
    trained surrogate, evaluate only the promising slice exactly.

    The payload keeps the exhaustive shape (kernel/device/evaluated/
    feasible/top) and adds the pre-filter provenance: which mode ran,
    how many exact evaluations it took, which model scored the space,
    and a per-row ``source`` ("model" or "surrogate")."""
    from repro.devices import device_by_name
    from repro.dse import DesignSpace
    from repro.dse.explorer import explore
    from repro.model import FlexCL

    spec = normalize_explore_spec(spec)
    device = device_by_name(spec["device"])
    surrogate = _require_surrogate(cache, device)
    fn, workload = resolve_kernel(spec)
    analyze = make_spec_analyzer(spec, fn, workload, device, cache)
    model = FlexCL(device, cache=cache)
    space = DesignSpace.default_for(_spec_global_size(spec, workload))
    result = explore(
        space, analyze,
        lambda info, design: model.predict(info, design).cycles,
        device, prefilter="surrogate", surrogate=surrogate,
        top_k=spec["top_k"] or None)

    payload = {
        "kernel": fn.name,
        "device": spec["device"],
        "global_size": _spec_global_size(spec, workload),
        "evaluated": len(result.evaluated),
        "feasible": len(result.feasible),
        "prefilter": "surrogate",
        "exact_evaluations": result.exact_evaluations,
        "surrogate": surrogate.describe(),
        "top": [{"design": e.design.signature(), "cycles": e.cycles,
                 "work_group_size": e.design.work_group_size,
                 "source": e.source}
                for e in result.ranked()[:spec["top"]]],
    }
    if workload is not None:
        payload["workload"] = workload.qualified_name
    return payload


def explore_payload(spec: dict, cache=None) -> dict:
    """Serial reference: evaluate the whole space, then assemble.
    ``"prefilter": "surrogate"`` switches to the learned fast path."""
    spec = normalize_explore_spec(spec)
    if spec["prefilter"] == "surrogate":
        return explore_prefiltered_payload(spec, cache)
    return explore_payload_from_rows(spec, explore_rows(spec, cache))


# ---------------------------------------------------------------------
# predict-graph
# ---------------------------------------------------------------------

def program_stage_infos(program, device, cache=None,
                        wg_override: Optional[int] = None):
    """Analyse every stage of *program*: catalog stages run the normal
    single-kernel analysis; pipe-only programs are co-executed once
    under FIFO semantics and each stage is analysed from its recorded
    launch."""
    from repro.analysis import analyze_kernel
    from repro.dse import Design

    infos, designs = {}, {}
    if program.stages:
        for w in program.stages:
            wg = wg_override or w.default_local_size
            infos[w.kernel] = analyze_kernel(
                w.function(), w.make_buffers(), dict(w.scalars),
                w.ndrange(wg), device, cache=cache)
            designs[w.kernel] = Design(work_group_size=wg)
        return infos, designs
    from repro.interp import ProgramExecutor
    module = program.pipe_module()
    stages = program.coexec_stages()
    result = ProgramExecutor(module, stages).run()
    for stage_spec in stages:
        name = stage_spec.fn.name
        infos[name] = analyze_kernel(
            stage_spec.fn, stage_spec.buffers, stage_spec.scalars,
            stage_spec.ndrange, device, launch=result.launches[name])
        designs[name] = Design(
            work_group_size=stage_spec.ndrange.work_group_size)
    return infos, designs


def predict_graph_payload(spec: dict, cache=None) -> dict:
    """End-to-end program latency; the payload behind
    ``predict-graph --json`` and ``POST /predict-graph``."""
    from repro.devices import device_by_name
    from repro.model import FlexCL, predict_graph

    spec = normalize_graph_spec(spec)
    program = resolve_program(spec["program"])
    device = device_by_name(spec["device"])
    infos, designs = program_stage_infos(program, device, cache,
                                         spec["wg"])
    model = FlexCL(device, cache=cache)
    graph = program.graph()
    payload: dict = {
        "program": program.qualified_name,
        "device": device.name,
        "stages": list(graph.stages),
        "depth": spec["depth"],
        "realizations": {},
    }
    realizations = (("dram", "pipe") if spec["realization"] == "both"
                    else (spec["realization"],))
    for realization in realizations:
        pred = predict_graph(graph, model, infos, designs, realization,
                             default_depth=spec["depth"])
        entry: dict = {
            "cycles": pred.cycles,
            "seconds": pred.seconds,
            "stages": {name: pred.stages[name].cycles
                       for name in graph.stages},
        }
        if realization == "dram":
            entry["transfers"] = [
                {"src": t.edge.src, "dst": t.edge.dst,
                 "buffer": t.edge.buffer, "nbytes": t.edge.nbytes,
                 "cycles": t.cycles}
                for t in pred.transfers]
        else:
            entry["bottleneck_stage"] = pred.bottleneck_stage
            entry["channels"] = {
                name: {"depth": ch.depth, "tokens": ch.tokens,
                       "stall_cycles": ch.stall_cycles}
                for name, ch in pred.channels.items()}
        payload["realizations"][realization] = entry
    return payload


# ---------------------------------------------------------------------
# suite
# ---------------------------------------------------------------------

def suite_catalog(spec: dict):
    """The catalog slice a suite spec addresses."""
    from repro.evaluation import default_suite_workloads
    spec = normalize_suite_spec(spec)
    return default_suite_workloads(spec["suite"], spec["limit"])


def suite_shard_rows(spec: dict, cache=None,
                     indices: Optional[Sequence[int]] = None
                     ) -> List[Tuple[int, List[dict]]]:
    """Evaluate the catalog workloads at *indices* (None = all),
    returning ``(catalog_index, rows)`` pairs for order-stable
    reassembly across pool workers."""
    from repro.devices import device_by_name
    from repro.evaluation.suite import _evaluate_workload

    spec = normalize_suite_spec(spec)
    catalog = suite_catalog(spec)
    device = device_by_name(spec["device"])
    if indices is None:
        indices = range(len(catalog))
    out: List[Tuple[int, List[dict]]] = []
    for i in indices:
        preds = _evaluate_workload(catalog[i], device, cache,
                                   spec["designs"],
                                   spec["static_trace"],
                                   spec["interp"])
        out.append((i, [{"workload": p.workload, "design": p.design,
                         "cycles": p.cycles,
                         "trace_source": p.trace_source}
                        for p in preds]))
    return out


def suite_payload_from_rows(spec: dict,
                            shards: Sequence[Tuple[int, List[dict]]]
                            ) -> dict:
    """Assemble the final suite payload from sharded per-workload rows
    (catalog order, independent of completion order)."""
    spec = normalize_suite_spec(spec)
    catalog = suite_catalog(spec)
    merged: List[Optional[List[dict]]] = [None] * len(catalog)
    for index, rows in shards:
        merged[index] = rows
    all_rows = [row for rows in merged for row in (rows or [])]
    trace_paths: Dict[str, int] = {}
    for row in all_rows:
        source = row.get("trace_source", "scalar")
        trace_paths[source] = trace_paths.get(source, 0) + 1
    return {
        "suite": spec["suite"] or "all",
        "device": spec["device"],
        "designs_per_kernel": spec["designs"],
        "limit": spec["limit"],
        "workloads": len(catalog),
        "predictions": len(all_rows),
        "trace_paths": trace_paths,
        "rows": all_rows,
    }


def suite_payload(spec: dict, cache=None) -> dict:
    """Serial reference: evaluate the whole slice, then assemble."""
    return suite_payload_from_rows(spec, suite_shard_rows(spec, cache))


# ---------------------------------------------------------------------
# request identity (coalescing / hot-tier keys)
# ---------------------------------------------------------------------

def request_key(endpoint: str, spec: dict,
                module_memo: Optional[dict] = None) -> str:
    """The content fingerprint concurrent identical requests coalesce
    on: canonical-IR fingerprint (never source text or file paths) +
    the full design point + the full device configuration."""
    if endpoint == "predict":
        spec = normalize_predict_spec(spec)
        fn, workload = resolve_kernel(spec, module_memo)
        from repro.devices import device_by_name
        return digest(
            "serve-predict", function_fingerprint(fn),
            device_fingerprint(device_by_name(spec["device"])),
            _spec_global_size(spec, workload),
            spec_design(spec).signature(),
            spec["static_trace"], spec["interp"],
            sorted(spec["args"].items()),
            spec["simulate"], spec["tier"],
            spec["workload"] or "")
    if endpoint == "explore":
        spec = normalize_explore_spec(spec)
        fn, workload = resolve_kernel(spec, module_memo)
        from repro.devices import device_by_name
        return digest(
            "serve-explore", function_fingerprint(fn),
            device_fingerprint(device_by_name(spec["device"])),
            _spec_global_size(spec, workload), spec["top"],
            spec["static_trace"], spec["interp"],
            sorted(spec["args"].items()),
            spec["prefilter"], spec["top_k"],
            spec["workload"] or "")
    if endpoint == "predict-graph":
        spec = normalize_graph_spec(spec)
        program = resolve_program(spec["program"])
        from repro.devices import device_by_name
        return digest(
            "serve-graph", program.qualified_name,
            device_fingerprint(device_by_name(spec["device"])),
            spec["realization"], spec["depth"], spec["wg"])
    if endpoint == "suite":
        spec = normalize_suite_spec(spec)
        from repro.devices import device_by_name
        return digest(
            "serve-suite", spec["suite"], spec["limit"],
            spec["designs"], spec["static_trace"], spec["interp"],
            device_fingerprint(device_by_name(spec["device"])))
    raise ApiError(f"unknown endpoint {endpoint!r}")


# ---------------------------------------------------------------------
# worker entry point
# ---------------------------------------------------------------------

def run_task(task: dict, cache=None):
    """Execute one pool task (in a forked worker process, a worker
    thread, or inline).  *cache* is the caller-shared cache for
    in-process executors; process workers open their own disk store
    from the task's ``cache_dir``/``no_cache`` fields."""
    if cache is None and not task.get("no_cache"):
        cache = open_cache(task.get("cache_dir"))
    op = task["op"]
    spec = task["spec"]
    if op == "predict":
        return predict_payload(spec, cache)
    if op == "predict-graph":
        return predict_graph_payload(spec, cache)
    if op == "explore":
        return explore_payload(spec, cache)
    if op == "explore-shard":
        return explore_rows(spec, cache, wg_sizes=task["wg_sizes"])
    if op == "suite":
        return suite_payload(spec, cache)
    if op == "suite-shard":
        return suite_shard_rows(spec, cache, indices=task["indices"])
    raise ValueError(f"unknown task op {op!r}")
