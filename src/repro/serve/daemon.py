"""The ``repro serve`` asyncio prediction daemon.

One long-lived process answers prediction requests over HTTP/JSON
without re-paying Python start-up, frontend compilation, kernel
profiling, or model evaluation for repeated questions:

- **two-tier cache**: rendered response bytes and all artifact layers
  live in a shared in-memory :class:`~repro.cache.hot.HotCache` above
  the persistent disk store, so a repeated request is answered from
  memory without entering the worker pool at all;
- **request coalescing**: concurrent identical requests — identity is
  a content fingerprint (canonical IR + design point + device), never
  request text — attach to the one in-flight evaluation and all
  receive its bytes (or its error);
- **bounded worker pool**: cold evaluations run on a forked process
  pool (or threads, ``--executor thread``) sized by ``--jobs``;
  explore/suite requests are sharded across it and can stream NDJSON
  progress;
- **backpressure**: when the admission queue is full new evaluations
  are refused with ``503`` + ``Retry-After`` instead of queueing
  unboundedly (cache hits and coalesced attaches are always admitted).

The response-body contract is byte-identity with the CLI: for any
served endpoint, the body equals the stdout of the equivalent
``repro <cmd> --json`` invocation, because both sides render the same
:mod:`repro.serve.api` payload through the same canonical encoder.

The HTTP layer is a deliberately small hand-rolled HTTP/1.1 subset
(stdlib-only: ``asyncio.start_server``): request line + headers +
``Content-Length`` bodies, keep-alive, and chunked responses for the
NDJSON streams.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cache import hot_cache_payload, open_cache
from repro.cache.hot import HotCache
from repro.serve import api
from repro.serve.api import ApiError, encode_body, request_key
from repro.serve.metrics import ServerMetrics
from repro.serve.pool import WorkerPool

#: request bodies above this are refused outright (64 MiB would only
#: ever be a mistake or abuse; real specs are a few KiB)
MAX_BODY_BYTES = 8 * 1024 * 1024
DEFAULT_QUEUE_LIMIT = 64


class BusyError(Exception):
    """Admission queue full: reported as 503 + Retry-After."""


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can configure."""

    host: str = "127.0.0.1"
    port: int = 8177
    jobs: Optional[int] = None
    executor: str = "auto"            # 'auto' | 'process' | 'thread'
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    hot_entries: Optional[int] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    quiet: bool = True


class PredictionServer:
    """The serving state machine (transport-independent core +
    asyncio HTTP front)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        store = open_cache(config.cache_dir,
                           enabled=not config.no_cache)
        self.hot = HotCache(store=store,
                            max_entries=config.hot_entries or 2048)
        self.metrics = ServerMetrics()
        shared = None if config.no_cache else self.hot
        self.pool = WorkerPool(jobs=config.jobs, mode=config.executor,
                               shared_cache=shared)
        self._module_memo: Dict[str, object] = {}
        #: instant-tier memo (loaded surrogate model + per-work-group
        #: kernel analyses) — what makes warm instant answers sub-ms
        self._instant_memo: Dict[object, object] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._active = 0              # evaluations admitted, not done
        self._conn_tasks: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if not self.config.quiet:
            print(f"repro serve: listening on "
                  f"http://{self.config.host}:{self.port} "
                  f"({self.pool.mode} pool, {self.pool.jobs} workers, "
                  f"queue limit {self.config.queue_limit})")

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections sit in readline() forever; cancel
        # them so the loop can close cleanly.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self.pool.shutdown()

    # -- core: cacheable + coalesced endpoints -------------------------

    def _task_for(self, endpoint: str, spec: dict) -> dict:
        task = {"op": endpoint, "spec": spec,
                "cache_dir": self.config.cache_dir,
                "no_cache": self.config.no_cache}
        return task

    async def answer(self, endpoint: str, spec: dict
                     ) -> Tuple[bytes, str]:
        """Answer one cacheable request: returns ``(body, outcome)``
        with outcome 'hot' | 'coalesced' | 'evaluated' | 'instant'.

        The fast path never enters the worker pool; only a genuinely
        new evaluation consumes an admission slot, so a loaded server
        keeps answering warm and duplicate requests while refusing new
        work.  Instant-tier predicts also bypass the pool: the
        surrogate scores them on a helper thread against the server's
        own memo, so a warm instant answer costs one feature vector and
        one matrix product.
        """
        key = request_key(endpoint, spec, self._module_memo)
        found, body = self.hot.get("response", key)
        if found:
            return body, "hot"
        inflight = self._inflight.get(key)
        if inflight is not None:
            return await asyncio.shield(inflight), "coalesced"
        if self._active >= self.config.queue_limit:
            self.metrics.rejected += 1
            raise BusyError(
                f"admission queue full "
                f"({self._active}/{self.config.queue_limit} "
                f"evaluations in flight)")
        instant = (endpoint == "predict"
                   and spec.get("tier", "exact") == "instant")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # Waiters with no reader left must not surface "exception never
        # retrieved" noise at GC time.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = future
        self._active += 1
        try:
            if instant:
                cache = None if self.config.no_cache else self.hot
                payload = await asyncio.to_thread(
                    api.instant_predict_payload, spec, cache,
                    self._module_memo, self._instant_memo)
            else:
                payload = await asyncio.wrap_future(
                    self.pool.submit(self._task_for(endpoint, spec)))
            body = encode_body(payload)
        except BaseException as exc:
            # A failed computation is never cached; every coalesced
            # waiter sees the same error.
            future.set_exception(exc)
            raise
        else:
            self._harvest_trace_paths(payload)
            self.hot.put("response", key, body, write_through=False)
            future.set_result(body)
            return body, "instant" if instant else "evaluated"
        finally:
            self._active -= 1
            self._inflight.pop(key, None)

    def _harvest_trace_paths(self, payload) -> None:
        """Pull trace-engine provenance out of a freshly evaluated
        payload into the /metrics counters: predict bodies carry
        ``traces.provenance``, suite bodies a ``trace_paths`` map."""
        if not isinstance(payload, dict):
            return
        counts: Dict[str, int] = {}
        traces = payload.get("traces")
        if isinstance(traces, dict):
            label = traces.get("provenance")
            for source, name in api.TRACE_PROVENANCE.items():
                if name == label:
                    counts[source] = counts.get(source, 0) + 1
        for source, n in (payload.get("trace_paths") or {}).items():
            counts[source] = counts.get(source, 0) + int(n)
        if counts:
            self.metrics.count_trace_paths(counts)

    # -- core: streaming endpoints -------------------------------------

    async def stream_events(self, endpoint: str, spec: dict, emit):
        """Run a sharded explore/suite evaluation, calling ``await
        emit(event_dict)`` as shards complete; the last event carries
        the assembled payload (identical to the non-streamed body)."""
        if (endpoint == "explore"
                and spec.get("prefilter", "none") != "none"):
            raise ApiError(
                "streaming explore shards the exhaustive sweep; "
                "drop 'stream' to use a surrogate prefilter")
        if self._active >= self.config.queue_limit:
            self.metrics.rejected += 1
            raise BusyError("admission queue full")
        self._active += 1
        try:
            if endpoint == "explore":
                shards = api.explore_work_group_sizes(spec)
                await emit({"event": "start", "endpoint": endpoint,
                            "shards": len(shards)})
                tasks = [asyncio.wrap_future(self.pool.submit(
                    dict(self._task_for("explore-shard", spec),
                         wg_sizes=[wg]))) for wg in shards]
                rows = []
                done = 0
                for coro in asyncio.as_completed(tasks):
                    shard_rows = await coro
                    rows.extend(shard_rows)
                    done += 1
                    wg = (shard_rows[0]["work_group_size"]
                          if shard_rows else None)
                    await emit({"event": "shard", "completed": done,
                                "total": len(shards),
                                "work_group_size": wg,
                                "rows": len(shard_rows)})
                payload = api.explore_payload_from_rows(spec, rows)
            elif endpoint == "suite":
                catalog = api.suite_catalog(spec)
                await emit({"event": "start", "endpoint": endpoint,
                            "shards": len(catalog)})
                tasks = [asyncio.wrap_future(self.pool.submit(
                    dict(self._task_for("suite-shard", spec),
                         indices=[i])))
                    for i in range(len(catalog))]
                shards = []
                done = 0
                for coro in asyncio.as_completed(tasks):
                    result = await coro
                    shards.extend(result)
                    done += 1
                    index, rows = result[0]
                    await emit({"event": "shard", "completed": done,
                                "total": len(catalog),
                                "workload": catalog[index].qualified_name,
                                "rows": len(rows)})
                payload = api.suite_payload_from_rows(spec, shards)
            else:
                raise ApiError(
                    f"endpoint {endpoint!r} does not stream")
            self._harvest_trace_paths(payload)
            await emit({"event": "result", "payload": payload})
        finally:
            self._active -= 1

    # -- metrics -------------------------------------------------------

    def metrics_payload(self) -> dict:
        payload = self.metrics.payload()
        payload["queue"] = {
            "active": self._active,
            "limit": self.config.queue_limit,
            "in_flight": min(self._active, self.pool.jobs),
            "depth": max(0, self._active - self.pool.jobs),
        }
        payload["workers"] = {"mode": self.pool.mode,
                              "jobs": self.pool.jobs}
        payload["cache"] = hot_cache_payload(self.hot)
        return payload

    # -- HTTP front ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection; finish the
            # task normally so the streams machinery sees a clean exit.
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _dispatch(self, request: "_Request",
                        writer: asyncio.StreamWriter) -> bool:
        started = time.monotonic()
        method, path = request.method, request.path
        endpoint = path.lstrip("/") or "root"
        outcome = None
        try:
            if method == "GET" and path == "/healthz":
                status, body = 200, encode_body({"status": "ok"})
            elif method == "GET" and path == "/metrics":
                status, body = 200, encode_body(self.metrics_payload())
            elif method == "POST" and path in (
                    "/predict", "/predict-graph", "/explore", "/suite"):
                spec = _parse_spec(request.body)
                if spec.pop("stream", False):
                    await self._respond_stream(
                        endpoint, spec, writer, request, started)
                    return request.keep_alive
                body, outcome = await self.answer(endpoint, spec)
                status = 200
            else:
                status, body = 404, encode_body(
                    {"error": f"no route {method} {path}"})
        except ApiError as exc:
            status, body = 400, encode_body({"error": str(exc)})
        except BusyError as exc:
            status, body = 503, encode_body({"error": str(exc)})
        except Exception as exc:              # noqa: BLE001
            status, body = 500, encode_body(
                {"error": f"{type(exc).__name__}: {exc}"})
        headers = {"Retry-After": "1"} if status == 503 else None
        _write_response(writer, status, body,
                        keep_alive=request.keep_alive,
                        extra_headers=headers)
        await writer.drain()
        self.metrics.observe(endpoint, status,
                             (time.monotonic() - started) * 1e3,
                             outcome)
        return request.keep_alive

    async def _respond_stream(self, endpoint: str, spec: dict,
                              writer: asyncio.StreamWriter,
                              request: "_Request",
                              started: float) -> None:
        """Answer an explore/suite request as a chunked NDJSON stream."""
        status = 200
        head_sent = False

        async def emit(event: dict) -> None:
            nonlocal head_sent
            if not head_sent:
                _write_stream_head(writer, request.keep_alive)
                head_sent = True
            line = json.dumps(event, sort_keys=True) + "\n"
            _write_chunk(writer, line.encode("utf-8"))
            await writer.drain()

        try:
            await self.stream_events(endpoint, spec, emit)
        except Exception as exc:              # noqa: BLE001
            if isinstance(exc, ApiError):
                status = 400
            elif isinstance(exc, BusyError):
                status = 503
            else:
                status = 500
            error = {"error": f"{exc}"}
            if not head_sent:
                headers = ({"Retry-After": "1"}
                           if status == 503 else None)
                _write_response(writer, status, encode_body(error),
                                keep_alive=request.keep_alive,
                                extra_headers=headers)
                await writer.drain()
                self.metrics.observe(
                    endpoint, status,
                    (time.monotonic() - started) * 1e3)
                return
            await emit(dict(error, event="error"))
        if head_sent:
            _write_chunk(writer, b"")          # terminating chunk
            await writer.drain()
        self.metrics.observe(endpoint, status,
                             (time.monotonic() - started) * 1e3,
                             "evaluated" if status == 200 else None)


# ---------------------------------------------------------------------
# minimal HTTP/1.1 plumbing
# ---------------------------------------------------------------------

@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[_Request]:
    """Parse one request off the stream; None at EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target, version = parts
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = await reader.readexactly(length) if length else b""
    keep_alive = (headers.get("connection", "").lower() != "close"
                  and version.upper() != "HTTP/1.0")
    path = target.split("?", 1)[0]
    return _Request(method=method.upper(), path=path,
                    headers=headers, body=body, keep_alive=keep_alive)


def _parse_spec(body: bytes) -> dict:
    if not body:
        return {}
    try:
        spec = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(f"request body is not valid JSON: {exc}") \
            from None
    if not isinstance(spec, dict):
        raise ApiError("request body must be a JSON object")
    return spec


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _write_response(writer: asyncio.StreamWriter, status: int,
                    body: bytes, keep_alive: bool = True,
                    content_type: str = "application/json",
                    extra_headers: Optional[Dict[str, str]] = None
                    ) -> None:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)


def _write_stream_head(writer: asyncio.StreamWriter,
                       keep_alive: bool) -> None:
    lines = ["HTTP/1.1 200 OK",
             "Content-Type: application/x-ndjson",
             "Transfer-Encoding: chunked",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))


def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data
                 + b"\r\n")


# ---------------------------------------------------------------------
# embedding helpers (tests, benchmarks, CI smoke)
# ---------------------------------------------------------------------

class ServeHandle:
    """A daemon running on a background thread (its own event loop)."""

    def __init__(self, server: PredictionServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.port}"

    def stop(self) -> None:
        loop = self._loop

        def _shutdown() -> None:
            asyncio.ensure_future(_stop_and_halt())

        async def _stop_and_halt() -> None:
            await self.server.stop()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout=10)


def serve_in_thread(config: Optional[ServerConfig] = None
                    ) -> ServeHandle:
    """Start a daemon on an ephemeral port in a background thread and
    return its handle once it is accepting connections."""
    config = config or ServerConfig(port=0)
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = PredictionServer(config)
        loop.run_until_complete(server.start())
        holder["server"], holder["loop"] = server, loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon failed to start")
    return ServeHandle(holder["server"], holder["loop"], thread)
