"""Serve-side observability: latency windows and request counters.

Everything here is in-process bookkeeping for the ``/metrics``
endpoint.  Counters are guarded by a lock because completions land from
worker-pool callback threads as well as the event loop; none of it is
on the hot path of a cached request beyond one lock acquisition.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class LatencyWindow:
    """A bounded window of recent request latencies (milliseconds) with
    percentile readout — per endpoint, newest-wins once full."""

    def __init__(self, max_samples: int = 1024) -> None:
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._next = 0          # ring-buffer write cursor once full
        self.count = 0          # lifetime observations
        self._lock = threading.Lock()

    def observe(self, latency_ms: float) -> None:
        with self._lock:
            self.count += 1
            if len(self._samples) < self.max_samples:
                self._samples.append(latency_ms)
            else:
                self._samples[self._next] = latency_ms
                self._next = (self._next + 1) % self.max_samples

    def percentile(self, p: float) -> Optional[float]:
        """The *p*-th percentile (0-100) of the current window, by the
        nearest-rank method; None before any observation."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return None
        rank = max(0, min(len(data) - 1,
                          int(round(p / 100.0 * (len(data) - 1)))))
        return data[rank]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            data = sorted(self._samples)
            count = self.count
        if not data:
            return {"count": 0}

        def at(p: float) -> float:
            rank = max(0, min(len(data) - 1,
                              int(round(p / 100.0 * (len(data) - 1)))))
            return round(data[rank], 3)

        return {"count": count, "p50_ms": at(50), "p90_ms": at(90),
                "p99_ms": at(99), "max_ms": round(data[-1], 3)}


class EndpointMetrics:
    """Counters of one endpoint: requests, outcomes, and where the
    response came from (hot tier / coalesced onto an in-flight
    evaluation / freshly evaluated)."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.hot_hits = 0
        self.coalesced = 0
        self.evaluations = 0
        self.instant = 0
        self.latency = LatencyWindow()
        #: latency of instant-tier answers alone, so the surrogate's
        #: sub-millisecond story is visible next to the mixed window
        self.instant_latency = LatencyWindow()

    def snapshot(self) -> Dict[str, object]:
        out = {
            "requests": self.requests,
            "errors": self.errors,
            "hot_hits": self.hot_hits,
            "coalesced": self.coalesced,
            "evaluations": self.evaluations,
            "latency": self.latency.snapshot(),
        }
        if self.instant:
            out["instant"] = self.instant
            out["instant_latency"] = self.instant_latency.snapshot()
        return out


class ServerMetrics:
    """The daemon's full counter set, rendered by ``/metrics``."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.rejected = 0             # 503 backpressure rejections
        self.responses: Dict[int, int] = {}
        #: analyses per trace engine ("synth" / "vectorized" /
        #: "scalar"), harvested from freshly evaluated payloads
        self.trace_paths: Dict[str, int] = {}

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            if name not in self._endpoints:
                self._endpoints[name] = EndpointMetrics()
            return self._endpoints[name]

    def count_response(self, status: int) -> None:
        with self._lock:
            self.responses[status] = self.responses.get(status, 0) + 1

    def observe(self, name: str, status: int, latency_ms: float,
                outcome: Optional[str] = None) -> None:
        """Record one finished request.  *outcome* attributes the
        response source: 'hot', 'coalesced', 'evaluated', or 'instant'
        (a surrogate-tier answer that never entered the worker pool)."""
        ep = self.endpoint(name)
        with self._lock:
            ep.requests += 1
            if status >= 400:
                ep.errors += 1
            if outcome == "hot":
                ep.hot_hits += 1
            elif outcome == "coalesced":
                ep.coalesced += 1
            elif outcome == "evaluated":
                ep.evaluations += 1
            elif outcome == "instant":
                ep.instant += 1
        ep.latency.observe(latency_ms)
        if outcome == "instant":
            ep.instant_latency.observe(latency_ms)
        self.count_response(status)

    def count_trace_paths(self, counts: Dict[str, int]) -> None:
        """Accumulate per-engine trace provenance from one freshly
        evaluated payload (hot hits and coalesced requests re-serve an
        already-counted evaluation, so they don't count again)."""
        with self._lock:
            for source, n in counts.items():
                self.trace_paths[source] = \
                    self.trace_paths.get(source, 0) + n

    def tiers_summary(self) -> Dict[str, object]:
        """How answers split between the exact analytical model and the
        surrogate's instant tier (fresh computations only — hot hits
        re-serve whichever tier produced the cached body)."""
        with self._lock:
            instant = sum(e.instant for e in self._endpoints.values())
            exact = sum(e.evaluations for e in self._endpoints.values())
        return {"instant": instant, "exact": exact}

    def coalescing_summary(self) -> Dict[str, object]:
        with self._lock:
            attached = sum(e.coalesced for e in self._endpoints.values())
            evaluated = sum(e.evaluations
                            for e in self._endpoints.values())
        handled = attached + evaluated
        return {
            "attached": attached,
            "evaluations": evaluated,
            "rate": round(attached / handled, 4) if handled else 0.0,
        }

    def payload(self) -> Dict[str, object]:
        """The endpoint/coalescing half of the ``/metrics`` body (the
        daemon adds queue and cache sections)."""
        with self._lock:
            endpoints = {name: ep.snapshot()
                         for name, ep in self._endpoints.items()}
            responses = {str(code): n
                         for code, n in sorted(self.responses.items())}
            rejected = self.rejected
            trace_paths = {source: n for source, n
                           in sorted(self.trace_paths.items())}
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "responses": responses,
            "rejected": rejected,
            "endpoints": endpoints,
            "coalescing": self.coalescing_summary(),
            "tiers": self.tiers_summary(),
            "trace_paths": trace_paths,
        }
