"""Command-line interface.

::

    python -m repro predict KERNEL.cl --kernel saxpy --global-size 4096
        [--wg 64 --pe 2 --cu 2 --vector 1 --mode pipeline --no-pipeline]
        [--device virtex7] [--simulate]
    python -m repro explore KERNEL.cl --kernel saxpy --global-size 4096
        [--top 5] [--device virtex7] [--jobs N|auto]
    python -m repro lint KERNEL.cl [--json] [--check ID] [--kernel saxpy]
    python -m repro workloads [--suite rodinia]
    python -m repro patterns [--device virtex7]

``predict`` and ``explore`` need the kernel's buffers: pointer
arguments are auto-filled with synthetic float/int arrays of
``--global-size`` elements, and scalar arguments default to
``--global-size`` for ``n``-like names and 1 otherwise (override with
``--arg name=value``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np


def _jobs_arg(value: str):
    """Parse --jobs: a positive int or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1")
    return jobs


def _build_buffers(fn, global_size: int, overrides: Dict[str, float]):
    """Synthesise buffers/scalars for a kernel's signature."""
    from repro.interp import Buffer
    from repro.interp.memory import dtype_for_type
    from repro.ir.types import PointerType

    buffers, scalars = {}, {}
    for arg in fn.args:
        if isinstance(arg.type, PointerType):
            dtype = dtype_for_type(arg.type.pointee)
            rng = np.random.default_rng(hash(arg.name) % (2**32))
            if np.issubdtype(dtype, np.floating):
                data = rng.random(global_size).astype(dtype)
            else:
                data = rng.integers(
                    0, max(global_size, 2), global_size).astype(dtype)
            buffers[arg.name] = Buffer(arg.name, data)
        else:
            if arg.name in overrides:
                value = overrides[arg.name]
                scalars[arg.name] = (int(value) if arg.type.is_integer
                                     else float(value))
            elif arg.type.is_integer:
                scalars[arg.name] = global_size
            else:
                scalars[arg.name] = 1.0
    return buffers, scalars


def _frontend(args):
    """Run the profile-independent front half once: read the source,
    lex/parse/lower it, and resolve the device and scalar overrides."""
    from repro.devices import device_by_name
    from repro.frontend import compile_opencl

    source = Path(args.source).read_text()
    module = compile_opencl(source)
    if args.kernel:
        fn = module.get(args.kernel)
    else:
        fn = module.kernels[0]
    device = device_by_name(args.device)
    overrides = dict(
        kv.split("=", 1) for kv in (args.arg or []))
    overrides = {k: float(v) for k, v in overrides.items()}
    return fn, device, overrides


def _analyze_wg(fn, device, args, overrides, wg: int):
    """Run the profile-dependent half for one work-group size: fresh
    synthetic buffers (profiling mutates them) + kernel analysis."""
    from repro.analysis import analyze_kernel
    from repro.interp import NDRange

    buffers, scalars = _build_buffers(fn, args.global_size, overrides)
    return analyze_kernel(fn, buffers, scalars,
                          NDRange(args.global_size, wg), device)


def _analyze(args, wg: Optional[int] = None):
    fn, device, overrides = _frontend(args)
    info = _analyze_wg(fn, device, args, overrides, wg or args.wg)
    return fn, info, device


def _print_diagnostics(fn, source: str) -> None:
    """Lint *fn* and print any findings under a ``diagnostics:`` header."""
    from repro.lint import lint_function
    diags = lint_function(fn)
    if not diags:
        return
    name = Path(source).name
    print("diagnostics:")
    for d in diags:
        print(f"  {d.format(name)}")


def cmd_lint(args) -> int:
    """Run the `lint` subcommand: static diagnostics, no execution."""
    import json

    from repro.lint import Severity, lint_source

    try:
        source = Path(args.source).read_text()
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc.strerror}",
              file=sys.stderr)
        return 2
    try:
        diags = lint_source(source, name=Path(args.source).stem,
                            checks=args.check or None)
    except ValueError as exc:   # unknown --check id
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.kernel:
        diags = [d for d in diags if d.function in ("", args.kernel)]
    if args.json:
        payload = {"source": str(args.source),
                   "diagnostics": [d.to_dict() for d in diags]}
        print(json.dumps(payload, indent=2))
    else:
        name = Path(args.source).name
        for d in diags:
            print(d.format(name))
        counts = {sev: sum(d.severity is sev for d in diags)
                  for sev in Severity}
        print(f"{len(diags)} diagnostic(s): "
              f"{counts[Severity.ERROR]} error(s), "
              f"{counts[Severity.WARNING]} warning(s), "
              f"{counts[Severity.NOTE]} note(s)")
    return 1 if any(d.severity is Severity.ERROR for d in diags) else 0


def cmd_predict(args) -> int:
    """Run the `predict` subcommand: model one design point."""
    from repro.dse import Design, check_feasibility
    from repro.model import FlexCL
    from repro.model.area import estimate_area

    fn, info, device = _analyze(args)
    design = Design(work_group_size=args.wg,
                    work_item_pipeline=not args.no_pipeline,
                    num_pe=args.pe, num_cu=args.cu,
                    vector_width=args.vector, comm_mode=args.mode)
    reason = check_feasibility(info, design, device)
    if reason is not None:
        print(f"design {design} is infeasible: {reason}")
        return 1
    prediction = FlexCL(device).predict(info, design)
    area = estimate_area(info, design)
    print(f"kernel   : {fn.name}")
    print(f"design   : {design}")
    print(f"device   : {device.name}")
    print(f"II       : {prediction.pe.ii:.0f} cycles "
          f"(RecMII {prediction.pe.rec_mii:.0f}, "
          f"ResMII {prediction.pe.res_mii:.0f})")
    print(f"depth    : {prediction.pe.depth:.0f} cycles")
    print(f"L_mem^wi : {prediction.memory.latency_per_wi:.1f} cycles")
    print(f"cycles   : {prediction.cycles:,.0f} "
          f"({prediction.seconds*1e3:.3f} ms at {device.clock_mhz:.0f} MHz)")
    print(f"bottleneck: {prediction.bottleneck}")
    util = area.utilisation(device)
    print(f"area     : {area.dsp} DSP ({util['dsp']:.0%}), "
          f"{area.bram_36k} BRAM ({util['bram']:.0%}), "
          f"{area.luts:,} LUT ({util['lut']:.0%})")
    if args.simulate:
        from repro.simulator import SystemRun
        actual = SystemRun(device).run(info, design)
        err = abs(prediction.cycles - actual.cycles) / actual.cycles
        print(f"simulated: {actual.cycles:,.0f} cycles "
              f"(model error {err:.1%})")
    _print_diagnostics(fn, args.source)
    return 0


def cmd_explore(args) -> int:
    """Run the `explore` subcommand: sweep the design space."""
    from repro.dse import DesignSpace, explore
    from repro.model import FlexCL

    # The frontend (lex/parse/lower) runs once; per work-group size only
    # the profile-dependent half of the analysis is re-run.
    fn, device, overrides = _frontend(args)

    def analyzer(wg):
        try:
            return _analyze_wg(fn, device, args, overrides, wg)
        except Exception:
            return None

    model = FlexCL(device)
    space = DesignSpace.default_for(args.global_size)
    result = explore(space, analyzer,
                     lambda info, d: model.predict(info, d).cycles,
                     device, jobs=args.jobs,
                     cache_stats=lambda: model.cache_stats)
    feasible = result.ranked()
    workers = f" on {result.jobs} workers" if result.jobs > 1 else ""
    print(f"explored {len(result.evaluated)} designs "
          f"({len(feasible)} feasible) in "
          f"{result.elapsed_seconds:.1f}s{workers}")
    if result.cache_stats is not None and result.cache_stats.lookups:
        print(result.cache_stats.summary())
    print(f"\ntop {args.top}:")
    for entry in feasible[:args.top]:
        print(f"  {entry.design!s:<46} {entry.cycles:>12,.0f} cycles")
    _print_diagnostics(fn, args.source)
    return 0


def cmd_workloads(args) -> int:
    """Run the `workloads` subcommand: list bundled kernels."""
    from repro.workloads import polybench_workloads, rodinia_workloads
    suites = {"rodinia": rodinia_workloads,
              "polybench": polybench_workloads}
    names = [args.suite] if args.suite else list(suites)
    for name in names:
        workloads = suites[name]()
        print(f"{name} ({len(workloads)} kernels):")
        for w in workloads:
            print(f"  {w.benchmark}/{w.kernel}  "
                  f"[global={w.global_size}]")
    return 0


def cmd_patterns(args) -> int:
    """Run the `patterns` subcommand: print Table 1."""
    from repro.devices import device_by_name
    from repro.dram import profile_pattern_latencies
    device = device_by_name(args.device)
    print(f"Table 1 pattern latencies on {device.name}:")
    print(profile_pattern_latencies(device))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexCL: analytical performance model for OpenCL "
                    "workloads on FPGAs (DAC'17 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_kernel_args(p):
        p.add_argument("source", help="OpenCL .cl source file")
        p.add_argument("--kernel", help="kernel name "
                                        "(default: first kernel)")
        p.add_argument("--global-size", type=int, required=True)
        p.add_argument("--wg", type=int, default=64,
                       help="work-group size")
        p.add_argument("--device", default="virtex7",
                       choices=["virtex7", "ku060"])
        p.add_argument("--arg", action="append", metavar="NAME=VALUE",
                       help="override a scalar kernel argument")

    p = sub.add_parser("predict", help="predict one design's cycles")
    add_kernel_args(p)
    p.add_argument("--pe", type=int, default=1)
    p.add_argument("--cu", type=int, default=1)
    p.add_argument("--vector", type=int, default=1)
    p.add_argument("--mode", default="pipeline",
                   choices=["pipeline", "barrier"])
    p.add_argument("--no-pipeline", action="store_true",
                   help="disable work-item pipelining")
    p.add_argument("--simulate", action="store_true",
                   help="also run the System Run simulator")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("explore", help="sweep the design space")
    add_kernel_args(p)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                   metavar="N",
                   help="worker processes for the sweep "
                        "('auto' = one per core; default: serial)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("lint", help="static kernel diagnostics "
                                    "(no execution)")
    p.add_argument("source", help="OpenCL .cl source file")
    p.add_argument("--kernel", help="restrict diagnostics to one kernel")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON output")
    p.add_argument("--check", action="append", metavar="ID",
                   help="run only this check id (repeatable); see "
                        "docs/LINT.md for the list")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("workloads", help="list bundled benchmarks")
    p.add_argument("--suite", choices=["rodinia", "polybench"])
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("patterns", help="print Table 1 ΔT values")
    p.add_argument("--device", default="virtex7",
                   choices=["virtex7", "ku060"])
    p.set_defaults(func=cmd_patterns)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
