"""Command-line interface.

::

    python -m repro predict KERNEL.cl --kernel saxpy --global-size 4096
        [--wg 64 --pe 2 --cu 2 --vector 1 --mode pipeline --no-pipeline]
        [--device virtex7] [--simulate]
    python -m repro explore KERNEL.cl --kernel saxpy --global-size 4096
        [--top 5] [--device virtex7] [--jobs N|auto]
    python -m repro predict-graph PROGRAM [--list]
        [--realization dram|pipe|both] [--depth 16] [--device virtex7]
    python -m repro lint KERNEL.cl [--json] [--check ID] [--kernel saxpy]
        [--summaries]
    python -m repro coverage [--check] [--update] [--json]
    python -m repro workloads [--suite rodinia]
    python -m repro patterns [--device virtex7]
    python -m repro suite [--suite rodinia] [--jobs N|auto] [--limit K]
        [--programs] [--export-features PATH]
    python -m repro surrogate train|info [--device virtex7]
        [--suite rodinia --limit K --designs D] [--from-features PATH]
    python -m repro cache stats|clear|path [--cache-dir DIR] [--json]
    python -m repro serve [--host H --port P --jobs N]
        [--executor auto|process|thread] [--queue-limit N]
    python -m repro --version

``predict``, ``explore``, ``predict-graph``, ``suite``, and
``cache stats`` accept ``--json`` for canonical machine-readable
output; ``predict`` and ``explore`` accept ``--workload NAME`` to
address a catalog kernel instead of a source file.  A ``--json``
response is byte-identical to the serve daemon's answer for the same
request (see docs/SERVING.md).

``predict``, ``explore``, and ``suite`` consult the persistent
content-addressed cache (default ``~/.cache/repro-flexcl``; configure
with ``REPRO_CACHE_DIR``/``--cache-dir``, disable with ``--no-cache``
or ``REPRO_CACHE_DIR=``), so repeated invocations skip kernel
profiling, PE scheduling, and memory-model work they have done before
— in any process.

``predict`` and ``explore`` need the kernel's buffers: pointer
arguments are auto-filled with synthetic float/int arrays of
``--global-size`` elements, and scalar arguments default to
``--global-size`` for ``n``-like names and 1 otherwise (override with
``--arg name=value``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional


class CLIError(Exception):
    """A user-facing tool error: printed to stderr, exit code 2."""


# API-layer messages name JSON spec fields; on the command line the
# same knobs are flags.
_SPEC_FIELD_FLAGS = {
    "'kernel'": "--kernel NAME",
    "'global_size'": "--global-size",
    "'static_trace'": "--static-trace",
    "'interp'": "--interp",
    "'args'": "--arg",
}


def _cli_error(exc: Exception) -> CLIError:
    message = str(exc)
    for field, flag in _SPEC_FIELD_FLAGS.items():
        message = message.replace(field, flag)
    return CLIError(message)


def _version() -> str:
    """The installed package version, falling back to the source tree's
    ``repro.__version__`` when the distribution metadata is absent
    (e.g. running from a checkout via ``PYTHONPATH``)."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        import repro
        return getattr(repro, "__version__", "unknown")


def _jobs_arg(value: str):
    """Parse --jobs: a positive int or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1")
    return jobs


def _build_buffers(fn, global_size: int, overrides: Dict[str, float]):
    """Synthesise buffers/scalars for a kernel's signature (shared
    with the serve api so CLI and daemon build bit-identical inputs)."""
    from repro.serve.api import build_buffers
    return build_buffers(fn, global_size, overrides)


def _frontend(args):
    """Run the profile-independent front half once: read the source,
    lex/parse/lower it, and resolve the device and scalar overrides."""
    from repro.devices import device_by_name
    from repro.frontend import compile_opencl

    source = Path(args.source).read_text()
    module = compile_opencl(source)
    if args.kernel:
        fn = module.get(args.kernel)
    elif len(module.kernels) > 1:
        names = ", ".join(k.name for k in module.kernels)
        raise CLIError(
            f"{args.source} defines {len(module.kernels)} kernels "
            f"({names}); pick one with --kernel NAME")
    else:
        fn = module.kernels[0]
    device = device_by_name(args.device)
    overrides = dict(
        kv.split("=", 1) for kv in (args.arg or []))
    overrides = {k: float(v) for k, v in overrides.items()}
    return fn, device, overrides


def _open_cache(args):
    """The persistent cache the command should use (None = disabled)."""
    from repro.cache import open_cache
    return open_cache(getattr(args, "cache_dir", None),
                      enabled=not getattr(args, "no_cache", False))


def _print_cache_line(cache) -> None:
    """One summary line of the persistent store's activity."""
    if cache is not None and cache.stats.lookups:
        print(cache.stats.summary())


def _analyze_wg(fn, device, args, overrides, wg: int, cache=None):
    """Run the profile-dependent half for one work-group size: fresh
    synthetic buffers (profiling mutates them) + kernel analysis."""
    from repro.analysis import analyze_kernel
    from repro.interp import NDRange

    buffers, scalars = _build_buffers(fn, args.global_size, overrides)
    return analyze_kernel(fn, buffers, scalars,
                          NDRange(args.global_size, wg), device,
                          cache=cache,
                          static_trace=getattr(args, "static_trace",
                                               "auto"),
                          interp=getattr(args, "interp", "auto"))


def _analyze(args, wg: Optional[int] = None, cache=None):
    fn, device, overrides = _frontend(args)
    info = _analyze_wg(fn, device, args, overrides, wg or args.wg,
                       cache=cache)
    return fn, info, device


def _print_diagnostics(fn, source: str) -> None:
    """Lint *fn* and print any findings under a ``diagnostics:`` header."""
    from repro.lint import lint_function
    diags = lint_function(fn)
    if not diags:
        return
    name = Path(source).name
    print("diagnostics:")
    for d in diags:
        print(f"  {d.format(name)}")


def _lint_tool_error(args, message: str) -> int:
    """Report a tool-level lint failure (unreadable file, unknown check
    id): with ``--json`` the report is still valid JSON (the documented
    contract in docs/LINT.md), and the exit code is 2 — reserved for
    tool errors, never used for kernel findings."""
    import json
    if args.json:
        print(json.dumps({"source": str(args.source), "error": message,
                          "diagnostics": []}, indent=2))
    else:
        print(f"error: {message}", file=sys.stderr)
    return 2


def _print_summaries(source: str, args) -> None:
    """Append per-kernel access-summary verdicts to the lint report."""
    from repro.frontend import compile_opencl
    from repro.lint.summary import summarize_kernel

    try:
        module = compile_opencl(source, name=Path(args.source).stem)
    except Exception:
        return                # frontend diagnostics already reported
    for fn in module.kernels:
        if args.kernel and fn.name != args.kernel:
            continue
        s = summarize_kernel(fn)
        print(f"summary {fn.name}: {s.verdict}")
        for r in s.reasons:
            print(f"  {r.code} at {r.where}"
                  + (f" ({r.detail})" if r.detail else ""))
        for a in s.accesses:
            form = a.index if a.tier == "affine" else a.tier
            stride = (f", wi-stride {a.wi_stride}B"
                      if a.wi_stride is not None else "")
            print(f"  site {a.site}: {a.kind} {a.space} {a.buffer} "
                  f"[{form}]{stride}")


def cmd_lint(args) -> int:
    """Run the `lint` subcommand: static diagnostics, no execution.

    Exit code contract (documented in docs/LINT.md): 0 = no
    error-severity diagnostics, 1 = at least one error-severity
    diagnostic, 2 = the tool itself failed (unreadable file, unknown
    ``--check`` id).  With ``--json`` the output is valid JSON in every
    one of those cases.
    """
    import json

    from repro.lint import Severity, lint_source

    try:
        source = Path(args.source).read_text()
    except OSError as exc:
        return _lint_tool_error(
            args, f"cannot read {args.source}: {exc.strerror}")
    try:
        diags = lint_source(source, name=Path(args.source).stem,
                            checks=args.check or None)
    except ValueError as exc:   # unknown --check id
        return _lint_tool_error(args, str(exc))
    if args.kernel:
        diags = [d for d in diags if d.function in ("", args.kernel)]
    if args.json:
        payload = {"source": str(args.source),
                   "diagnostics": [d.to_dict() for d in diags]}
        if args.summaries:
            payload["summaries"] = _summaries_payload(source, args)
        print(json.dumps(payload, indent=2))
    else:
        name = Path(args.source).name
        for d in diags:
            print(d.format(name))
        counts = {sev: sum(d.severity is sev for d in diags)
                  for sev in Severity}
        print(f"{len(diags)} diagnostic(s): "
              f"{counts[Severity.ERROR]} error(s), "
              f"{counts[Severity.WARNING]} warning(s), "
              f"{counts[Severity.NOTE]} note(s)")
        if args.summaries:
            _print_summaries(source, args)
    return 1 if any(d.severity is Severity.ERROR for d in diags) else 0


def _summaries_payload(source: str, args) -> List[dict]:
    """JSON form of the per-kernel access summaries."""
    from repro.frontend import compile_opencl
    from repro.lint.summary import summarize_kernel

    try:
        module = compile_opencl(source, name=Path(args.source).stem)
    except Exception:
        return []
    out = []
    for fn in module.kernels:
        if args.kernel and fn.name != args.kernel:
            continue
        s = summarize_kernel(fn)
        out.append(s.to_dict())
    return out


def _spec_args(args) -> Dict[str, float]:
    overrides = dict(kv.split("=", 1) for kv in (args.arg or []))
    try:
        return {k: float(v) for k, v in overrides.items()}
    except ValueError:
        raise CLIError("--arg values must be numbers") from None


def _kernel_spec(args) -> dict:
    """The serve-api request spec a predict/explore invocation means
    (the CLI and the daemon share one payload layer,
    :mod:`repro.serve.api`, so ``--json`` output is byte-identical to
    the served response)."""
    spec = {"kernel": args.kernel, "device": args.device,
            "static_trace": args.static_trace,
            "interp": getattr(args, "interp", "auto"),
            "args": _spec_args(args)}
    if getattr(args, "workload", None):
        if args.source:
            raise CLIError("give either an OpenCL source file or "
                           "--workload, not both")
        spec["workload"] = args.workload
        if args.global_size:
            raise CLIError("--global-size is fixed by the catalog "
                           "workload; omit it with --workload")
    else:
        if not args.source:
            raise CLIError("an OpenCL source file (or --workload NAME) "
                           "is required")
        if not args.global_size:
            raise CLIError("--global-size is required with a source "
                           "file")
        spec["source"] = Path(args.source).read_text()
        spec["global_size"] = args.global_size
    return spec


def _predict_spec(args) -> dict:
    spec = _kernel_spec(args)
    spec.update(wg=args.wg, pe=args.pe, cu=args.cu,
                vector=args.vector, mode=args.mode,
                pipeline=not args.no_pipeline,
                simulate=args.simulate,
                tier=getattr(args, "tier", "exact"))
    return spec


def cmd_predict(args) -> int:
    """Run the `predict` subcommand: model one design point."""
    from repro.serve import api as serve_api

    spec = _predict_spec(args)
    cache = _open_cache(args)
    module_memo: Dict[str, object] = {}
    try:
        payload = serve_api.predict_payload(spec, cache=cache,
                                            module_memo=module_memo)
    except serve_api.ApiError as exc:
        raise _cli_error(exc) from None
    if args.json:
        print(serve_api.canonical_json(payload))
        return 0 if payload["feasible"] else 1
    design = serve_api.spec_design(
        serve_api.normalize_predict_spec(spec))
    if not payload["feasible"]:
        print(f"design {design} is infeasible: {payload['reason']}")
        return 1
    pred = payload["prediction"]
    print(f"kernel   : {payload['kernel']}")
    if "workload" in payload:
        print(f"workload : {payload['workload']}")
    print(f"design   : {design}")
    print(f"device   : {payload['device']}")
    if payload["tier"] == "instant":
        surro = payload["surrogate"]
        print("tier     : instant (learned surrogate, approximate)")
        print(f"cycles   : {pred['cycles']:,.0f} "
              f"({pred['seconds']*1e3:.3f} ms at "
              f"{pred['clock_mhz']:.0f} MHz)")
        print(f"interval : [{pred['cycles_lo']:,.0f}, "
              f"{pred['cycles_hi']:,.0f}] cycles "
              f"(~95%, sigma_log {pred['sigma_log']:.3f})")
        print(f"model    : {surro['stumps']} stumps over "
              f"{surro['features']} features, "
              f"{surro['rows']} training rows "
              f"({surro['kernels']} kernels)")
        _print_cache_line(cache)
        return 0
    if "traces" in payload:
        print(f"traces   : {payload['traces']['provenance']} "
              f"(summary: {payload['traces']['summary']})")
    print(f"II       : {pred['ii']:.0f} cycles "
          f"(RecMII {pred['rec_mii']:.0f}, "
          f"ResMII {pred['res_mii']:.0f})")
    print(f"depth    : {pred['depth']:.0f} cycles")
    print(f"L_mem^wi : {pred['memory_latency_per_wi']:.1f} cycles")
    print(f"cycles   : {pred['cycles']:,.0f} "
          f"({pred['seconds']*1e3:.3f} ms at "
          f"{pred['clock_mhz']:.0f} MHz)")
    print(f"bottleneck: {pred['bottleneck']}")
    area, util = payload["area"], payload["area"]["utilisation"]
    print(f"area     : {area['dsp']} DSP ({util['dsp']:.0%}), "
          f"{area['bram_36k']} BRAM ({util['bram']:.0%}), "
          f"{area['luts']:,} LUT ({util['lut']:.0%})")
    if "simulated" in payload:
        print(f"simulated: {payload['simulated']['cycles']:,.0f} cycles "
              f"(model error {payload['simulated']['model_error']:.1%})")
    _print_cache_line(cache)
    if spec.get("source"):
        fn, _ = serve_api.resolve_kernel(
            serve_api.normalize_predict_spec(spec), module_memo)
        _print_diagnostics(fn, args.source)
    return 0


def cmd_explore(args) -> int:
    """Run the `explore` subcommand: sweep the design space."""
    from repro.dse import DesignSpace, explore
    from repro.model import FlexCL

    if (args.json or getattr(args, "workload", None)
            or args.prefilter != "none"):
        return _explore_via_api(args)
    # The frontend (lex/parse/lower) runs once; per work-group size only
    # the profile-dependent half of the analysis is re-run.
    fn, device, overrides = _frontend(args)
    cache = _open_cache(args)

    def analyzer(wg):
        try:
            return _analyze_wg(fn, device, args, overrides, wg,
                               cache=cache)
        except Exception:
            return None

    model = FlexCL(device, cache=cache)
    space = DesignSpace.default_for(args.global_size)
    result = explore(space, analyzer,
                     lambda info, d: model.predict(info, d).cycles,
                     device, jobs=args.jobs,
                     cache_stats=lambda: model.cache_stats,
                     store_stats=(None if cache is None
                                  else lambda: cache.stats.copy()))
    feasible = result.ranked()
    workers = f" on {result.jobs} workers" if result.jobs > 1 else ""
    print(f"explored {len(result.evaluated)} designs "
          f"({len(feasible)} feasible) in "
          f"{result.elapsed_seconds:.1f}s{workers}")
    if result.cache_stats is not None and result.cache_stats.lookups:
        print(result.cache_stats.summary())
    if result.store_stats is not None and result.store_stats.lookups:
        print(result.store_stats.summary())
    print(f"\ntop {args.top}:")
    for entry in feasible[:args.top]:
        print(f"  {entry.design!s:<46} {entry.cycles:>12,.0f} cycles")
    _print_diagnostics(fn, args.source)
    return 0


def _explore_via_api(args) -> int:
    """The serve-api explore path: ``--json`` (byte-identical to the
    daemon's ``/explore`` response) and ``--workload`` sweeps."""
    from repro.serve import api as serve_api

    spec = _kernel_spec(args)
    spec["top"] = args.top
    spec["prefilter"] = args.prefilter
    spec["top_k"] = args.top_k
    cache = _open_cache(args)
    try:
        payload = serve_api.explore_payload(spec, cache=cache)
    except serve_api.ApiError as exc:
        raise _cli_error(exc) from None
    if args.json:
        print(serve_api.canonical_json(payload))
        return 0
    print(f"explored {payload['evaluated']} designs "
          f"({payload['feasible']} feasible)")
    if payload.get("prefilter") == "surrogate":
        print(f"prefilter: surrogate "
              f"({payload['exact_evaluations']} exact evaluations "
              f"of {payload['feasible']} feasible — "
              f"{payload['feasible'] / max(payload['exact_evaluations'], 1):.1f}x fewer)")
    print(f"\ntop {args.top}:")
    for entry in payload["top"]:
        tag = (f"  [{entry['source']}]"
               if entry.get("source") == "surrogate" else "")
        print(f"  {entry['design']:<46} "
              f"{entry['cycles']:>12,.0f} cycles{tag}")
    _print_cache_line(cache)
    return 0


def _program_stage_infos(program, device, cache=None,
                         wg_override: Optional[int] = None):
    """Analyse every stage of a program (shared with the serve api)."""
    from repro.serve.api import program_stage_infos
    return program_stage_infos(program, device, cache, wg_override)


def cmd_predict_graph(args) -> int:
    """Run the `predict-graph` subcommand: end-to-end latency of a
    multi-kernel program under both edge realizations."""
    from repro.model import FlexCL, predict_graph
    from repro.workloads import all_programs, get_program

    if args.list or not args.program:
        for p in all_programs():
            chain = " -> ".join(p.stage_order())
            tag = "  [pipes]" if p.has_pipes else ""
            print(f"{p.qualified_name:<20} {chain}{tag}")
        return 0
    if args.json:
        from repro.serve import api as serve_api
        spec = {"program": args.program,
                "realization": args.realization,
                "depth": args.depth, "device": args.device,
                "wg": args.wg}
        try:
            payload = serve_api.predict_graph_payload(
                spec, cache=_open_cache(args))
        except serve_api.ApiError as exc:
            raise _cli_error(exc) from None
        print(serve_api.canonical_json(payload))
        return 0
    try:
        program = get_program(args.program)
    except KeyError as exc:
        raise CLIError(str(exc.args[0])) from None
    from repro.devices import device_by_name
    device = device_by_name(args.device)
    cache = _open_cache(args)
    infos, designs = _program_stage_infos(program, device, cache,
                                          args.wg)
    model = FlexCL(device, cache=cache)
    graph = program.graph()
    print(f"program  : {program.qualified_name}")
    print(f"stages   : {' -> '.join(graph.stages)}")
    print(f"device   : {device.name}")
    realizations = (("dram", "pipe") if args.realization == "both"
                    else (args.realization,))
    for realization in realizations:
        pred = predict_graph(graph, model, infos, designs, realization,
                             default_depth=args.depth)
        print(f"\n{realization} realization: {pred.cycles:,.0f} cycles "
              f"({pred.seconds * 1e3:.3f} ms)")
        for name in graph.stages:
            print(f"  stage {name:<12} {pred.stages[name].cycles:>14,.0f}"
                  f" cycles")
        if realization == "dram":
            for t in pred.transfers:
                print(f"  edge  {t.edge.src}->{t.edge.dst} "
                      f"({t.edge.buffer}, {t.edge.nbytes} B) "
                      f"{t.cycles:>10,.0f} cycles")
        else:
            print(f"  bottleneck stage: {pred.bottleneck_stage}")
            for name, ch in pred.channels.items():
                print(f"  pipe  {name:<12} depth {ch.depth:>4}  "
                      f"{ch.tokens} tokens  "
                      f"stall {ch.stall_cycles:,.0f} cycles")
    _print_cache_line(cache)
    return 0


def cmd_workloads(args) -> int:
    """Run the `workloads` subcommand: list bundled kernels."""
    from repro.workloads import polybench_workloads, rodinia_workloads
    suites = {"rodinia": rodinia_workloads,
              "polybench": polybench_workloads}
    names = [args.suite] if args.suite else list(suites)
    for name in names:
        workloads = suites[name]()
        print(f"{name} ({len(workloads)} kernels):")
        for w in workloads:
            print(f"  {w.benchmark}/{w.kernel}  "
                  f"[global={w.global_size}]")
    return 0


def cmd_suite(args) -> int:
    """Run the `suite` subcommand: batch-evaluate the workload catalog
    through the shared persistent cache."""
    from repro.evaluation import default_suite_workloads, run_suite
    from repro.devices import device_by_name

    if args.json and args.export_features:
        raise CLIError("--export-features writes NDJSON to its own "
                       "file; drop --json")
    if args.json:
        from repro.serve import api as serve_api
        spec = {"suite": args.suite, "limit": args.limit,
                "designs": args.designs, "device": args.device,
                "static_trace": args.static_trace,
                "interp": args.interp}
        try:
            payload = serve_api.suite_payload(spec,
                                              cache=_open_cache(args))
        except serve_api.ApiError as exc:
            raise _cli_error(exc) from None
        print(serve_api.canonical_json(payload))
        return 0
    device = device_by_name(args.device)
    cache = _open_cache(args)
    try:
        catalog = default_suite_workloads(args.suite, args.limit)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_suite(catalog, device, jobs=args.jobs, cache=cache,
                       designs_per_kernel=args.designs,
                       static_trace=args.static_trace,
                       interp=args.interp,
                       collect_features=bool(args.export_features))
    if args.export_features:
        from repro.surrogate import export_features
        written = export_features(args.export_features, result)
        print(f"wrote {written} feature rows to {args.export_features}")
    by_workload = result.by_workload()
    for name in sorted(by_workload):
        preds = by_workload[name]
        best = min(preds, key=lambda p: p.cycles)
        print(f"{name:<44} {len(preds):>3} designs   "
              f"best {best.cycles:>14,.0f} cycles  ({best.design})")
    workers = f" on {result.jobs} workers" if result.jobs > 1 else ""
    print(f"\n{result.workloads_evaluated} workloads, "
          f"{len(result.predictions)} predictions in "
          f"{result.elapsed_seconds:.1f}s{workers}")
    sources = result.trace_sources()
    if sources:
        print("trace paths: " + "  ".join(
            f"{k}={sources[k]}" for k in sorted(sources)))
    if result.store_stats is not None and result.store_stats.lookups:
        print(result.store_stats.summary())
    if args.programs:
        _suite_programs(device, cache)
    return 0


def _suite_programs(device, cache) -> None:
    """End-to-end program predictions appended to the suite report."""
    from repro.model import FlexCL, predict_graph
    from repro.workloads import all_programs

    model = FlexCL(device, cache=cache)
    print("\nprograms (end-to-end):")
    for program in all_programs():
        infos, designs = _program_stage_infos(program, device, cache)
        graph = program.graph()
        dram = predict_graph(graph, model, infos, designs, "dram")
        pipe = predict_graph(graph, model, infos, designs, "pipe")
        print(f"{program.qualified_name:<28} "
              f"dram {dram.cycles:>14,.0f}  "
              f"pipe {pipe.cycles:>14,.0f} cycles  "
              f"({len(graph.stages)} stages)")


def cmd_surrogate(args) -> int:
    """Run the `surrogate` subcommand: train or inspect the learned
    latency surrogate behind ``predict --tier instant`` and
    ``explore --prefilter surrogate`` (see docs/SURROGATE.md)."""
    from repro.devices import device_by_name

    device = device_by_name(args.device)
    cache = _open_cache(args)
    if cache is None:
        raise CLIError("the surrogate artifact lives in the persistent "
                       "cache; remove --no-cache (or set "
                       "REPRO_CACHE_DIR)")
    if args.action == "info":
        from repro.surrogate import load_model
        model = load_model(cache, device, args.tag)
        if model is None:
            print(f"no trained surrogate for device '{device.name}' "
                  f"(tag '{args.tag}'); run 'repro surrogate train'")
            return 1
        for key, value in sorted(model.describe().items()):
            print(f"{key:<15}: {value}")
        return 0

    from repro.surrogate import (
        load_feature_file,
        save_model,
        train_with_holdout,
        training_rows,
    )
    if args.from_features:
        from repro.surrogate import FeatureSchemaError
        try:
            X, cycles, kernels = load_feature_file(args.from_features)
        except (OSError, FeatureSchemaError) as exc:
            raise CLIError(str(exc)) from None
        print(f"loaded {len(cycles)} rows from {args.from_features}")
    else:
        from repro.evaluation import default_suite_workloads, run_suite
        try:
            catalog = default_suite_workloads(args.suite, args.limit)
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        result = run_suite(catalog, device, jobs=args.jobs, cache=cache,
                           designs_per_kernel=args.designs,
                           collect_features=True)
        X, cycles, kernels = training_rows(result)
        print(f"collected {len(cycles)} rows from "
              f"{result.workloads_evaluated} workloads in "
              f"{result.elapsed_seconds:.1f}s")
    if not len(cycles):
        raise CLIError("no training rows were produced")
    model, report = train_with_holdout(X, cycles, kernels,
                                       rounds=args.rounds,
                                       seed=args.seed)
    save_model(cache, model, device, args.tag)
    print(f"trained on {model.n_rows} rows "
          f"({len(model.trained_on)} kernels), "
          f"sigma_log {model.sigma:.3f}")
    if report.test_rows:
        print(f"held-out Spearman {report.spearman_overall:.4f} over "
              f"{report.test_rows} rows "
              f"({len(report.held_out)} kernels held out)")
    print(f"saved surrogate for '{device.name}' (tag '{args.tag}')")
    return 0


def cmd_cache(args) -> int:
    """Run the `cache` subcommand: stats / clear / path."""
    from repro.cache import open_cache, resolve_cache_dir

    root = resolve_cache_dir(args.cache_dir)
    if root is None:
        print("persistent cache is disabled (REPRO_CACHE_DIR is empty)")
        return 1
    if args.action == "path":
        print(root)
        return 0
    cache = open_cache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entr"
              f"{'y' if removed == 1 else 'ies'} from {root}")
        return 0
    if args.json:
        # The same formatter backs the serve daemon's /metrics "cache"
        # section, so scripts can consume either interchangeably.
        import json

        from repro.cache import cache_payload
        print(json.dumps(cache_payload(cache), indent=2,
                         sort_keys=True))
        return 0
    # stats
    counts = cache.layer_counts()
    total_mb = cache.size_bytes() / (1024 * 1024)
    cap_mb = cache.max_bytes / (1024 * 1024)
    print(f"cache dir : {root}")
    print(f"entries   : {sum(counts.values())}")
    for layer in sorted(counts):
        print(f"  {layer:<9}: {counts[layer]}")
    print(f"size      : {total_mb:.1f} MiB (cap {cap_mb:.0f} MiB)")
    return 0


def cmd_serve(args) -> int:
    """Run the `serve` subcommand: the long-running prediction daemon
    (see docs/SERVING.md)."""
    import asyncio

    from repro.serve.daemon import PredictionServer, ServerConfig

    jobs = None if args.jobs in (None, "auto") else args.jobs
    config = ServerConfig(host=args.host, port=args.port, jobs=jobs,
                          executor=args.executor,
                          queue_limit=args.queue_limit,
                          hot_entries=args.hot_entries,
                          cache_dir=args.cache_dir,
                          no_cache=args.no_cache, quiet=False)

    async def _run() -> None:
        server = PredictionServer(config)
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_coverage(args) -> int:
    """Run the `coverage` subcommand: catalog-wide summary verdicts."""
    import json

    from repro.lint.summary.coverage import (
        check_coverage,
        coverage_report,
        write_golden,
    )

    report = coverage_report()
    if args.update:
        path = write_golden(report)
        print(f"wrote {path} ({report['static']}/{report['total']} "
              f"kernels static)")
        return 0
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for name, entry in sorted(report["kernels"].items()):
            why = ("" if entry["verdict"] == "static"
                   else "  [" + ", ".join(entry["reasons"]) + "]")
            print(f"{name:<44} {entry['verdict']}{why}")
        print(f"\n{report['static']}/{report['total']} kernels static "
              f"(engine v{report['engine_version']})")
    if args.check:
        problems = check_coverage(report)
        if problems:
            for p_ in problems:
                print(f"REGRESSION: {p_}", file=sys.stderr)
            return 1
        print("coverage check passed: no STATIC kernel regressed")
    return 0


def cmd_patterns(args) -> int:
    """Run the `patterns` subcommand: print Table 1."""
    from repro.devices import device_by_name
    from repro.dram import profile_pattern_latencies
    device = device_by_name(args.device)
    print(f"Table 1 pattern latencies on {device.name}:")
    print(profile_pattern_latencies(device))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexCL: analytical performance model for OpenCL "
                    "workloads on FPGAs (DAC'17 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_args(p):
        p.add_argument("--cache-dir", metavar="DIR",
                       help="persistent cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-flexcl)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the persistent cache for this run")

    def add_static_trace_arg(p):
        p.add_argument("--static-trace", default="auto",
                       choices=["auto", "always", "never"],
                       help="trace producer: synthesize analytically "
                            "when the access summary proves the kernel "
                            "STATIC (auto, default), require synthesis "
                            "(always), or always interpret (never)")

    def add_interp_arg(p):
        p.add_argument("--interp", default="auto",
                       choices=["auto", "vectorized", "scalar"],
                       help="dynamic trace producer when synthesis is "
                            "off or unavailable: lane-vectorized "
                            "work-group execution with scalar fallback "
                            "(auto, default), require vectorization "
                            "(vectorized), or per-work-item "
                            "interpretation (scalar)")

    def add_kernel_args(p):
        p.add_argument("source", nargs="?",
                       help="OpenCL .cl source file (or use --workload)")
        p.add_argument("--workload", metavar="NAME",
                       help="a catalog workload instead of a source "
                            "file, e.g. 'rodinia/nw/kernel1' "
                            "(buffers, scalars, and NDRange come from "
                            "the catalog)")
        p.add_argument("--kernel", help="kernel name "
                                        "(default: first kernel)")
        p.add_argument("--global-size", type=int, default=0,
                       help="1-D NDRange size (required with a source "
                            "file)")
        p.add_argument("--wg", type=int, default=64,
                       help="work-group size")
        p.add_argument("--device", default="virtex7",
                       choices=["virtex7", "ku060"])
        p.add_argument("--arg", action="append", metavar="NAME=VALUE",
                       help="override a scalar kernel argument")
        add_static_trace_arg(p)
        add_interp_arg(p)
        add_cache_args(p)

    def add_json_arg(p):
        p.add_argument("--json", action="store_true",
                       help="canonical JSON output (byte-identical to "
                            "the serve daemon's response)")

    p = sub.add_parser("predict", help="predict one design's cycles")
    add_kernel_args(p)
    p.add_argument("--pe", type=int, default=1)
    p.add_argument("--cu", type=int, default=1)
    p.add_argument("--vector", type=int, default=1)
    p.add_argument("--mode", default="pipeline",
                   choices=["pipeline", "barrier"])
    p.add_argument("--no-pipeline", action="store_true",
                   help="disable work-item pipelining")
    p.add_argument("--simulate", action="store_true",
                   help="also run the System Run simulator")
    p.add_argument("--tier", default="exact",
                   choices=["exact", "instant"],
                   help="answer tier: the exact analytical model "
                        "(default) or the trained surrogate's "
                        "approximate answer with confidence bounds "
                        "(requires 'repro surrogate train')")
    add_json_arg(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("explore", help="sweep the design space")
    add_kernel_args(p)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--prefilter", default="none",
                   choices=["none", "surrogate"],
                   help="pre-rank the space with the trained surrogate "
                        "and exactly evaluate only the promising slice "
                        "(requires 'repro surrogate train')")
    p.add_argument("--top-k", type=int, default=0, metavar="K",
                   help="exact-evaluation budget for the surrogate "
                        "prefilter (0 = automatic: a tenth of the "
                        "feasible set, at least 64)")
    add_json_arg(p)
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                   metavar="N",
                   help="worker processes for the sweep "
                        "('auto' = one per core; default: serial)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("predict-graph",
                       help="predict a multi-kernel program's "
                            "end-to-end latency (pipe vs DRAM edges)")
    p.add_argument("program", nargs="?",
                   help="program name (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the registered programs and exit")
    p.add_argument("--device", default="virtex7",
                   choices=["virtex7", "ku060"])
    p.add_argument("--realization", default="both",
                   choices=["dram", "pipe", "both"],
                   help="edge realization to price (default: both)")
    p.add_argument("--depth", type=int, default=16,
                   help="FIFO depth for the pipe realization")
    p.add_argument("--wg", type=int, default=None,
                   help="override every stage's work-group size")
    add_json_arg(p)
    add_cache_args(p)
    p.set_defaults(func=cmd_predict_graph)

    p = sub.add_parser("lint", help="static kernel diagnostics "
                                    "(no execution)")
    p.add_argument("source", help="OpenCL .cl source file")
    p.add_argument("--kernel", help="restrict diagnostics to one kernel")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON output")
    p.add_argument("--check", action="append", metavar="ID",
                   help="run only this check id (repeatable); see "
                        "docs/LINT.md for the list")
    p.add_argument("--summaries", action="store_true",
                   help="also print each kernel's access-summary "
                        "verdict and per-site closed forms")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("coverage",
                       help="static-trace coverage over the bundled "
                            "workload catalog")
    p.add_argument("--check", action="store_true",
                   help="fail (exit 1) if a kernel the golden file "
                        "proves STATIC has regressed")
    p.add_argument("--update", action="store_true",
                   help="rewrite docs/static_coverage.json from the "
                        "current engine")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("workloads", help="list bundled benchmarks")
    p.add_argument("--suite", choices=["rodinia", "polybench"])
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("suite", help="batch-evaluate the workload "
                                     "catalog (cache-accelerated)")
    p.add_argument("--suite", choices=["rodinia", "polybench"],
                   help="restrict to one suite (default: both)")
    p.add_argument("--device", default="virtex7",
                   choices=["virtex7", "ku060"])
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                   metavar="N",
                   help="worker processes ('auto' = one per core; "
                        "default: serial)")
    p.add_argument("--limit", type=int, default=0, metavar="K",
                   help="evaluate only the first K kernels (0 = all)")
    p.add_argument("--designs", type=int, default=8, metavar="D",
                   help="sampled design points per kernel")
    p.add_argument("--programs", action="store_true",
                   help="also evaluate every multi-kernel program "
                        "end-to-end (dram and pipe realizations)")
    p.add_argument("--export-features", metavar="PATH",
                   help="also dump every prediction's surrogate "
                        "feature vector + cycles as NDJSON training "
                        "data (see docs/SURROGATE.md)")
    add_json_arg(p)
    add_static_trace_arg(p)
    add_interp_arg(p)
    add_cache_args(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("surrogate",
                       help="train or inspect the learned latency "
                            "surrogate behind 'predict --tier instant' "
                            "and 'explore --prefilter surrogate'")
    p.add_argument("action", choices=["train", "info"])
    p.add_argument("--device", default="virtex7",
                   choices=["virtex7", "ku060"])
    p.add_argument("--tag", default="default",
                   help="artifact tag (multiple surrogates per device)")
    p.add_argument("--suite", choices=["rodinia", "polybench"],
                   help="training catalog slice (default: both suites)")
    p.add_argument("--limit", type=int, default=0, metavar="K",
                   help="train on only the first K kernels (0 = all)")
    p.add_argument("--designs", type=int, default=32, metavar="D",
                   help="sampled design points per kernel")
    p.add_argument("--rounds", type=int, default=400, metavar="R",
                   help="boosted-stump rounds")
    p.add_argument("--seed", type=int, default=0,
                   help="recorded in the artifact (training itself is "
                        "deterministic)")
    p.add_argument("--from-features", metavar="PATH",
                   help="train from an NDJSON export "
                        "('suite --export-features PATH') instead of "
                        "running the evaluation suite")
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                   metavar="N",
                   help="worker processes for the training suite run")
    add_cache_args(p)
    p.set_defaults(func=cmd_surrogate)

    p = sub.add_parser("cache", help="inspect or clear the persistent "
                                     "analysis cache")
    p.add_argument("action", choices=["stats", "clear", "path"])
    p.add_argument("--cache-dir", metavar="DIR",
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-flexcl)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats (the same formatter "
                        "backs the serve daemon's /metrics)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("serve",
                       help="run the prediction daemon: HTTP/JSON "
                            "endpoints with a hot cache, request "
                            "coalescing, and backpressure")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--jobs", "-j", type=_jobs_arg, default=None,
                   metavar="N",
                   help="worker pool size ('auto' = one per core "
                        "minus one, the default)")
    p.add_argument("--executor", default="auto",
                   choices=["auto", "process", "thread"],
                   help="worker pool kind (auto = forked processes "
                        "when available)")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="max in-flight evaluations before new work is "
                        "refused with 503 (cache hits and coalesced "
                        "requests are always admitted)")
    p.add_argument("--hot-entries", type=int, default=2048, metavar="N",
                   help="in-memory hot-tier capacity (entries)")
    add_cache_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("patterns", help="print Table 1 ΔT values")
    p.add_argument("--device", default="virtex7",
                   choices=["virtex7", "ku060"])
    p.set_defaults(func=cmd_patterns)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
