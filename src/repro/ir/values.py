"""Values that IR instructions operate on: constants, registers, arguments."""

from __future__ import annotations

from typing import Union

from repro.ir.types import Type


class Value:
    """Anything an instruction may use as an operand."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class Constant(Value):
    """An immediate scalar (or splatted vector) constant."""

    def __init__(self, type_: Type, value: Union[int, float, bool]) -> None:
        super().__init__(type_)
        self.value = value

    def __str__(self) -> str:
        return f"{self.type} {self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Register(Value):
    """A virtual register produced by an instruction."""

    _counter = 0

    def __init__(self, type_: Type, name: str = "") -> None:
        if not name:
            Register._counter += 1
            name = f"t{Register._counter}"
        super().__init__(type_, name)

    def __str__(self) -> str:
        return f"%{self.name}"


class Argument(Value):
    """A formal kernel argument."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index

    def __str__(self) -> str:
        return f"%arg.{self.name}"
