"""Typed intermediate representation for OpenCL kernels.

The frontend lowers OpenCL C into this IR; the CDFG, scheduling, profiling
and performance-model layers all consume it.  The design mirrors a small
LLVM-like SSA-ish IR: a :class:`~repro.ir.module.Module` holds
:class:`~repro.ir.function.Function` objects, each a graph of
:class:`~repro.ir.function.BasicBlock` containing
:class:`~repro.ir.instructions.Instruction` nodes.
"""

from repro.ir.types import (
    AddressSpace,
    ArrayType,
    PointerType,
    ScalarType,
    Type,
    VectorType,
    BOOL,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
)
from repro.ir.values import Argument, Constant, Register, Value
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    PipeRead,
    PipeWrite,
    Return,
    Select,
    Store,
    Terminator,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.module import Channel, Module
from repro.ir.builder import IRBuilder
from repro.ir.verify import IRVerificationError, verify_function, verify_module
from repro.ir.printer import print_function, print_module

__all__ = [
    "AddressSpace",
    "Alloca",
    "Argument",
    "ArrayType",
    "Barrier",
    "BasicBlock",
    "BinaryOp",
    "Branch",
    "Call",
    "Cast",
    "Channel",
    "CompareOp",
    "CondBranch",
    "Constant",
    "Function",
    "GetElementPtr",
    "IRBuilder",
    "IRVerificationError",
    "Instruction",
    "Load",
    "Module",
    "Phi",
    "PipeRead",
    "PipeWrite",
    "PointerType",
    "Register",
    "Return",
    "ScalarType",
    "Select",
    "Store",
    "Terminator",
    "Type",
    "Value",
    "VectorType",
    "verify_function",
    "verify_module",
    "print_function",
    "print_module",
    "BOOL",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "SHORT",
    "UCHAR",
    "UINT",
    "ULONG",
    "USHORT",
    "VOID",
]
