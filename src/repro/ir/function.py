"""Basic blocks and functions."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import (
    Branch,
    CondBranch,
    Instruction,
    Terminator,
)
from repro.ir.types import Type
from repro.ir.values import Argument


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name} already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Branch):
            return [term.target]
        if isinstance(term, CondBranch):
            return [term.then_block, term.else_block]
        return []

    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}: {len(self.instructions)} insts>"


class Function:
    """A kernel function: arguments plus a CFG of basic blocks."""

    def __init__(self, name: str, arg_types: List[Type],
                 arg_names: List[str], is_kernel: bool = True) -> None:
        self.name = name
        self.is_kernel = is_kernel
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        #: required work-group size from reqd_work_group_size, if any
        self.reqd_work_group_size: Optional[tuple] = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, name: str) -> BasicBlock:
        # Uniquify the name so diagnostics stay unambiguous.
        existing = {b.name for b in self.blocks}
        candidate, i = name, 1
        while candidate in existing:
            candidate = f"{name}.{i}"
            i += 1
        block = BasicBlock(candidate, self)
        self.blocks.append(block)
        return block

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(f"no argument named {name!r} in {self.name}")

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map each block to its CFG predecessors."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from entry, in DFS preorder."""
        seen = set()
        order: List[BasicBlock] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if id(block) in seen:
                continue
            seen.add(id(block))
            order.append(block)
            stack.extend(reversed(block.successors()))
        return order

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks>"
