"""Shared walker infrastructure for IR and AST traversals.

Before this module, every analysis that walked the IR carried its own
dispatch chain (``isinstance`` ladders in ``lint/affine.py`` and
``frontend/lowering.py``) and its own worklist/fixpoint plumbing
(``lint/cfg.py``).  The pieces here factor that out:

- :class:`Dispatcher` — class-name method dispatch (``visit_Foo``)
  with per-class caching and MRO fallback.  Works for IR instructions,
  IR values, and frontend AST nodes alike, since all it needs is the
  node's class name.
- :func:`flood` — generic worklist reachability over any successor
  function (CFG reachability, natural-loop membership, ...).
- :func:`meet_over_edges` — the iterative set-intersection dataflow
  shared by dominators and post-dominators (the two differ only in
  edge direction and root set).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Set, TypeVar

T = TypeVar("T")


class Dispatcher:
    """Dispatch ``self.visit(node, ...)`` to ``visit_<ClassName>``.

    Resolution walks the node class's MRO so a handler registered for a
    base class (e.g. ``visit_Instruction``) catches subclasses without
    enumerating them.  Unhandled classes fall back to
    :meth:`generic_visit`.  Resolved methods are cached per node class,
    so steady-state dispatch is one dict lookup — no ``isinstance``
    chains on the hot path.
    """

    #: method-name prefix; subclasses may override (e.g. ``"lower_"``)
    visit_prefix = "visit_"

    def visit(self, node, *args):
        cls = node.__class__
        try:
            method = self._dispatch_cache[cls]
        except (AttributeError, KeyError):
            method = self._resolve(cls)
        return method(node, *args)

    def _resolve(self, cls) -> Callable:
        cache = getattr(self, "_dispatch_cache", None)
        if cache is None:
            cache = self._dispatch_cache = {}
        method = None
        for klass in cls.__mro__:
            method = getattr(self, self.visit_prefix + klass.__name__, None)
            if method is not None:
                break
        if method is None:
            method = self.generic_visit
        cache[cls] = method
        return method

    def generic_visit(self, node, *args):
        raise NotImplementedError(
            f"{type(self).__name__} has no handler for "
            f"{type(node).__name__}")


def flood(seeds: Iterable[T], successors: Callable[[T], Iterable[T]],
          key: Callable[[T], Hashable] = id,
          include_seeds: bool = False) -> Dict[Hashable, T]:
    """Generic worklist reachability: everything reachable from *seeds*
    via *successors*, keyed by *key* (default: object identity).

    Returns ``{key(node): node}`` — callers that only need the id set
    use ``.keys()``; callers that need the nodes use ``.values()``.
    Seeds themselves are included only when reachable (or with
    *include_seeds*).
    """
    seeds = list(seeds)
    seen: Dict[Hashable, T] = {}
    if include_seeds:
        for s in seeds:
            seen[key(s)] = s
    # Start from the seeds' successors either way: when the seeds are
    # pre-seeded they are already in ``seen`` and would otherwise be
    # skipped before their successors were expanded.
    stack: List[T] = [n for s in seeds for n in successors(s)]
    while stack:
        node = stack.pop()
        k = key(node)
        if k in seen:
            continue
        seen[k] = node
        stack.extend(successors(node))
    return seen


def meet_over_edges(nodes: List[T], roots: Iterable[T],
                    edges: Callable[[T], Iterable[T]],
                    key: Callable[[T], Hashable] = id
                    ) -> Dict[Hashable, Set[Hashable]]:
    """Iterative intersection dataflow: ``out[n] = {n} ∪ ⋂ out[edge]``.

    With *edges* = predecessors and *roots* = {entry} this computes
    dominators; with *edges* = successors and *roots* = exit blocks it
    computes post-dominators.  Functions here are a few dozen blocks,
    so the classic O(n²) iteration is plenty.
    """
    roots = list(roots)
    root_keys = {key(r) for r in roots}
    all_keys = {key(n) for n in nodes}
    out: Dict[Hashable, Set[Hashable]] = {
        key(n): ({key(n)} if key(n) in root_keys else set(all_keys))
        for n in nodes}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            k = key(n)
            if k in root_keys:
                continue
            incoming = [out[key(e)] for e in edges(n) if key(e) in out]
            new = set.intersection(*incoming) if incoming else set()
            new = new | {k}
            if new != out[k]:
                out[k] = new
                changed = True
    return out
