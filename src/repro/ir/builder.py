"""Convenience builder used by the frontend's lowering pass."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Load,
    PipeRead,
    PipeWrite,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, PointerType, Type, VOID
from repro.ir.values import Register, Value


class IRBuilder:
    """Appends instructions to a current insertion block.

    All ``emit_*`` helpers create the result register, append the
    instruction, and return the result value (or the instruction for
    ``void`` operations).
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.block: Optional[BasicBlock] = None
        #: current source span ``(line, col)``; stamped onto every
        #: appended instruction so diagnostics can point into the source
        self.span = None

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def set_span(self, line: int, col: int = 0) -> None:
        self.span = (line, col) if line else None

    def new_block(self, name: str) -> BasicBlock:
        return self.function.new_block(name)

    def _append(self, inst):
        if self.block is None:
            raise ValueError("no insertion block set")
        if inst.span is None:
            inst.span = self.span
        return self.block.append(inst)

    # -- arithmetic ------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, type_: Type,
              name: str = "") -> Register:
        result = Register(type_, name)
        self._append(BinaryOp(op, lhs, rhs, result))
        return result

    def compare(self, pred: str, lhs: Value, rhs: Value, type_: Type,
                name: str = "") -> Register:
        result = Register(type_, name)
        self._append(CompareOp(pred, lhs, rhs, result))
        return result

    def cast(self, kind: str, value: Value, to_type: Type,
             name: str = "") -> Register:
        result = Register(to_type, name)
        self._append(Cast(kind, value, result))
        return result

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Register:
        result = Register(a.type, name)
        self._append(Select(cond, a, b, result))
        return result

    # -- memory ----------------------------------------------------------

    def alloca(self, allocated: Type, space: AddressSpace,
               name: str = "") -> Register:
        result = Register(PointerType(allocated, space), name)
        self._append(Alloca(allocated, space, result, var_name=name))
        return result

    def load(self, pointer: Value, name: str = "") -> Register:
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType):
            raise TypeError(f"load from non-pointer {pointer}")
        result = Register(ptr_type.pointee, name)
        self._append(Load(pointer, result))
        return result

    def store(self, value: Value, pointer: Value) -> None:
        self._append(Store(value, pointer))

    def gep(self, base: Value, index: Value, name: str = "") -> Register:
        result = Register(base.type, name)
        self._append(GetElementPtr(base, index, result))
        return result

    # -- calls -----------------------------------------------------------

    def call(self, callee: str, args: Sequence[Value], ret_type: Type,
             name: str = "") -> Optional[Register]:
        result = Register(ret_type, name) if ret_type != VOID else None
        self._append(Call(callee, args, result))
        return result

    def barrier(self) -> None:
        self._append(Barrier())

    # -- pipes -----------------------------------------------------------

    def pipe_read(self, channel, name: str = "") -> Register:
        result = Register(channel.elem_type, name)
        self._append(PipeRead(channel, result))
        return result

    def pipe_write(self, channel, value: Value) -> None:
        self._append(PipeWrite(channel, value))

    # -- control flow ----------------------------------------------------

    def branch(self, target: BasicBlock) -> None:
        self._append(Branch(target))

    def cond_branch(self, cond: Value, then_block: BasicBlock,
                    else_block: BasicBlock) -> None:
        self._append(CondBranch(cond, then_block, else_block))

    def ret(self, value: Optional[Value] = None) -> None:
        self._append(Return(value))
