"""Type system for the OpenCL IR.

OpenCL C scalar types, fixed-width vectors (``int4``, ``float16``...),
pointers qualified by an address space, and sized arrays (used for
``__local`` buffers declared inside kernels).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AddressSpace(enum.Enum):
    """OpenCL address spaces a pointer may live in."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"
    CONSTANT = "constant"

    def __str__(self) -> str:
        return self.value


class Type:
    """Base class for all IR types."""

    @property
    def bits(self) -> int:
        raise NotImplementedError

    @property
    def bytes(self) -> int:
        return self.bits // 8

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_signed(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)


_SCALAR_SPECS = {
    # name: (bits, is_float, is_signed)
    "void": (0, False, False),
    "bool": (1, False, False),
    "char": (8, False, True),
    "uchar": (8, False, False),
    "short": (16, False, True),
    "ushort": (16, False, False),
    "int": (32, False, True),
    "uint": (32, False, False),
    "long": (64, False, True),
    "ulong": (64, False, False),
    "float": (32, True, True),
    "double": (64, True, True),
}


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar OpenCL type such as ``int`` or ``float``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in _SCALAR_SPECS:
            raise ValueError(f"unknown scalar type: {self.name!r}")

    @property
    def bits(self) -> int:
        return _SCALAR_SPECS[self.name][0]

    @property
    def is_float(self) -> bool:
        return _SCALAR_SPECS[self.name][1]

    @property
    def is_integer(self) -> bool:
        return not self.is_float and self.name not in ("void",)

    @property
    def is_signed(self) -> bool:
        return _SCALAR_SPECS[self.name][2]

    def __str__(self) -> str:
        return self.name


VOID = ScalarType("void")
BOOL = ScalarType("bool")
CHAR = ScalarType("char")
UCHAR = ScalarType("uchar")
SHORT = ScalarType("short")
USHORT = ScalarType("ushort")
INT = ScalarType("int")
UINT = ScalarType("uint")
LONG = ScalarType("long")
ULONG = ScalarType("ulong")
FLOAT = ScalarType("float")
DOUBLE = ScalarType("double")

#: Scalar types by name, for frontend lookups.
SCALAR_TYPES = {
    name: ScalarType(name) for name in _SCALAR_SPECS
}

#: Legal OpenCL vector widths.
VECTOR_WIDTHS = (2, 3, 4, 8, 16)


@dataclass(frozen=True)
class VectorType(Type):
    """A fixed-width OpenCL vector such as ``float4``."""

    element: ScalarType
    width: int

    def __post_init__(self) -> None:
        if self.width not in VECTOR_WIDTHS:
            raise ValueError(f"illegal vector width: {self.width}")

    @property
    def bits(self) -> int:
        return self.element.bits * self.width

    @property
    def is_float(self) -> bool:
        return self.element.is_float

    @property
    def is_integer(self) -> bool:
        return self.element.is_integer

    @property
    def is_signed(self) -> bool:
        return self.element.is_signed

    def __str__(self) -> str:
        return f"{self.element}{self.width}"


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer into one of the OpenCL address spaces."""

    pointee: Type
    space: AddressSpace

    @property
    def bits(self) -> int:
        return 64

    def __str__(self) -> str:
        return f"{self.pointee} {self.space}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A statically sized array (e.g. a ``__local float tile[256]``)."""

    element: Type
    count: int

    @property
    def bits(self) -> int:
        return self.element.bits * self.count

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


def parse_type_name(name: str) -> Type:
    """Parse a scalar or vector type name such as ``"uint"`` or ``"float4"``.

    Raises :class:`ValueError` for names that are not OpenCL types.
    """
    if name in SCALAR_TYPES:
        return SCALAR_TYPES[name]
    for width in sorted(VECTOR_WIDTHS, reverse=True):
        suffix = str(width)
        if name.endswith(suffix) and name[: -len(suffix)] in SCALAR_TYPES:
            return VectorType(SCALAR_TYPES[name[: -len(suffix)]], width)
    raise ValueError(f"unknown type name: {name!r}")


def is_type_name(name: str) -> bool:
    """Return True if *name* names an OpenCL scalar or vector type."""
    try:
        parse_type_name(name)
    except ValueError:
        return False
    return True


def common_type(a: Type, b: Type) -> Type:
    """The usual-arithmetic-conversions result type of *a* and *b*.

    Vector types dominate scalars of their element kind; floats dominate
    integers; wider dominates narrower; unsigned dominates signed at
    equal width (C promotion rules, simplified to OpenCL scalars).
    """
    if isinstance(a, VectorType) and not isinstance(b, VectorType):
        return a
    if isinstance(b, VectorType) and not isinstance(a, VectorType):
        return b
    if isinstance(a, VectorType) and isinstance(b, VectorType):
        if a.width != b.width:
            raise ValueError(f"vector width mismatch: {a} vs {b}")
        return VectorType(_scalar_common(a.element, b.element), a.width)
    if isinstance(a, PointerType):
        return a
    if isinstance(b, PointerType):
        return b
    return _scalar_common(a, b)


def _scalar_common(a: ScalarType, b: ScalarType) -> ScalarType:
    if a == b:
        return a
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.bits >= b.bits else b
        return a if a.is_float else b
    # Integer promotion: at least int width.
    bits = max(a.bits, b.bits, 32)
    signed = a.is_signed and b.is_signed
    if a.bits == b.bits and (not a.is_signed or not b.is_signed):
        signed = False
    for name, (nbits, is_float, is_signed) in _SCALAR_SPECS.items():
        if nbits == bits and not is_float and is_signed == signed:
            return ScalarType(name)
    return INT
