"""IR instructions.

The instruction set is deliberately small and close to what Clang emits at
-O0 for OpenCL C: locals are stack slots (:class:`Alloca`) accessed through
loads and stores, so no phi construction is needed during lowering.  Private
(stack) accesses are register traffic on the FPGA and are free for the
memory models; only ``local`` and ``global`` accesses consume ports and
DRAM bandwidth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ir.types import AddressSpace, PointerType, Type, VOID
from repro.ir.values import Register, Value

#: Integer binary opcodes (signedness comes from the operand type).
INT_BINOPS = ("add", "sub", "mul", "div", "rem",
              "and", "or", "xor", "shl", "shr")
#: Floating-point binary opcodes.
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINOPS = INT_BINOPS + FLOAT_BINOPS

#: Comparison predicates (type-directed: the executor and latency tables
#: look at the operand type to pick int vs float compare behaviour).
COMPARE_PREDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Cast kinds.
CAST_KINDS = ("sitofp", "uitofp", "fptosi", "fptoui", "trunc",
              "zext", "sext", "fpext", "fptrunc", "bitcast", "ptrcast")


class Instruction:
    """Base class: an operation inside a basic block."""

    #: mnemonic, overridden per subclass
    opcode: str = "?"

    def __init__(self, operands: Sequence[Value], result: Optional[Register]) -> None:
        self.operands: List[Value] = list(operands)
        self.result = result
        #: backlink, set when appended to a block
        self.parent = None
        #: ``(line, col)`` in the OpenCL source this instruction was
        #: lowered from; ``None`` for synthesised instructions
        self.span: Optional[Tuple[int, int]] = None

    @property
    def type(self) -> Type:
        return self.result.type if self.result is not None else VOID

    def __repr__(self) -> str:
        res = f"{self.result} = " if self.result is not None else ""
        ops = ", ".join(str(o) for o in self.operands)
        return f"{res}{self.opcode} {ops}"


class BinaryOp(Instruction):
    """``result = op lhs, rhs`` for an opcode in :data:`BINOPS`."""

    def __init__(self, op: str, lhs: Value, rhs: Value, result: Register) -> None:
        if op not in BINOPS:
            raise ValueError(f"unknown binary opcode: {op!r}")
        super().__init__([lhs, rhs], result)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class CompareOp(Instruction):
    """``result = cmp.<pred> lhs, rhs`` producing a bool."""

    opcode = "cmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, result: Register) -> None:
        if pred not in COMPARE_PREDS:
            raise ValueError(f"unknown compare predicate: {pred!r}")
        super().__init__([lhs, rhs], result)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def __repr__(self) -> str:
        return f"{self.result} = cmp.{self.pred} {self.operands[0]}, {self.operands[1]}"


class Cast(Instruction):
    """``result = cast.<kind> value`` to ``result.type``."""

    opcode = "cast"

    def __init__(self, kind: str, value: Value, result: Register) -> None:
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind: {kind!r}")
        super().__init__([value], result)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    """``result = select cond, a, b`` (ternary operator)."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, result: Register) -> None:
        super().__init__([cond, a, b], result)


class Alloca(Instruction):
    """Reserve private or local storage; yields a pointer to it.

    ``__local`` arrays declared in a kernel become local-space allocas
    hoisted to the entry block and shared by the work-group.
    """

    opcode = "alloca"

    def __init__(self, allocated: Type, space: AddressSpace, result: Register,
                 var_name: str = "") -> None:
        super().__init__([], result)
        self.allocated = allocated
        self.space = space
        self.var_name = var_name or result.name

    def __repr__(self) -> str:
        return f"{self.result} = alloca {self.allocated}, {self.space}"


class Load(Instruction):
    """``result = load ptr``."""

    opcode = "load"

    def __init__(self, pointer: Value, result: Register) -> None:
        super().__init__([pointer], result)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def space(self) -> AddressSpace:
        return self.pointer.type.space  # type: ignore[union-attr]


class Store(Instruction):
    """``store value -> ptr``."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__([value, pointer], None)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def space(self) -> AddressSpace:
        return self.pointer.type.space  # type: ignore[union-attr]


class GetElementPtr(Instruction):
    """``result = gep base, index`` — pointer arithmetic on flat arrays."""

    opcode = "gep"

    def __init__(self, base: Value, index: Value, result: Register) -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep base must be a pointer, got {base.type}")
        super().__init__([base, index], result)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class Call(Instruction):
    """A call to an OpenCL builtin (``get_global_id``, ``sqrt``...)."""

    opcode = "call"

    def __init__(self, callee: str, args: Sequence[Value],
                 result: Optional[Register]) -> None:
        super().__init__(args, result)
        self.callee = callee

    def __repr__(self) -> str:
        res = f"{self.result} = " if self.result is not None else ""
        args = ", ".join(str(a) for a in self.operands)
        return f"{res}call {self.callee}({args})"


class Barrier(Instruction):
    """An OpenCL work-group barrier (``barrier(CLK_*_MEM_FENCE)``)."""

    opcode = "barrier"

    def __init__(self) -> None:
        super().__init__([], None)

    def __repr__(self) -> str:
        return "barrier"


class PipeRead(Instruction):
    """``result = pipe.read @channel`` — pop one element from a FIFO.

    Blocking semantics (Intel ``read_channel_intel`` / a successful
    ``read_pipe``): the reading work-item stalls until an element is
    available.  The channel is an attribute, not an operand — channels
    are module-level objects, not SSA values.
    """

    opcode = "pipe.read"

    def __init__(self, channel, result: Register) -> None:
        super().__init__([], result)
        self.channel = channel

    def __repr__(self) -> str:
        return f"{self.result} = pipe.read @{self.channel.name}"


class PipeWrite(Instruction):
    """``pipe.write value -> @channel`` — push one element into a FIFO.

    Blocking semantics (Intel ``write_channel_intel`` / a successful
    ``write_pipe``): the writing work-item stalls while the FIFO is full.
    """

    opcode = "pipe.write"

    def __init__(self, channel, value: Value) -> None:
        super().__init__([value], None)
        self.channel = channel

    @property
    def value(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return f"pipe.write {self.operands[0]} -> @{self.channel.name}"


class Phi(Instruction):
    """SSA phi node (kept for completeness; the frontend emits allocas)."""

    opcode = "phi"

    def __init__(self, result: Register) -> None:
        super().__init__([], result)
        self.incoming: List[tuple] = []  # (value, block)

    def add_incoming(self, value: Value, block) -> None:
        self.incoming.append((value, block))
        self.operands.append(value)


class Terminator(Instruction):
    """Base class for block-ending instructions."""


class Branch(Terminator):
    """Unconditional jump."""

    opcode = "br"

    def __init__(self, target) -> None:
        super().__init__([], None)
        self.target = target

    def __repr__(self) -> str:
        return f"br {self.target.name}"


class CondBranch(Terminator):
    """Two-way conditional jump."""

    opcode = "condbr"

    def __init__(self, cond: Value, then_block, else_block) -> None:
        super().__init__([cond], None)
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return (f"condbr {self.operands[0]}, "
                f"{self.then_block.name}, {self.else_block.name}")


class Return(Terminator):
    """Return from the kernel."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__([value] if value is not None else [], None)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None
