"""Structural verification of IR functions.

Checks the invariants the rest of the pipeline relies on: every block is
terminated, block and function names are unique, branch targets and
conditions are well formed, operands are defined before use on every
path, and registers have a unique defining instruction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir.function import Function
from repro.ir.instructions import (Branch, CondBranch, Instruction,
                                   PipeRead, PipeWrite, Terminator)
from repro.ir.module import Module
from repro.ir.types import BOOL
from repro.ir.values import Argument, Constant, Register


class IRVerificationError(Exception):
    """Raised when a function violates an IR invariant.

    Carries the offending *function* and *block* names so callers (the
    CLI, the linter) can point at the culprit without parsing the
    message.
    """

    def __init__(self, message: str, function: Optional[str] = None,
                 block: Optional[str] = None) -> None:
        self.function = function
        self.block = block
        where = ""
        if function is not None:
            where = function if block is None else f"{function}:{block}"
            where += ": "
        super().__init__(f"{where}{message}")


def verify_module(module: Module) -> None:
    """Verify every function in *module*, and module-level invariants."""
    seen: Set[str] = set()
    channels = {id(c) for c in module.channels}
    for fn in module:
        if fn.name in seen:
            raise IRVerificationError(
                f"duplicate function name '{fn.name}' in module "
                f"'{module.name}'", function=fn.name)
        seen.add(fn.name)
        verify_function(fn, channels=channels)


def verify_function(fn: Function, channels: Optional[Set[int]] = None) -> None:
    """Check *fn* against the IR structural invariants.

    *channels* is the set of ``id()``s of the owning module's declared
    channels; when given, every pipe instruction must reference one of
    them and must agree with its element type.  Standalone verification
    (no module context) skips the membership check but still enforces
    element-type agreement.
    """
    if not fn.blocks:
        raise IRVerificationError("no basic blocks", function=fn.name)

    block_set = {id(b) for b in fn.blocks}
    block_names: Set[str] = set()
    defs: Dict[int, Instruction] = {}

    for block in fn.blocks:
        if block.name in block_names:
            raise IRVerificationError(
                f"duplicate block name '{block.name}'",
                function=fn.name, block=block.name)
        block_names.add(block.name)
        if not block.is_terminated:
            raise IRVerificationError(
                "missing terminator", function=fn.name, block=block.name)
        for i, inst in enumerate(block.instructions):
            if isinstance(inst, Terminator) and \
                    i != len(block.instructions) - 1:
                raise IRVerificationError(
                    "terminator not last",
                    function=fn.name, block=block.name)
            if inst.result is not None:
                if id(inst.result) in defs:
                    raise IRVerificationError(
                        f"register {inst.result} defined twice",
                        function=fn.name, block=block.name)
                defs[id(inst.result)] = inst
            if isinstance(inst, (PipeRead, PipeWrite)):
                _check_pipe(fn, block, inst, channels)
        term = block.terminator
        if isinstance(term, Branch):
            targets = [term.target]
        elif isinstance(term, CondBranch):
            targets = [term.then_block, term.else_block]
            if term.cond.type != BOOL:
                raise IRVerificationError(
                    f"condition of {term!r} has type {term.cond.type}, "
                    f"expected bool",
                    function=fn.name, block=block.name)
        else:
            targets = []
        for target in targets:
            if id(target) not in block_set:
                raise IRVerificationError(
                    f"branch to foreign block {target.name}",
                    function=fn.name, block=block.name)

    _check_dominance(fn, defs)


def _check_pipe(fn: Function, block, inst, channels: Optional[Set[int]]) -> None:
    channel = inst.channel
    if channel is None:
        raise IRVerificationError(
            f"{inst.opcode} without a channel",
            function=fn.name, block=block.name)
    if channels is not None and id(channel) not in channels:
        raise IRVerificationError(
            f"{inst.opcode} references channel '{channel.name}' not "
            f"declared in the module", function=fn.name, block=block.name)
    if isinstance(inst, PipeRead):
        if inst.result.type != channel.elem_type:
            raise IRVerificationError(
                f"pipe.read of {channel} yields {inst.result.type}, "
                f"expected {channel.elem_type}",
                function=fn.name, block=block.name)
    elif inst.value.type != channel.elem_type:
        raise IRVerificationError(
            f"pipe.write of {inst.value.type} into {channel}, "
            f"expected {channel.elem_type}",
            function=fn.name, block=block.name)


def _check_dominance(fn: Function, defs: Dict[int, Instruction]) -> None:
    """Every use must be reachable from its definition.

    With the alloca-based lowering every register is defined before use
    within straight-line code or dominating blocks; we approximate full
    dominance with a forward dataflow of definitely-defined registers.
    """
    preds = fn.predecessors()
    blocks = fn.reachable_blocks()
    # available[b] = set of register ids defined on *all* paths into b
    available: Dict[int, Set[int]] = {}
    arg_ids = {id(a) for a in fn.args}

    changed = True
    # Initialise optimistically (all defs) except entry.
    all_defs = set(defs)
    for b in blocks:
        available[id(b)] = set() if b is fn.entry else set(all_defs)
    while changed:
        changed = False
        for block in blocks:
            incoming = [available[id(p)] | _block_defs(p)
                        for p in preds[block] if id(p) in available]
            new = set.intersection(*incoming) if incoming else set()
            if block is fn.entry:
                new = set()
            if new != available[id(block)]:
                available[id(block)] = new
                changed = True

    for block in blocks:
        defined = set(available[id(block)])
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, (Constant, Argument)):
                    continue
                if isinstance(op, Register) and id(op) not in defined \
                        and id(op) not in arg_ids:
                    raise IRVerificationError(
                        f"use of {op} before definition in {inst!r}",
                        function=fn.name, block=block.name)
            if inst.result is not None:
                defined.add(id(inst.result))


def _block_defs(block) -> Set[int]:
    return {id(i.result) for i in block.instructions if i.result is not None}
