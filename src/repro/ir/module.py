"""A module: the unit of compilation (one .cl translation unit)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.ir.function import Function
from repro.ir.types import Type


@dataclass(frozen=True)
class Channel:
    """A typed inter-kernel FIFO declared with ``pipe`` (or the Intel
    ``channel`` alias) at translation-unit scope.

    Channels live in the module's channel table; :class:`PipeRead` /
    :class:`PipeWrite` instructions reference them by object.  ``depth``
    is the FIFO capacity in elements (``__attribute__((depth(N)))``,
    default 1).  The ``__str__`` form is canonical and address-free — it
    is what enters IR fingerprints and cache keys.
    """

    name: str
    elem_type: Type
    depth: int = 1

    def __str__(self) -> str:
        return f"pipe<{self.elem_type},{self.depth}>@{self.name}"


class Module:
    """A collection of kernel functions produced from one OpenCL source."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}
        self._channels: Dict[str, Channel] = {}

    def add(self, fn: Function) -> Function:
        if fn.name in self._functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self._functions[fn.name] = fn
        return fn

    # -- channel table ---------------------------------------------------

    def add_channel(self, channel: Channel) -> Channel:
        if channel.name in self._channels:
            raise ValueError(f"duplicate channel {channel.name!r}")
        self._channels[channel.name] = channel
        return channel

    def get_channel(self, name: str) -> Channel:
        return self._channels[name]

    def get_channel_optional(self, name: str) -> Optional[Channel]:
        return self._channels.get(name)

    @property
    def channels(self) -> List[Channel]:
        return list(self._channels.values())

    def get(self, name: str) -> Function:
        return self._functions[name]

    def get_optional(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    @property
    def kernels(self) -> List[Function]:
        return [f for f in self._functions.values() if f.is_kernel]

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __repr__(self) -> str:
        return f"<Module {self.name}: {list(self._functions)}>"
