"""A module: the unit of compilation (one .cl translation unit)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.function import Function


class Module:
    """A collection of kernel functions produced from one OpenCL source."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}

    def add(self, fn: Function) -> Function:
        if fn.name in self._functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self._functions[fn.name] = fn
        return fn

    def get(self, name: str) -> Function:
        return self._functions[name]

    def get_optional(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    @property
    def kernels(self) -> List[Function]:
        return [f for f in self._functions.values() if f.is_kernel]

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __repr__(self) -> str:
        return f"<Module {self.name}: {list(self._functions)}>"
