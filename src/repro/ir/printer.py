"""Human-readable textual dump of IR, for debugging and doc examples."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module


def print_function(fn: Function) -> str:
    """Render *fn* as text resembling LLVM assembly."""
    lines = []
    args = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    kind = "kernel" if fn.is_kernel else "func"
    lines.append(f"{kind} @{fn.name}({args}) {{")
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render the channel table and every function in *module*."""
    parts = []
    channels = module.channels
    if channels:
        parts.append("\n".join(
            f"pipe {c.elem_type} @{c.name} depth={c.depth}"
            for c in channels))
    parts.extend(print_function(fn) for fn in module)
    return "\n\n".join(parts)
