"""Recursive-descent parser for the OpenCL C subset."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Lexer, Token
from repro.ir.types import is_type_name

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=",
               "&=", "|=", "^="}

_SPACE_KEYWORDS = {
    "__global": "global", "global": "global",
    "__local": "local", "local": "local",
    "__private": "private", "private": "private",
    "__constant": "constant", "constant": "constant",
}


class ParseError(Exception):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"parse error at {token.line}:{token.col}: "
                         f"{message} (got {token.kind} {token.text!r})")
        self.token = token


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self._peek())
        return tok

    # -- top level -----------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        pending_pragmas: List[str] = []
        while not self._check("eof"):
            if self._check("pragma"):
                pending_pragmas.append(self._next().text)
                continue
            if self._starts_pipe_decl():
                unit.pipes.append(self._parse_pipe_decl())
                continue
            fn = self._parse_function()
            fn.pragmas = pending_pragmas
            pending_pragmas = []
            unit.functions.append(fn)
        return unit

    def _starts_pipe_decl(self) -> bool:
        # `pipe float ch ...;` / Intel `channel float ch ...;` at file
        # scope.  Both spellings lex as plain identifiers, so require a
        # type name right after to avoid stealing a function returning a
        # user type named `pipe`.
        tok = self._peek()
        if tok.kind != "id" or tok.text not in ("pipe", "channel"):
            return False
        return self._looks_like_type(1)

    def _parse_pipe_decl(self) -> ast.PipeDecl:
        start = self._next()          # consume `pipe` / `channel`
        elem_type = self._parse_type_name()
        name = self._expect("id").text
        depth = 1
        while self._check("keyword", "__attribute__"):
            attr_depth = self._parse_depth_attribute()
            if attr_depth is not None:
                depth = attr_depth
        self._expect("op", ";")
        return ast.PipeDecl(line=start.line, col=start.col,
                            elem_type=elem_type, name=name, depth=depth)

    def _parse_depth_attribute(self) -> Optional[int]:
        """Parse ``__attribute__((depth(N)))``; returns N or None."""
        self._expect("keyword", "__attribute__")
        self._expect("op", "(")
        self._expect("op", "(")
        result = None
        name = self._expect("id").text
        if self._accept("op", "("):
            args: List[int] = []
            while not self._check("op", ")"):
                tok = self._next()
                if tok.kind == "int":
                    args.append(int(tok.value))
            self._expect("op", ")")
            if name == "depth" and len(args) == 1:
                result = args[0]
        self._expect("op", ")")
        self._expect("op", ")")
        return result

    def _parse_function(self) -> ast.FunctionDef:
        start = self._peek()
        is_kernel = False
        reqd_wgs = None
        # Leading qualifiers and attributes, in any order.
        while True:
            if self._accept("keyword", "__kernel") or self._accept("keyword", "kernel"):
                is_kernel = True
                continue
            if self._accept("keyword", "static") or self._accept("keyword", "inline"):
                continue
            if self._check("keyword", "__attribute__"):
                reqd = self._parse_attribute()
                if reqd is not None:
                    reqd_wgs = reqd
                continue
            break
        ret_type, ret_ptr = self._parse_type_prefix()
        name = self._expect("id").text
        self._expect("op", "(")
        params: List[ast.ParamDecl] = []
        if not self._check("op", ")"):
            while True:
                params.append(self._parse_param())
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        # Trailing attribute position is also legal.
        if self._check("keyword", "__attribute__"):
            reqd = self._parse_attribute()
            if reqd is not None:
                reqd_wgs = reqd
        body = self._parse_compound()
        return ast.FunctionDef(
            line=start.line, col=start.col, name=name, return_type=ret_type,
            return_pointer_depth=ret_ptr, params=params, body=body,
            is_kernel=is_kernel, reqd_work_group_size=reqd_wgs)

    def _parse_attribute(self):
        """Parse __attribute__((...)); returns reqd_work_group_size or None."""
        self._expect("keyword", "__attribute__")
        self._expect("op", "(")
        self._expect("op", "(")
        result = None
        name = self._expect("id").text
        if self._accept("op", "("):
            args: List[int] = []
            while not self._check("op", ")"):
                tok = self._next()
                if tok.kind == "int":
                    args.append(int(tok.value))
            self._expect("op", ")")
            if name == "reqd_work_group_size" and len(args) == 3:
                result = tuple(args)
        self._expect("op", ")")
        self._expect("op", ")")
        return result

    def _parse_param(self) -> ast.ParamDecl:
        start = self._peek()
        space = "private"
        is_const = False
        while True:
            tok = self._peek()
            if tok.kind == "keyword" and tok.text in _SPACE_KEYWORDS:
                space = _SPACE_KEYWORDS[tok.text]
                self._next()
                continue
            if self._accept("keyword", "const"):
                is_const = True
                continue
            if (self._accept("keyword", "volatile")
                    or self._accept("keyword", "restrict")):
                continue
            break
        type_name = self._parse_type_name()
        ptr_depth = 0
        while self._accept("op", "*"):
            ptr_depth += 1
            # const/restrict after the star
            while (self._accept("keyword", "const")
                   or self._accept("keyword", "restrict")
                   or self._accept("keyword", "volatile")):
                pass
        name = self._expect("id").text
        if ptr_depth > 0 and space == "private":
            # An unqualified pointer parameter defaults to global in SDAccel.
            space = "global"
        return ast.ParamDecl(type_name=type_name, name=name, space=space,
                             pointer_depth=ptr_depth, is_const=is_const,
                             line=start.line, col=start.col)

    def _parse_type_prefix(self):
        type_name = self._parse_type_name()
        ptr = 0
        while self._accept("op", "*"):
            ptr += 1
        return type_name, ptr

    def _parse_type_name(self) -> str:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in ("unsigned", "signed"):
            self._next()
            base = "int"
            nxt = self._peek()
            if nxt.kind in ("id", "keyword") and is_type_name(nxt.text):
                base = self._next().text
            if tok.text == "unsigned":
                return {"char": "uchar", "short": "ushort", "int": "uint",
                        "long": "ulong"}.get(base, "uint")
            return base
        if tok.kind == "keyword" and tok.text == "void":
            self._next()
            return "void"
        if tok.kind == "id" and tok.text == "size_t":
            self._next()
            return "uint"
        if tok.kind == "id" and is_type_name(tok.text):
            self._next()
            return tok.text
        raise ParseError("expected a type name", tok)

    def _looks_like_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind == "keyword" and tok.text in (
                "unsigned", "signed", "void", "const", "volatile",
                "__local", "local", "__private", "private",
                "__constant", "constant", "__global", "global"):
            return True
        return tok.kind == "id" and (is_type_name(tok.text)
                                     or tok.text == "size_t")

    # -- statements ------------------------------------------------------

    def _parse_compound(self) -> ast.CompoundStmt:
        brace = self._expect("op", "{")
        body: List[ast.Stmt] = []
        pending_pragmas: List[str] = []
        while not self._check("op", "}"):
            if self._check("pragma"):
                pending_pragmas.append(self._next().text)
                continue
            stmt = self._parse_statement()
            if pending_pragmas and isinstance(
                    stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
                stmt.pragmas = pending_pragmas
            pending_pragmas = []
            body.append(stmt)
        self._expect("op", "}")
        return ast.CompoundStmt(line=brace.line, col=brace.col, body=body)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == "op" and tok.text == "{":
            return self._parse_compound()
        if tok.kind == "op" and tok.text == ";":
            self._next()
            return ast.ExprStmt(line=tok.line, col=tok.col, expr=None)
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "do":
                return self._parse_do_while()
            if tok.text == "return":
                self._next()
                value = None
                if not self._check("op", ";"):
                    value = self._parse_expression()
                self._expect("op", ";")
                return ast.ReturnStmt(line=tok.line, col=tok.col, value=value)
            if tok.text == "break":
                self._next()
                self._expect("op", ";")
                return ast.BreakStmt(line=tok.line, col=tok.col)
            if tok.text == "continue":
                self._next()
                self._expect("op", ";")
                return ast.ContinueStmt(line=tok.line, col=tok.col)
        if self._starts_declaration():
            return self._parse_declaration()
        expr = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def _starts_declaration(self) -> bool:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in (
                "__local", "local", "__private", "private", "const",
                "__constant", "constant", "unsigned", "signed",
                "volatile", "__global", "global"):
            return True
        if tok.kind == "id" and (is_type_name(tok.text) or tok.text == "size_t"):
            # `float x` vs expression starting with an id: a declaration has
            # an identifier (or '*') right after the type.
            nxt = self._peek(1)
            return (nxt.kind == "id"
                    or (nxt.kind == "op" and nxt.text == "*"))
        return False

    def _parse_declaration(self) -> ast.DeclStmt:
        start = self._peek()
        space = "private"
        while True:
            tok = self._peek()
            if tok.kind == "keyword" and tok.text in _SPACE_KEYWORDS:
                space = _SPACE_KEYWORDS[tok.text]
                self._next()
                continue
            if tok.kind == "keyword" and tok.text in ("const", "volatile"):
                self._next()
                continue
            break
        type_name = self._parse_type_name()
        ptr_depth = 0
        declarators: List[ast.Declarator] = []
        first = True
        while True:
            d_ptr = 0
            while self._accept("op", "*"):
                d_ptr += 1
            if first:
                ptr_depth = d_ptr
                first = False
            name_tok = self._expect("id")
            array_size = None
            if self._accept("op", "["):
                array_size = self._parse_expression()
                self._expect("op", "]")
                # Multi-dimensional local arrays are flattened.
                while self._accept("op", "["):
                    extra = self._parse_expression()
                    self._expect("op", "]")
                    array_size = ast.BinaryExpr(
                        line=name_tok.line, col=name_tok.col, op="*",
                        lhs=array_size, rhs=extra)
            init = None
            if self._accept("op", "="):
                init = self._parse_assignment()
            declarators.append(ast.Declarator(
                name=name_tok.text, array_size=array_size, init=init,
                line=name_tok.line, col=name_tok.col))
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return ast.DeclStmt(line=start.line, col=start.col,
                            type_name=type_name, space=space,
                            pointer_depth=ptr_depth, declarators=declarators)

    def _parse_if(self) -> ast.IfStmt:
        kw = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        els = None
        if self._accept("keyword", "else"):
            els = self._parse_statement()
        return ast.IfStmt(line=kw.line, col=kw.col, cond=cond, then=then,
                          els=els)

    def _parse_for(self) -> ast.ForStmt:
        kw = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._check("op", ";"):
            if self._starts_declaration():
                init = self._parse_declaration()
            else:
                expr = self._parse_expression()
                self._expect("op", ";")
                init = ast.ExprStmt(line=kw.line, col=kw.col, expr=expr)
        else:
            self._next()
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.ForStmt(line=kw.line, col=kw.col, init=init, cond=cond,
                           step=step, body=body)

    def _parse_while(self) -> ast.WhileStmt:
        kw = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.WhileStmt(line=kw.line, col=kw.col, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        kw = self._expect("keyword", "do")
        body = self._parse_statement()
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhileStmt(line=kw.line, col=kw.col, body=body,
                               cond=cond)

    # -- expressions -----------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        # Comma operator: evaluate left, result is right.  Used in for-steps.
        while self._check("op", ",") and self._comma_is_operator():
            self._next()
            rhs = self._parse_assignment()
            expr = ast.BinaryExpr(line=expr.line, col=expr.col, op=",",
                                  lhs=expr, rhs=rhs)
        return expr

    def _comma_is_operator(self) -> bool:
        # Inside call args / declarations the caller handles ','. We only
        # parse comma-expressions at statement level, which reaches here.
        return True

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        tok = self._peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self._next()
            rhs = self._parse_assignment()
            return ast.AssignExpr(line=tok.line, col=tok.col, op=tok.text,
                                  target=lhs, value=rhs)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("op", "?"):
            then = self._parse_assignment()
            self._expect("op", ":")
            els = self._parse_assignment()
            return ast.TernaryExpr(line=cond.line, col=cond.col, cond=cond,
                                   then=then, els=els)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind != "op" or tok.text not in _BINARY_PRECEDENCE:
                return lhs
            prec = _BINARY_PRECEDENCE[tok.text]
            if prec < min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.BinaryExpr(line=tok.line, col=tok.col, op=tok.text,
                                 lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnaryExpr(line=tok.line, col=tok.col, op=tok.text,
                                 operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryExpr(line=tok.line, col=tok.col, op=tok.text,
                                 operand=operand, postfix=False)
        if tok.kind == "keyword" and tok.text == "sizeof":
            self._next()
            self._expect("op", "(")
            from repro.ir.types import parse_type_name
            name = self._parse_type_name()
            self._expect("op", ")")
            return ast.IntLiteral(line=tok.line, col=tok.col,
                                  value=parse_type_name(name).bytes)
        # Cast: '(' type ')' unary
        if tok.kind == "op" and tok.text == "(" and self._looks_like_type(1):
            # Distinguish a cast from a parenthesized expression: after the
            # type (and stars) we must see ')'.
            save = self.pos
            self._next()
            try:
                type_name = self._parse_type_name()
                ptr = 0
                while self._accept("op", "*"):
                    ptr += 1
                if self._accept("op", ")"):
                    operand = self._parse_unary()
                    return ast.CastExpr(line=tok.line, col=tok.col,
                                        type_name=type_name,
                                        pointer_depth=ptr, operand=operand)
            except ParseError:
                pass
            self.pos = save
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind == "op" and tok.text == "[":
                self._next()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.IndexExpr(line=tok.line, col=tok.col, base=expr,
                                     index=index)
            elif tok.kind == "op" and tok.text == "(":
                if not isinstance(expr, ast.Identifier):
                    raise ParseError("can only call named functions", tok)
                self._next()
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                expr = ast.CallExpr(line=tok.line, col=tok.col,
                                    callee=expr.name, args=args)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self._next()
                expr = ast.UnaryExpr(line=tok.line, col=tok.col, op=tok.text,
                                     operand=expr, postfix=True)
            elif tok.kind == "op" and tok.text == ".":
                self._next()
                member = self._expect("id").text
                expr = ast.MemberExpr(line=tok.line, col=tok.col, base=expr,
                                      member=member)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind == "int":
            return ast.IntLiteral(line=tok.line, col=tok.col,
                                  value=int(tok.value))
        if tok.kind == "float":
            return ast.FloatLiteral(line=tok.line, col=tok.col,
                                    value=float(tok.value))
        if tok.kind == "id":
            return ast.Identifier(line=tok.line, col=tok.col, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError("expected an expression", tok)


def parse(source: str) -> ast.TranslationUnit:
    """Lex and parse OpenCL C *source* into an AST."""
    tokens = Lexer(source).tokens()
    return Parser(tokens).parse_translation_unit()
