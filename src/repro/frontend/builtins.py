"""OpenCL builtin functions and predefined constants.

Each builtin carries a small signature descriptor the lowering pass uses
to derive the call's result type, plus a *category* that the latency
table (:mod:`repro.latency`) keys on when assigning FPGA IP-core
latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ir.types import FLOAT, INT, UINT, VOID, Type


@dataclass(frozen=True)
class BuiltinSignature:
    """Describes one OpenCL builtin."""

    name: str
    arity: int
    #: 'uint' | 'float' | 'void' | 'generic' (result type follows first arg)
    result: str
    #: latency-table category: 'workitem', 'sync', 'fsimple', 'fexpensive',
    #: 'fdiv', 'isimple', 'atomic'
    category: str

    def result_type(self, arg_types) -> Type:
        if self.result == "uint":
            return UINT
        if self.result == "int":
            return INT
        if self.result == "float":
            return FLOAT
        if self.result == "void":
            return VOID
        # generic: follow the first argument
        return arg_types[0] if arg_types else INT


def _sig(name: str, arity: int, result: str, category: str) -> BuiltinSignature:
    return BuiltinSignature(name, arity, result, category)


_WORKITEM = [
    _sig("get_global_id", 1, "uint", "workitem"),
    _sig("get_local_id", 1, "uint", "workitem"),
    _sig("get_group_id", 1, "uint", "workitem"),
    _sig("get_global_size", 1, "uint", "workitem"),
    _sig("get_local_size", 1, "uint", "workitem"),
    _sig("get_num_groups", 1, "uint", "workitem"),
    _sig("get_global_offset", 1, "uint", "workitem"),
    _sig("get_work_dim", 0, "uint", "workitem"),
]

_SYNC = [
    _sig("barrier", 1, "void", "sync"),
    _sig("mem_fence", 1, "void", "sync"),
    _sig("read_mem_fence", 1, "void", "sync"),
    _sig("write_mem_fence", 1, "void", "sync"),
]

# Cheap float ops that map to a short pipeline on FPGA.
_FLOAT_SIMPLE = ["fabs", "floor", "ceil", "round", "trunc", "fmin", "fmax",
                 "fmod", "sign", "mix", "clamp", "mad", "fma", "step"]
# Expensive float ops implemented as deep CORDIC/poly IP cores.
_FLOAT_EXPENSIVE = ["sqrt", "rsqrt", "exp", "exp2", "exp10", "log", "log2",
                    "log10", "sin", "cos", "tan", "asin", "acos", "atan",
                    "atan2", "sinh", "cosh", "tanh", "pow", "hypot",
                    "native_exp", "native_log", "native_sqrt", "native_sin",
                    "native_cos", "native_powr", "native_rsqrt"]
_FLOAT_DIV = ["native_divide", "native_recip"]

_FLOAT_ARITY = {
    "fmin": 2, "fmax": 2, "fmod": 2, "pow": 2, "atan2": 2, "hypot": 2,
    "native_divide": 2, "native_powr": 2, "step": 2,
    "mad": 3, "fma": 3, "clamp": 3, "mix": 3,
}

_INT_GENERIC = [
    _sig("min", 2, "generic", "isimple"),
    _sig("max", 2, "generic", "isimple"),
    _sig("abs", 1, "generic", "isimple"),
    _sig("mul24", 2, "generic", "isimple"),
    _sig("mad24", 3, "generic", "isimple"),
]

_ATOMIC = [
    _sig("atomic_add", 2, "int", "atomic"),
    _sig("atomic_sub", 2, "int", "atomic"),
    _sig("atomic_inc", 1, "int", "atomic"),
    _sig("atomic_dec", 1, "int", "atomic"),
    _sig("atomic_min", 2, "int", "atomic"),
    _sig("atomic_max", 2, "int", "atomic"),
    _sig("atomic_xchg", 2, "int", "atomic"),
    _sig("atomic_cmpxchg", 3, "int", "atomic"),
]

BUILTIN_SIGNATURES: Dict[str, BuiltinSignature] = {}
for group in (_WORKITEM, _SYNC, _INT_GENERIC, _ATOMIC):
    for sig in group:
        BUILTIN_SIGNATURES[sig.name] = sig
for fname in _FLOAT_SIMPLE:
    BUILTIN_SIGNATURES.setdefault(
        fname, _sig(fname, _FLOAT_ARITY.get(fname, 1), "generic", "fsimple"))
for fname in _FLOAT_EXPENSIVE:
    BUILTIN_SIGNATURES[fname] = _sig(
        fname, _FLOAT_ARITY.get(fname, 1), "generic", "fexpensive")
for fname in _FLOAT_DIV:
    BUILTIN_SIGNATURES[fname] = _sig(
        fname, _FLOAT_ARITY.get(fname, 1), "generic", "fdiv")


def is_builtin(name: str) -> bool:
    """True for OpenCL builtins, including ``convert_<type>`` conversions."""
    return name in BUILTIN_SIGNATURES or name.startswith("convert_")


def builtin_signature(name: str) -> Optional[BuiltinSignature]:
    """The signature of a builtin, or None for unknown names."""
    return BUILTIN_SIGNATURES.get(name)


#: Predefined OpenCL constants available as identifiers in kernel source.
PREDEFINED_CONSTANTS = {
    "CLK_LOCAL_MEM_FENCE": (INT, 1),
    "CLK_GLOBAL_MEM_FENCE": (INT, 2),
    "INT_MAX": (INT, 2**31 - 1),
    "INT_MIN": (INT, -(2**31)),
    "UINT_MAX": (UINT, 2**32 - 1),
    "FLT_MAX": (FLOAT, 3.402823466e38),
    "FLT_MIN": (FLOAT, 1.175494351e-38),
    "FLT_EPSILON": (FLOAT, 1.1920929e-7),
    "M_PI": (FLOAT, 3.14159265358979323846),
    "M_E": (FLOAT, 2.71828182845904523536),
    "MAXFLOAT": (FLOAT, 3.402823466e38),
    "INFINITY": (FLOAT, float("inf")),
    "true": (INT, 1),
    "false": (INT, 0),
}
