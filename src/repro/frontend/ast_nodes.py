"""AST node definitions for the OpenCL C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class carrying the source location."""

    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    @property
    def span(self) -> Tuple[int, int]:
        """``(line, col)`` of the token that introduced this node."""
        return (self.line, self.col)


# -- expressions ----------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class UnaryExpr(Expr):
    op: str = ""          # '-', '!', '~', '*', '&', '++', '--'
    operand: Expr = None
    postfix: bool = False  # for ++/--


@dataclass
class AssignExpr(Expr):
    op: str = "="         # '=', '+=', '-=', ...
    target: Expr = None
    value: Expr = None


@dataclass
class TernaryExpr(Expr):
    cond: Expr = None
    then: Expr = None
    els: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class CastExpr(Expr):
    type_name: str = ""
    pointer_depth: int = 0
    operand: Expr = None


@dataclass
class MemberExpr(Expr):
    """Vector component access such as ``v.x`` or ``v.s3``."""

    base: Expr = None
    member: str = ""


# -- declarations / statements --------------------------------------------

@dataclass
class Declarator:
    """One declared name within a declaration statement."""

    name: str = ""
    array_size: Optional[Expr] = None
    init: Optional[Expr] = None
    line: int = 0
    col: int = 0


@dataclass
class Stmt(Node):
    pass


@dataclass
class DeclStmt(Stmt):
    type_name: str = ""
    space: str = "private"   # 'private' | 'local' | 'constant'
    pointer_depth: int = 0
    declarators: List[Declarator] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class CompoundStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then: Stmt = None
    els: Optional[Stmt] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None
    pragmas: List[str] = field(default_factory=list)
    #: set by transforms (e.g. partial unrolling) when the loop's
    #: macro-iteration count is known but not syntactically derivable
    trip_count_hint: Optional[int] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None
    pragmas: List[str] = field(default_factory=list)


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    cond: Expr = None
    pragmas: List[str] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- top level -------------------------------------------------------------

@dataclass
class ParamDecl:
    """One formal parameter of a kernel or helper function."""

    type_name: str = ""
    name: str = ""
    space: str = "private"       # for pointers: 'global' | 'local' | 'constant'
    pointer_depth: int = 0
    is_const: bool = False
    line: int = 0
    col: int = 0


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: str = "void"
    return_pointer_depth: int = 0
    params: List[ParamDecl] = field(default_factory=list)
    body: CompoundStmt = None
    is_kernel: bool = False
    reqd_work_group_size: Optional[Tuple[int, int, int]] = None
    pragmas: List[str] = field(default_factory=list)


@dataclass
class PipeDecl(Node):
    """A translation-unit-scope FIFO declaration.

    Covers the Intel-style ``channel float ch;`` form and the analogous
    ``pipe float ch;`` spelling, optionally with
    ``__attribute__((depth(N)))``.
    """

    elem_type: str = ""
    name: str = ""
    depth: int = 1


@dataclass
class TranslationUnit(Node):
    functions: List[FunctionDef] = field(default_factory=list)
    pipes: List[PipeDecl] = field(default_factory=list)
