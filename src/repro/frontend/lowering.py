"""Lowering from the OpenCL C AST to :mod:`repro.ir`.

The style follows Clang at -O0: every variable (including parameters)
gets a stack slot (:class:`~repro.ir.instructions.Alloca`) and is accessed
through loads and stores.  ``__local`` arrays become local-space allocas
shared by the work-group.  Helper (non-kernel) functions are inlined at
their call sites, since OpenCL-to-FPGA flows flatten the call graph into
one hardware pipeline.

Loop structure discovered while lowering is recorded as
:class:`LoopMeta` entries on the function (``fn.loop_meta``) so the
analysis layer can attach static trip counts and unroll pragmas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.builtins import (
    PREDEFINED_CONSTANTS,
    builtin_signature,
    )
from repro.frontend.parser import parse
from repro.ir import (
    Channel,
    Function,
    IRBuilder,
    Module,
    verify_module,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    FLOAT,
    INT,
    PointerType,
    ScalarType,
    Type,
    VOID,
    common_type,
    parse_type_name,
)
from repro.ir.values import Constant, Value
from repro.ir.visitor import Dispatcher


class LoweringError(Exception):
    """Raised when the AST uses a feature outside the supported subset."""


@dataclass
class LoopMeta:
    """Metadata for one source-level loop."""

    header: str                       # name of the condition block
    body_entry: str                   # first block of the body
    static_trip_count: Optional[int] = None
    unroll_factor: Optional[int] = None   # from '#pragma unroll N'
    pipeline: bool = False                # from '#pragma pipeline' etc.
    line: int = 0


@dataclass
class VarSlot:
    """A named variable: where it lives and what it holds."""

    ptr: Value                # pointer to the storage
    declared: Type            # declared value type (element type for arrays)
    space: AddressSpace
    is_array: bool = False


_SPACE_MAP = {
    "private": AddressSpace.PRIVATE,
    "local": AddressSpace.LOCAL,
    "global": AddressSpace.GLOBAL,
    "constant": AddressSpace.CONSTANT,
}

_COMPARE_MAP = {"==": "eq", "!=": "ne", "<": "lt",
                "<=": "le", ">": "gt", ">=": "ge"}

_INT_OP_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
               "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}
_FLOAT_OP_MAP = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                 "%": "frem"}


class _Scope:
    """A lexical scope chain."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, VarSlot] = {}

    def lookup(self, name: str) -> Optional[VarSlot]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name: str, slot: VarSlot) -> None:
        self.vars[name] = slot


class _FunctionLowering(Dispatcher):
    """Lowers one kernel (inlining helper calls as it goes).

    Statement and expression lowering dispatch through the shared
    :class:`~repro.ir.visitor.Dispatcher` base: ``lower_<ASTClass>``
    methods replace the former ``isinstance`` ladders, and unsupported
    node classes fall through to :meth:`generic_visit`.
    """

    visit_prefix = "lower_"
    MAX_INLINE_DEPTH = 16

    def __init__(self, kernel_ast: ast.FunctionDef,
                 helpers: Dict[str, ast.FunctionDef],
                 channels: Optional[Dict[str, Channel]] = None) -> None:
        self.kernel_ast = kernel_ast
        self.helpers = helpers
        self.channels: Dict[str, Channel] = channels or {}
        self.fn: Optional[Function] = None
        self.builder: Optional[IRBuilder] = None
        self.scope = _Scope()
        self.loop_stack: List[Tuple] = []   # (break_target, continue_target)
        self.inline_stack: List[str] = []
        self.loop_meta: List[LoopMeta] = []
        # When inlining, 'return' branches here and stores to result slot.
        self.return_targets: List[Tuple] = []   # (join_block, result_slot)

    # -- entry -------------------------------------------------------------

    def lower(self) -> Function:
        kast = self.kernel_ast
        arg_types: List[Type] = []
        arg_names: List[str] = []
        for p in kast.params:
            arg_types.append(self._param_type(p))
            arg_names.append(p.name)
        fn = Function(kast.name, arg_types, arg_names, is_kernel=True)
        fn.reqd_work_group_size = kast.reqd_work_group_size
        self.fn = fn
        self.builder = IRBuilder(fn)
        entry = fn.new_block("entry")
        self.builder.set_block(entry)

        # Parameters get private slots, Clang -O0 style.
        for arg, param in zip(fn.args, kast.params):
            self.builder.set_span(param.line, param.col)
            slot_ptr = self.builder.alloca(arg.type, AddressSpace.PRIVATE,
                                           name=param.name)
            self.builder.store(arg, slot_ptr)
            self.scope.define(param.name, VarSlot(
                ptr=slot_ptr, declared=arg.type, space=AddressSpace.PRIVATE))

        self._lower_stmt(kast.body)
        if not self.builder.block.is_terminated:
            self.builder.ret()
        # Terminate any empty dangling blocks (e.g. unreachable join blocks).
        from repro.ir.instructions import Return
        for block in fn.blocks:
            if not block.is_terminated:
                block.append(Return())
        fn.loop_meta = self.loop_meta  # type: ignore[attr-defined]
        return fn

    def _param_type(self, p: ast.ParamDecl) -> Type:
        base = parse_type_name(p.type_name)
        t: Type = base
        for _ in range(p.pointer_depth):
            t = PointerType(t, _SPACE_MAP[p.space])
        return t

    # -- statements ----------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if stmt is not None and getattr(stmt, "line", 0):
            self.builder.set_span(stmt.line, stmt.col)
        self.visit(stmt)

    def generic_visit(self, node) -> None:
        kind = "expression" if isinstance(node, ast.Expr) else "statement"
        raise LoweringError(f"unsupported {kind} {type(node).__name__}")

    def lower_CompoundStmt(self, stmt: ast.CompoundStmt) -> None:
        self.scope = _Scope(self.scope)
        for s in stmt.body:
            if self.builder.block.is_terminated:
                break  # dead code after break/continue/return
            self._lower_stmt(s)
        self.scope = self.scope.parent

    def lower_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        if stmt.expr is not None:
            self._lower_expr(stmt.expr)

    def lower_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        if not self.loop_stack:
            raise LoweringError(f"line {stmt.line}: break outside loop")
        self.builder.branch(self.loop_stack[-1][0])

    def lower_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        if not self.loop_stack:
            raise LoweringError(f"line {stmt.line}: continue outside loop")
        self.builder.branch(self.loop_stack[-1][1])

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        base = parse_type_name(stmt.type_name)
        space = _SPACE_MAP[stmt.space]
        pointee_space = space
        if stmt.pointer_depth > 0:
            # `__global float* p` declares a private variable pointing
            # into the global space: the qualifier names the pointee.
            if space == AddressSpace.PRIVATE:
                pointee_space = AddressSpace.GLOBAL
            space = AddressSpace.PRIVATE
        for decl in stmt.declarators:
            declared: Type = base
            for _ in range(stmt.pointer_depth):
                declared = PointerType(declared, pointee_space)
            if decl.array_size is not None:
                size = self._const_eval_int(decl.array_size)
                slot_ptr = self.builder.alloca(
                    ArrayType(declared, size), space, name=decl.name)
                self.scope.define(decl.name, VarSlot(
                    ptr=slot_ptr, declared=declared, space=space,
                    is_array=True))
                if decl.init is not None:
                    raise LoweringError(
                        f"line {decl.line}: array initialisers unsupported")
                continue
            slot_ptr = self.builder.alloca(declared, space, name=decl.name)
            self.scope.define(decl.name, VarSlot(
                ptr=slot_ptr, declared=declared, space=space))
            if decl.init is not None:
                value, vtype = self._lower_expr(decl.init)
                value = self._convert(value, vtype, declared)
                self.builder.store(value, slot_ptr)

    def _const_eval_int(self, expr: ast.Expr) -> int:
        """Constant-fold an array-size expression."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._const_eval_int(expr.lhs)
            rhs = self._const_eval_int(expr.rhs)
            ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                   "*": lambda a, b: a * b, "/": lambda a, b: a // b,
                   "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        if isinstance(expr, ast.Identifier) and expr.name in PREDEFINED_CONSTANTS:
            return int(PREDEFINED_CONSTANTS[expr.name][1])
        raise LoweringError(
            f"line {expr.line}: array size must be a constant expression")

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond, ctype = self._lower_expr(stmt.cond)
        cond = self._to_bool(cond, ctype)
        then_block = self.builder.new_block("if.then")
        end_block = self.builder.new_block("if.end")
        else_block = end_block
        if stmt.els is not None:
            else_block = self.builder.new_block("if.else")
        self.builder.cond_branch(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self._lower_stmt(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.branch(end_block)
        if stmt.els is not None:
            self.builder.set_block(else_block)
            self._lower_stmt(stmt.els)
            if not self.builder.block.is_terminated:
                self.builder.branch(end_block)
        self.builder.set_block(end_block)

    def _loop_pragmas(self, pragmas: List[str]) -> Tuple[Optional[int], bool]:
        unroll: Optional[int] = None
        pipeline = False
        for text in pragmas:
            words = text.split()
            if not words:
                continue
            if words[0] == "unroll":
                unroll = int(words[1]) if len(words) > 1 else 0
            elif words[0].lower() in ("pipeline", "work_item_pipeline",
                                      "hls", "xcl_pipeline_loop"):
                pipeline = True
        return unroll, pipeline

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        cond_block = self.builder.new_block("for.cond")
        body_block = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        end_block = self.builder.new_block("for.end")
        self.builder.branch(cond_block)

        self.builder.set_block(cond_block)
        if stmt.cond is not None:
            cond, ctype = self._lower_expr(stmt.cond)
            cond = self._to_bool(cond, ctype)
            self.builder.cond_branch(cond, body_block, end_block)
        else:
            self.builder.branch(body_block)

        unroll, pipeline = self._loop_pragmas(stmt.pragmas)
        static_trips = (stmt.trip_count_hint
                        if stmt.trip_count_hint is not None
                        else self._static_trip_count(stmt))
        self.loop_meta.append(LoopMeta(
            header=cond_block.name, body_entry=body_block.name,
            static_trip_count=static_trips,
            unroll_factor=unroll, pipeline=pipeline, line=stmt.line))

        self.builder.set_block(body_block)
        self.loop_stack.append((end_block, step_block))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.branch(step_block)

        self.builder.set_block(step_block)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self.builder.branch(cond_block)
        self.builder.set_block(end_block)
        self.scope = self.scope.parent

    def _static_trip_count(self, stmt: ast.ForStmt) -> Optional[int]:
        """Recognise ``for (i = c0; i <op> c1; i += c2)`` with constants."""
        init = stmt.init
        start = None
        var = None
        if isinstance(init, ast.DeclStmt) and len(init.declarators) == 1:
            d = init.declarators[0]
            if isinstance(d.init, ast.IntLiteral):
                start, var = d.init.value, d.name
        elif (isinstance(init, ast.ExprStmt)
              and isinstance(init.expr, ast.AssignExpr)
              and init.expr.op == "="
              and isinstance(init.expr.target, ast.Identifier)
              and isinstance(init.expr.value, ast.IntLiteral)):
            start, var = init.expr.value.value, init.expr.target.name
        if var is None:
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.BinaryExpr)
                and isinstance(cond.lhs, ast.Identifier)
                and cond.lhs.name == var
                and isinstance(cond.rhs, ast.IntLiteral)
                and cond.op in ("<", "<=", ">", ">=", "!=")):
            return None
        bound = cond.rhs.value
        step = self._static_step(stmt.step, var)
        if step is None or step == 0:
            return None
        if cond.op == "<":
            n = max(0, -(-(bound - start) // step)) if step > 0 else None
        elif cond.op == "<=":
            n = max(0, -(-(bound - start + 1) // step)) if step > 0 else None
        elif cond.op == ">":
            n = max(0, -(-(start - bound) // -step)) if step < 0 else None
        elif cond.op == ">=":
            n = max(0, -(-(start - bound + 1) // -step)) if step < 0 else None
        else:  # '!='
            diff = bound - start
            n = diff // step if diff % step == 0 and diff * step >= 0 else None
        return n

    @staticmethod
    def _static_step(step: Optional[ast.Expr], var: str) -> Optional[int]:
        if step is None:
            return None
        if (isinstance(step, ast.UnaryExpr) and step.op in ("++", "--")
                and isinstance(step.operand, ast.Identifier)
                and step.operand.name == var):
            return 1 if step.op == "++" else -1
        if (isinstance(step, ast.AssignExpr)
                and isinstance(step.target, ast.Identifier)
                and step.target.name == var
                and isinstance(step.value, ast.IntLiteral)):
            if step.op == "+=":
                return step.value.value
            if step.op == "-=":
                return -step.value.value
        return None

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self.builder.new_block("while.cond")
        body_block = self.builder.new_block("while.body")
        end_block = self.builder.new_block("while.end")
        self.builder.branch(cond_block)
        self.builder.set_block(cond_block)
        cond, ctype = self._lower_expr(stmt.cond)
        cond = self._to_bool(cond, ctype)
        self.builder.cond_branch(cond, body_block, end_block)

        unroll, pipeline = self._loop_pragmas(stmt.pragmas)
        self.loop_meta.append(LoopMeta(
            header=cond_block.name, body_entry=body_block.name,
            unroll_factor=unroll, pipeline=pipeline, line=stmt.line))

        self.builder.set_block(body_block)
        self.loop_stack.append((end_block, cond_block))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.branch(cond_block)
        self.builder.set_block(end_block)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body_block = self.builder.new_block("do.body")
        cond_block = self.builder.new_block("do.cond")
        end_block = self.builder.new_block("do.end")
        self.builder.branch(body_block)

        unroll, pipeline = self._loop_pragmas(stmt.pragmas)
        self.loop_meta.append(LoopMeta(
            header=cond_block.name, body_entry=body_block.name,
            unroll_factor=unroll, pipeline=pipeline, line=stmt.line))

        self.builder.set_block(body_block)
        self.loop_stack.append((end_block, cond_block))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.branch(cond_block)
        self.builder.set_block(cond_block)
        cond, ctype = self._lower_expr(stmt.cond)
        cond = self._to_bool(cond, ctype)
        self.builder.cond_branch(cond, body_block, end_block)
        self.builder.set_block(end_block)

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        if self.return_targets:
            join, result_slot, result_type = self.return_targets[-1]
            if stmt.value is not None and result_slot is not None:
                value, vtype = self._lower_expr(stmt.value)
                value = self._convert(value, vtype, result_type)
                self.builder.store(value, result_slot)
            self.builder.branch(join)
        else:
            if stmt.value is not None:
                self._lower_expr(stmt.value)
            self.builder.ret()

    # Statement dispatch aliases (Dispatcher resolves lower_<ASTClass>).
    lower_DeclStmt = _lower_decl
    lower_IfStmt = _lower_if
    lower_ForStmt = _lower_for
    lower_WhileStmt = _lower_while
    lower_DoWhileStmt = _lower_do_while
    lower_ReturnStmt = _lower_return

    # -- expressions ---------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Tuple[Value, Type]:
        if expr.line:
            self.builder.set_span(expr.line, expr.col)
        return self.visit(expr)

    def lower_IntLiteral(self, expr: ast.IntLiteral) -> Tuple[Value, Type]:
        return Constant(INT, expr.value), INT

    def lower_FloatLiteral(self, expr: ast.FloatLiteral) -> Tuple[Value, Type]:
        return Constant(FLOAT, expr.value), FLOAT

    def lower_IndexExpr(self, expr: ast.IndexExpr) -> Tuple[Value, Type]:
        ptr, elem = self._lower_lvalue(expr)
        if expr.line:
            self.builder.set_span(expr.line, expr.col)
        return self.builder.load(ptr), elem

    def lower_MemberExpr(self, expr: ast.MemberExpr) -> Tuple[Value, Type]:
        raise LoweringError(
            f"line {expr.line}: vector component access is outside the "
            f"supported subset (use scalar code; vectorization is a "
            f"design-space parameter)")

    def _lower_identifier(self, expr: ast.Identifier) -> Tuple[Value, Type]:
        slot = self.scope.lookup(expr.name)
        if slot is not None:
            if slot.is_array:
                # Array-to-pointer decay.
                decayed = PointerType(slot.declared, slot.space)
                return (self.builder.cast("ptrcast", slot.ptr, decayed),
                        decayed)
            value = self.builder.load(slot.ptr)
            return value, slot.declared
        if expr.name in PREDEFINED_CONSTANTS:
            type_, val = PREDEFINED_CONSTANTS[expr.name]
            return Constant(type_, val), type_
        raise LoweringError(f"line {expr.line}: unknown identifier "
                            f"{expr.name!r}")

    def _lower_lvalue(self, expr: ast.Expr) -> Tuple[Value, Type]:
        """Lower to (pointer, element type)."""
        if isinstance(expr, ast.Identifier):
            slot = self.scope.lookup(expr.name)
            if slot is None:
                raise LoweringError(f"line {expr.line}: unknown identifier "
                                    f"{expr.name!r}")
            if slot.is_array:
                raise LoweringError(f"line {expr.line}: cannot assign to "
                                    f"array {expr.name!r}")
            return slot.ptr, slot.declared
        if isinstance(expr, ast.IndexExpr):
            base, btype = self._lower_expr(expr.base)
            if not isinstance(btype, PointerType):
                raise LoweringError(
                    f"line {expr.line}: indexing a non-pointer ({btype})")
            index, itype = self._lower_expr(expr.index)
            if expr.line:
                self.builder.set_span(expr.line, expr.col)
            ptr = self.builder.gep(base, index)
            return ptr, btype.pointee
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            base, btype = self._lower_expr(expr.operand)
            if not isinstance(btype, PointerType):
                raise LoweringError(
                    f"line {expr.line}: dereferencing a non-pointer")
            return base, btype.pointee
        raise LoweringError(
            f"line {expr.line}: {type(expr).__name__} is not assignable")

    def _lower_binary(self, expr: ast.BinaryExpr) -> Tuple[Value, Type]:
        if expr.op == ",":
            self._lower_expr(expr.lhs)
            return self._lower_expr(expr.rhs)
        if expr.op in ("&&", "||"):
            return self._lower_logical(expr)
        lhs, ltype = self._lower_expr(expr.lhs)
        rhs, rtype = self._lower_expr(expr.rhs)
        if expr.op in _COMPARE_MAP:
            ctype = common_type(ltype, rtype)
            lhs = self._convert(lhs, ltype, ctype)
            rhs = self._convert(rhs, rtype, ctype)
            return (self.builder.compare(_COMPARE_MAP[expr.op], lhs, rhs,
                                         BOOL), BOOL)
        # Pointer arithmetic: ptr +/- int -> gep.
        if isinstance(ltype, PointerType) and expr.op in ("+", "-"):
            index = rhs
            if expr.op == "-":
                index = self.builder.binop(
                    "sub", Constant(INT, 0), rhs, rtype)
            return self.builder.gep(lhs, index), ltype
        if isinstance(rtype, PointerType) and expr.op == "+":
            return self.builder.gep(rhs, lhs), rtype
        result_type = common_type(ltype, rtype)
        lhs = self._convert(lhs, ltype, result_type)
        rhs = self._convert(rhs, rtype, result_type)
        if result_type.is_float:
            if expr.op not in _FLOAT_OP_MAP:
                raise LoweringError(
                    f"line {expr.line}: operator {expr.op!r} on float")
            op = _FLOAT_OP_MAP[expr.op]
        else:
            op = _INT_OP_MAP[expr.op]
        return self.builder.binop(op, lhs, rhs, result_type), result_type

    def _lower_logical(self, expr: ast.BinaryExpr) -> Tuple[Value, Type]:
        """Short-circuit && and || via control flow and a result slot."""
        slot = self.builder.alloca(BOOL, AddressSpace.PRIVATE, name="sc")
        lhs, ltype = self._lower_expr(expr.lhs)
        lhs = self._to_bool(lhs, ltype)
        self.builder.store(lhs, slot)
        rhs_block = self.builder.new_block("sc.rhs")
        end_block = self.builder.new_block("sc.end")
        if expr.op == "&&":
            self.builder.cond_branch(lhs, rhs_block, end_block)
        else:
            self.builder.cond_branch(lhs, end_block, rhs_block)
        self.builder.set_block(rhs_block)
        rhs, rtype = self._lower_expr(expr.rhs)
        rhs = self._to_bool(rhs, rtype)
        self.builder.store(rhs, slot)
        self.builder.branch(end_block)
        self.builder.set_block(end_block)
        return self.builder.load(slot), BOOL

    def _lower_ternary(self, expr: ast.TernaryExpr) -> Tuple[Value, Type]:
        cond, ctype = self._lower_expr(expr.cond)
        cond = self._to_bool(cond, ctype)
        then_block = self.builder.new_block("sel.then")
        else_block = self.builder.new_block("sel.else")
        end_block = self.builder.new_block("sel.end")
        self.builder.cond_branch(cond, then_block, else_block)

        # Lower both arms to discover the common result type, storing
        # through a slot typed after the first arm then fixing up.
        self.builder.set_block(then_block)
        tval, ttype = self._lower_expr(expr.then)
        then_exit = self.builder.block

        self.builder.set_block(else_block)
        eval_, etype = self._lower_expr(expr.els)
        else_exit = self.builder.block

        result_type = common_type(ttype, etype)
        slot = self.builder.alloca(result_type, AddressSpace.PRIVATE,
                                   name="sel")
        # The alloca must dominate both stores; move it to the entry block.
        alloca_inst = self.builder.block.instructions.pop()
        self.fn.entry.instructions.insert(0, alloca_inst)

        self.builder.set_block(then_exit)
        self.builder.store(self._convert(tval, ttype, result_type), slot)
        self.builder.branch(end_block)
        self.builder.set_block(else_exit)
        self.builder.store(self._convert(eval_, etype, result_type), slot)
        self.builder.branch(end_block)
        self.builder.set_block(end_block)
        return self.builder.load(slot), result_type

    def _lower_unary(self, expr: ast.UnaryExpr) -> Tuple[Value, Type]:
        if expr.op in ("++", "--"):
            ptr, vtype = self._lower_lvalue(expr.operand)
            old = self.builder.load(ptr)
            one = Constant(FLOAT, 1.0) if vtype.is_float else Constant(INT, 1)
            if isinstance(vtype, PointerType):
                delta = Constant(INT, 1 if expr.op == "++" else -1)
                new = self.builder.gep(old, delta)
            else:
                op = ("fadd" if vtype.is_float else "add") \
                    if expr.op == "++" else ("fsub" if vtype.is_float
                                             else "sub")
                new = self.builder.binop(op, old, one, vtype)
            self.builder.store(new, ptr)
            return (old if expr.postfix else new), vtype
        if expr.op == "*":
            ptr, elem = self._lower_lvalue(expr)
            return self.builder.load(ptr), elem
        if expr.op == "&":
            ptr, elem = self._lower_lvalue(expr.operand)
            ptype = ptr.type
            if isinstance(ptype, PointerType) and isinstance(
                    ptype.pointee, ArrayType):
                decayed = PointerType(elem, ptype.space)
                return self.builder.cast("ptrcast", ptr, decayed), decayed
            return ptr, ptr.type
        value, vtype = self._lower_expr(expr.operand)
        if expr.op == "-":
            zero = Constant(FLOAT, 0.0) if vtype.is_float else Constant(INT, 0)
            op = "fsub" if vtype.is_float else "sub"
            return self.builder.binop(op, zero, value, vtype), vtype
        if expr.op == "!":
            b = self._to_bool(value, vtype)
            return (self.builder.binop("xor", b, Constant(BOOL, 1), BOOL),
                    BOOL)
        if expr.op == "~":
            return (self.builder.binop("xor", value, Constant(INT, -1),
                                       vtype), vtype)
        raise LoweringError(f"line {expr.line}: unary {expr.op!r} unsupported")

    def _lower_assign(self, expr: ast.AssignExpr) -> Tuple[Value, Type]:
        ptr, target_type = self._lower_lvalue(expr.target)
        value, vtype = self._lower_expr(expr.value)
        if expr.op != "=":
            binop = expr.op[:-1]  # '+=' -> '+'
            old = self.builder.load(ptr)
            if isinstance(target_type, PointerType):
                if binop not in ("+", "-"):
                    raise LoweringError(
                        f"line {expr.line}: {expr.op} on pointer")
                index = value
                if binop == "-":
                    index = self.builder.binop("sub", Constant(INT, 0),
                                               value, vtype)
                value = self.builder.gep(old, index)
                vtype = target_type
            else:
                result_type = common_type(target_type, vtype)
                old_c = self._convert(old, target_type, result_type)
                val_c = self._convert(value, vtype, result_type)
                if result_type.is_float:
                    op = _FLOAT_OP_MAP[binop]
                else:
                    op = _INT_OP_MAP[binop]
                value = self.builder.binop(op, old_c, val_c, result_type)
                vtype = result_type
        value = self._convert(value, vtype, target_type)
        if expr.line:
            self.builder.set_span(expr.line, expr.col)
        self.builder.store(value, ptr)
        return value, target_type

    def _lower_cast(self, expr: ast.CastExpr) -> Tuple[Value, Type]:
        value, vtype = self._lower_expr(expr.operand)
        target: Type = parse_type_name(expr.type_name)
        for _ in range(expr.pointer_depth):
            space = (vtype.space if isinstance(vtype, PointerType)
                     else AddressSpace.GLOBAL)
            target = PointerType(target, space)
        return self._convert(value, vtype, target, explicit=True), target

    #: pipe/channel builtins (OpenCL 2.0 pipes + the Intel/Altera
    #: channel spellings); all lower to PipeRead/PipeWrite
    _PIPE_BUILTINS = frozenset({
        "read_pipe", "write_pipe",
        "read_channel_intel", "write_channel_intel",
        "read_channel_altera", "write_channel_altera",
    })

    def _lower_call(self, expr: ast.CallExpr) -> Tuple[Value, Type]:
        name = expr.callee
        if name.startswith("convert_"):
            target = parse_type_name(name[len("convert_"):].split("_")[0])
            value, vtype = self._lower_expr(expr.args[0])
            return self._convert(value, vtype, target, explicit=True), target
        if name in self._PIPE_BUILTINS:
            return self._lower_pipe_call(expr)
        sig = builtin_signature(name)
        if sig is not None:
            return self._lower_builtin_call(expr, sig)
        if name in self.helpers:
            return self._inline_helper(expr)
        raise LoweringError(f"line {expr.line}: unknown function {name!r}")

    def _lower_pipe_call(self, expr: ast.CallExpr) -> Tuple[Value, Type]:
        """Lower pipe/channel builtins to :class:`PipeRead`/:class:`PipeWrite`.

        Supported forms (all blocking):

        - ``x = read_channel_intel(ch);``
        - ``write_channel_intel(ch, x);``
        - ``read_pipe(ch, &x);``  — stores the element, yields 0
        - ``write_pipe(ch, &x);`` / ``write_pipe(ch, x);`` — yields 0
        """
        name = expr.callee
        if not expr.args:
            raise LoweringError(
                f"line {expr.line}: {name} needs a pipe argument")
        ch_arg = expr.args[0]
        if not isinstance(ch_arg, ast.Identifier) \
                or ch_arg.name not in self.channels:
            raise LoweringError(
                f"line {expr.line}: first argument of {name} must name a "
                f"pipe declared at file scope (declared: "
                f"{sorted(self.channels) or 'none'})")
        channel = self.channels[ch_arg.name]
        if name.startswith("read_channel"):
            if len(expr.args) != 1:
                raise LoweringError(
                    f"line {expr.line}: {name} takes exactly one argument")
            return self.builder.pipe_read(channel), channel.elem_type
        if name == "read_pipe":
            if len(expr.args) != 2:
                raise LoweringError(
                    f"line {expr.line}: read_pipe takes (pipe, &lvalue)")
            ptr, elem = self._lower_pipe_dest(expr.args[1])
            value = self.builder.pipe_read(channel)
            self.builder.store(
                self._convert(value, channel.elem_type, elem), ptr)
            return Constant(INT, 0), INT
        # write_pipe / write_channel_*
        if len(expr.args) != 2:
            raise LoweringError(
                f"line {expr.line}: {name} takes (pipe, value)")
        arg = expr.args[1]
        if name == "write_pipe" and isinstance(arg, ast.UnaryExpr) \
                and arg.op == "&":
            value, vtype = self._lower_expr(arg.operand)
        else:
            value, vtype = self._lower_expr(arg)
        self.builder.pipe_write(
            channel, self._convert(value, vtype, channel.elem_type))
        if name == "write_pipe":
            return Constant(INT, 0), INT
        return Constant(INT, 0), VOID

    def _lower_pipe_dest(self, arg: ast.Expr) -> Tuple[Value, Type]:
        """The ``&lvalue`` (or pointer) destination of ``read_pipe``."""
        if isinstance(arg, ast.UnaryExpr) and arg.op == "&":
            return self._lower_lvalue(arg.operand)
        ptr, ptype = self._lower_expr(arg)
        if not isinstance(ptype, PointerType):
            raise LoweringError(
                f"line {arg.line}: read_pipe destination must be a pointer")
        return ptr, ptype.pointee

    def _lower_builtin_call(self, expr: ast.CallExpr,
                            sig) -> Tuple[Value, Type]:
        if sig.category == "sync":
            for arg in expr.args:
                self._lower_expr(arg)  # evaluate the fence flags
            self.builder.barrier()
            return Constant(INT, 0), VOID
        args: List[Value] = []
        arg_types: List[Type] = []
        for arg in expr.args:
            v, t = self._lower_expr(arg)
            args.append(v)
            arg_types.append(t)
        # Float builtins promote integer args to float.
        if sig.category in ("fsimple", "fexpensive", "fdiv"):
            args = [self._convert(v, t, FLOAT) if not t.is_float
                    and not isinstance(t, PointerType) else v
                    for v, t in zip(args, arg_types)]
            arg_types = [FLOAT if not t.is_float
                         and not isinstance(t, PointerType) else t
                         for t in arg_types]
        if sig.category == "isimple" and len(arg_types) >= 2:
            # min/max on mixed types use the common type.
            ctype = arg_types[0]
            for t in arg_types[1:]:
                ctype = common_type(ctype, t)
            args = [self._convert(v, t, ctype)
                    for v, t in zip(args, arg_types)]
            arg_types = [ctype] * len(args)
        ret = sig.result_type(arg_types)
        result = self.builder.call(sig.name, args, ret)
        if result is None:
            return Constant(INT, 0), VOID
        return result, ret

    def _inline_helper(self, expr: ast.CallExpr) -> Tuple[Value, Type]:
        helper = self.helpers[expr.callee]
        if expr.callee in self.inline_stack:
            raise LoweringError(
                f"line {expr.line}: recursive call to {expr.callee!r} "
                f"cannot be synthesised to hardware")
        if len(self.inline_stack) >= self.MAX_INLINE_DEPTH:
            raise LoweringError(f"line {expr.line}: inline depth exceeded")
        if len(expr.args) != len(helper.params):
            raise LoweringError(
                f"line {expr.line}: {expr.callee!r} expects "
                f"{len(helper.params)} args, got {len(expr.args)}")

        ret_type: Type = parse_type_name(helper.return_type)
        for _ in range(helper.return_pointer_depth):
            ret_type = PointerType(ret_type, AddressSpace.GLOBAL)

        # Evaluate actuals in the caller's scope.
        actuals = [self._lower_expr(a) for a in expr.args]

        # Fresh scope containing only the formals.
        saved_scope = self.scope
        self.scope = _Scope()  # helpers cannot see kernel locals
        for param, (value, vtype) in zip(helper.params, actuals):
            ptype = self._param_type(param)
            slot_ptr = self.builder.alloca(ptype, AddressSpace.PRIVATE,
                                           name=f"{expr.callee}.{param.name}")
            self.builder.store(self._convert(value, vtype, ptype), slot_ptr)
            self.scope.define(param.name, VarSlot(
                ptr=slot_ptr, declared=ptype, space=AddressSpace.PRIVATE))

        result_slot = None
        if ret_type != VOID:
            result_slot = self.builder.alloca(
                ret_type, AddressSpace.PRIVATE, name=f"{expr.callee}.ret")
        join = self.builder.new_block(f"{expr.callee}.join")
        self.return_targets.append((join, result_slot, ret_type))
        self.inline_stack.append(expr.callee)
        self._lower_stmt(helper.body)
        self.inline_stack.pop()
        self.return_targets.pop()
        if not self.builder.block.is_terminated:
            self.builder.branch(join)
        self.builder.set_block(join)
        self.scope = saved_scope
        if result_slot is None:
            return Constant(INT, 0), VOID
        return self.builder.load(result_slot), ret_type

    # Expression dispatch aliases (Dispatcher resolves lower_<ASTClass>).
    lower_Identifier = _lower_identifier
    lower_BinaryExpr = _lower_binary
    lower_UnaryExpr = _lower_unary
    lower_AssignExpr = _lower_assign
    lower_TernaryExpr = _lower_ternary
    lower_CallExpr = _lower_call
    lower_CastExpr = _lower_cast

    # -- conversions -----------------------------------------------------

    def _to_bool(self, value: Value, vtype: Type) -> Value:
        if vtype == BOOL:
            return value
        if vtype.is_float:
            return self.builder.compare("ne", value, Constant(FLOAT, 0.0),
                                        BOOL)
        return self.builder.compare("ne", value, Constant(INT, 0), BOOL)

    def _convert(self, value: Value, from_type: Type, to_type: Type,
                 explicit: bool = False) -> Value:
        if from_type == to_type:
            return value
        if isinstance(from_type, PointerType) and isinstance(
                to_type, PointerType):
            return self.builder.cast("ptrcast", value, to_type)
        if isinstance(from_type, PointerType) or isinstance(
                to_type, PointerType):
            if explicit:
                return self.builder.cast("bitcast", value, to_type)
            raise LoweringError(
                f"implicit pointer/scalar conversion {from_type} -> {to_type}")
        if isinstance(value, Constant) and isinstance(to_type, ScalarType):
            # Fold constant conversions.
            if to_type.is_float:
                return Constant(to_type, float(value.value))
            return Constant(to_type, int(value.value))
        if from_type.is_float and to_type.is_float:
            kind = "fpext" if to_type.bits > from_type.bits else "fptrunc"
        elif from_type.is_float:
            kind = "fptoui" if not to_type.is_signed else "fptosi"
        elif to_type.is_float:
            kind = "uitofp" if not from_type.is_signed else "sitofp"
        elif to_type.bits > from_type.bits:
            kind = "sext" if from_type.is_signed else "zext"
        elif to_type.bits < from_type.bits:
            kind = "trunc"
        else:
            kind = "bitcast"
        return self.builder.cast(kind, value, to_type)


def lower_translation_unit(unit: ast.TranslationUnit,
                           name: str = "module") -> Module:
    """Lower a parsed translation unit to an IR module.

    All ``__kernel`` functions in the unit become functions of one
    module; file-scope pipe declarations become the module's typed
    channel table, shared by every kernel's pipe instructions.
    """
    module = Module(name)
    channels: Dict[str, Channel] = {}
    for pd in unit.pipes:
        channel = Channel(pd.name, parse_type_name(pd.elem_type), pd.depth)
        module.add_channel(channel)
        channels[pd.name] = channel
    helpers = {f.name: f for f in unit.functions if not f.is_kernel}
    for fdef in unit.functions:
        if not fdef.is_kernel:
            continue
        lowering = _FunctionLowering(fdef, helpers, channels)
        module.add(lowering.lower())
    if not module.kernels:
        raise LoweringError("translation unit contains no __kernel function")
    return module


def compile_opencl(source: str, name: str = "module",
                   verify: bool = True,
                   apply_pragmas: bool = True) -> Module:
    """Compile OpenCL C *source* to an IR :class:`~repro.ir.Module`.

    This is the frontend entry point: lex, parse, apply ``#pragma
    unroll`` transformations (disable with *apply_pragmas=False*),
    lower, and (by default) verify the result.
    """
    unit = parse(source)
    if apply_pragmas:
        from repro.frontend.unroll import apply_unroll_pragmas
        apply_unroll_pragmas(unit)
    module = lower_translation_unit(unit, name)
    if verify:
        verify_module(module)
    return module
