"""AST-level loop unrolling for ``#pragma unroll``.

SDAccel honours ``#pragma unroll [N]`` by replicating the loop body,
which changes everything downstream — more ops per basic block, more
local-memory accesses per initiation (ResMII pressure), more DSP cores.
Because the lowering is alloca-based (all loop state lives in memory),
replicating the *statements* is semantically exact:

- full unroll (``#pragma unroll`` on a loop with a static trip count N,
  or N <= the requested factor): the loop disappears; ``init`` runs
  once, then N copies of ``body; step``;
- partial unroll by F (F divides N): the loop remains with N/F
  iterations, each macro-iteration executing F copies of ``body; step``.

Loops containing ``break``/``continue``/``return`` are left untouched
(the replication would change semantics), as are loops whose trip count
is not statically known — matching what HLS tools do.
"""

from __future__ import annotations

import copy
from typing import List, Optional

from repro.frontend import ast_nodes as ast


def apply_unroll_pragmas(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Unroll every ``#pragma unroll`` loop in place; returns *unit*."""
    for fn in unit.functions:
        _rewrite_compound(fn.body)
    return unit


def _rewrite_compound(stmt: Optional[ast.Stmt]) -> None:
    if isinstance(stmt, ast.CompoundStmt):
        new_body: List[ast.Stmt] = []
        for child in stmt.body:
            _rewrite_compound(child)
            replacement = _maybe_unroll(child)
            if isinstance(replacement, list):
                new_body.extend(replacement)
            else:
                new_body.append(replacement)
        stmt.body = new_body
    elif isinstance(stmt, ast.IfStmt):
        _rewrite_compound(stmt.then)
        _rewrite_compound(stmt.els)
    elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
        _rewrite_compound(stmt.body)


def _maybe_unroll(stmt: ast.Stmt):
    if not isinstance(stmt, ast.ForStmt):
        return stmt
    factor = _unroll_factor(stmt.pragmas)
    if factor is None:
        return stmt
    trip = _static_trip_count(stmt)
    if trip is None or trip <= 0:
        return stmt           # dynamic bounds: leave to the hardware
    if _has_control_escape(stmt.body):
        return stmt
    if factor == 0 or factor >= trip:
        return _full_unroll(stmt, trip)
    if trip % factor != 0:
        return stmt           # HLS refuses non-dividing partial factors
    return _partial_unroll(stmt, factor)


def _unroll_factor(pragmas: List[str]) -> Optional[int]:
    for text in pragmas:
        words = text.split()
        if words and words[0] == "unroll":
            return int(words[1]) if len(words) > 1 else 0   # 0 == full
    return None


def _full_unroll(stmt: ast.ForStmt, trip: int) -> List[ast.Stmt]:
    out: List[ast.Stmt] = []
    if stmt.init is not None:
        out.append(stmt.init)
    for _ in range(trip):
        out.append(copy.deepcopy(stmt.body))
        if stmt.step is not None:
            out.append(ast.ExprStmt(line=stmt.line,
                                    expr=copy.deepcopy(stmt.step)))
    return out


def _partial_unroll(stmt: ast.ForStmt, factor: int) -> ast.ForStmt:
    macro_body: List[ast.Stmt] = []
    for i in range(factor):
        macro_body.append(copy.deepcopy(stmt.body))
        # the last step stays in the loop's step slot
        if i < factor - 1 and stmt.step is not None:
            macro_body.append(ast.ExprStmt(
                line=stmt.line, expr=copy.deepcopy(stmt.step)))
    trip = _static_trip_count(stmt)
    return ast.ForStmt(
        line=stmt.line, init=stmt.init, cond=stmt.cond, step=stmt.step,
        body=ast.CompoundStmt(line=stmt.line, body=macro_body),
        pragmas=[p for p in stmt.pragmas
                 if not p.split() or p.split()[0] != "unroll"],
        trip_count_hint=(trip // factor if trip is not None else None))


def _has_control_escape(stmt: ast.Stmt) -> bool:
    """True if the subtree contains break/continue/return that would
    escape the unrolled loop."""
    if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt,
                         ast.ReturnStmt)):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return any(_has_control_escape(s) for s in stmt.body)
    if isinstance(stmt, ast.IfStmt):
        return (_has_control_escape(stmt.then)
                or (stmt.els is not None
                    and _has_control_escape(stmt.els)))
    # break/continue inside a NESTED loop bind to that loop, not ours.
    if isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
        return _contains_return(stmt.body)
    return False


def _contains_return(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.ReturnStmt):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return any(_contains_return(s) for s in stmt.body)
    if isinstance(stmt, ast.IfStmt):
        return (_contains_return(stmt.then)
                or (stmt.els is not None
                    and _contains_return(stmt.els)))
    if isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
        return _contains_return(stmt.body)
    return False


def _static_trip_count(stmt: ast.ForStmt) -> Optional[int]:
    """Shared with the lowering's recogniser (canonical for-loops)."""
    from repro.frontend.lowering import _FunctionLowering
    return _FunctionLowering._static_trip_count(
        _FunctionLowering.__new__(_FunctionLowering), stmt)
