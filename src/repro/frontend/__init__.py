"""OpenCL C frontend.

The paper uses Clang 3.4 to lower OpenCL kernels to LLVM IR.  We replace it
with a self-contained frontend for a practical OpenCL C subset: a lexer,
a recursive-descent parser producing an AST, and a lowering pass emitting
the :mod:`repro.ir` representation (Clang -O0 style: locals are allocas).

The top-level entry point is :func:`compile_opencl`.
"""

from repro.frontend.lexer import Lexer, LexerError, Token
from repro.frontend.parser import ParseError, Parser, parse
from repro.frontend.lowering import LoweringError, compile_opencl, lower_translation_unit
from repro.frontend.builtins import BUILTIN_SIGNATURES, is_builtin

__all__ = [
    "BUILTIN_SIGNATURES",
    "Lexer",
    "LexerError",
    "LoweringError",
    "ParseError",
    "Parser",
    "Token",
    "compile_opencl",
    "is_builtin",
    "lower_translation_unit",
    "parse",
]
