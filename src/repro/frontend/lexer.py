"""Tokenizer for the OpenCL C subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "__kernel", "kernel", "__global", "global", "__local", "local",
    "__private", "private", "__constant", "constant", "const",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "void", "unsigned", "signed", "struct", "volatile", "restrict",
    "__attribute__", "sizeof", "static", "inline",
}

MULTI_CHAR_OPS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
]

SINGLE_CHAR_OPS = set("+-*/%<>=!&|^~?:;,.(){}[]#")


class LexerError(Exception):
    """Raised for characters or literals the lexer cannot handle."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"lex error at {line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass
class Token:
    """One lexical token."""

    kind: str       # 'id', 'keyword', 'int', 'float', 'op', 'pragma', 'eof'
    text: str
    line: int
    col: int
    value: Optional[object] = None  # numeric value for literals

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.col})"


class Lexer:
    """Converts OpenCL C source text into a token stream.

    Comments are skipped.  ``#pragma`` lines are emitted as single
    ``pragma`` tokens so the parser can attach them to loops; other
    preprocessor lines (``#define`` of plain object-like constants) are
    expanded textually.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.defines = {}

    def tokens(self) -> List[Token]:
        return list(self._scan())

    # -- internals -------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _scan(self) -> Iterator[Token]:
        while self.pos < len(self.source) or self._pending:
            if self._pending:
                yield self._pending.pop(0)
                continue
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexerError("unterminated comment", self.line, self.col)
                self._advance(2)
                continue
            if ch == "#":
                tok = self._scan_preprocessor()
                if tok is not None:
                    yield tok
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._scan_number()
                continue
            if ch.isalpha() or ch == "_":
                tok = self._scan_identifier()
                if tok is not None:
                    yield tok
                continue
            op = self._scan_operator()
            if op is not None:
                yield op
                continue
            raise LexerError(f"unexpected character {ch!r}", self.line, self.col)
        yield Token("eof", "", self.line, self.col)

    def _scan_preprocessor(self) -> Optional[Token]:
        line, col = self.line, self.col
        start = self.pos
        while self.pos < len(self.source) and self._peek() != "\n":
            # Support line continuations in pragmas/defines.
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            self._advance()
        text = self.source[start:self.pos].strip()
        if text.startswith("#pragma"):
            return Token("pragma", text[len("#pragma"):].strip(), line, col)
        if text.startswith("#define"):
            parts = text[len("#define"):].strip().split(None, 1)
            if len(parts) == 2 and "(" not in parts[0]:
                self.defines[parts[0]] = parts[1]
            return None
        # #include / #ifdef etc. are ignored: workloads are self-contained.
        return None

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            self._skip_int_suffix()
            return Token("int", text, line, col, value=int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE":
            probe = 1
            if self._peek(1) and self._peek(1) in "+-":
                probe = 2
            if self._peek(probe).isdigit():
                is_float = True
                self._advance(probe)
                while self._peek().isdigit():
                    self._advance()
        text = self.source[start:self.pos]
        if self._peek() and self._peek() in "fF":
            is_float = True
            self._advance()
        else:
            self._skip_int_suffix()
        if is_float:
            return Token("float", text, line, col, value=float(text))
        return Token("int", text, line, col, value=int(text))

    def _skip_int_suffix(self) -> None:
        while self._peek() and self._peek() in "uUlL":
            self._advance()

    def _scan_identifier(self) -> Optional[Token]:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in self.defines:
            # Textually substitute simple object-like macros by re-lexing.
            sub = Lexer(self.defines[text])
            sub.defines = dict(self.defines)
            sub.defines.pop(text, None)  # guard against self-reference
            for tok in sub.tokens():
                if tok.kind != "eof":
                    self._pending.append(
                        Token(tok.kind, tok.text, line, col, tok.value))
            return None
        kind = "keyword" if text in KEYWORDS else "id"
        return Token(kind, text, line, col)

    # Pending tokens from macro expansion.  Kept tiny: macros in our
    # workloads expand to single literals.
    @property
    def _pending(self) -> List[Token]:
        if not hasattr(self, "_pending_list"):
            self._pending_list: List[Token] = []
        return self._pending_list

    def _scan_operator(self) -> Optional[Token]:
        line, col = self.line, self.col
        for op in MULTI_CHAR_OPS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, col)
        ch = self._peek()
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            return Token("op", ch, line, col)
        return None
