"""Dominator and natural-loop analysis over the IR CFG."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function


def compute_dominators(fn: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator analysis; returns dom sets by name."""
    blocks = fn.reachable_blocks()
    names = [b.name for b in blocks]
    all_names = set(names)
    preds = fn.predecessors()
    dom: Dict[str, Set[str]] = {n: set(all_names) for n in names}
    entry = fn.entry.name
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block.name == entry:
                continue
            pred_doms = [dom[p.name] for p in preds[block]
                         if p.name in dom]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(block.name)
            if new != dom[block.name]:
                dom[block.name] = new
                changed = True
    return dom


@dataclass
class LoopInfo:
    """One natural loop."""

    header: str
    blocks: Set[str] = field(default_factory=set)
    parent: Optional["LoopInfo"] = None
    #: static trip count from the frontend, if recognisable
    static_trip_count: Optional[int] = None
    #: profiled average trip count (filled by kernel analysis)
    profiled_trip_count: Optional[float] = None
    unroll_factor: Optional[int] = None
    pipeline: bool = False

    @property
    def trip_count(self) -> float:
        """The trip count the model should use: static beats profiled."""
        if self.static_trip_count is not None:
            return float(self.static_trip_count)
        if self.profiled_trip_count is not None:
            return self.profiled_trip_count
        return 1.0

    @property
    def depth(self) -> int:
        d = 0
        p = self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def __repr__(self) -> str:
        return (f"<Loop {self.header}: {len(self.blocks)} blocks, "
                f"trip={self.trip_count}>")


@dataclass
class LoopNest:
    """All loops of a function plus a block -> loops index."""

    loops: List[LoopInfo] = field(default_factory=list)
    #: block name -> innermost containing loop (or None)
    innermost: Dict[str, Optional[LoopInfo]] = field(default_factory=dict)

    def containing(self, block_name: str) -> List[LoopInfo]:
        """All loops containing *block_name*, innermost first."""
        result = []
        loop = self.innermost.get(block_name)
        while loop is not None:
            result.append(loop)
            loop = loop.parent
        return result

    def weight(self, block_name: str) -> float:
        """Executions of *block_name* per kernel invocation of one
        work-item: product of enclosing loops' trip counts."""
        w = 1.0
        for loop in self.containing(block_name):
            w *= max(loop.trip_count, 0.0)
        return w

    def by_header(self, header: str) -> Optional[LoopInfo]:
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None


def find_loops(fn: Function) -> LoopNest:
    """Find natural loops via back edges and build the nesting forest.

    Loop metadata recorded by the frontend (static trip counts, unroll
    and pipeline pragmas) is attached by matching header block names.
    """
    dom = compute_dominators(fn)
    blocks = {b.name: b for b in fn.reachable_blocks()}

    # Back edge: tail -> header where header dominates tail.
    loops: Dict[str, LoopInfo] = {}
    for block in blocks.values():
        for succ in block.successors():
            if succ.name in dom.get(block.name, set()):
                loop = loops.setdefault(succ.name, LoopInfo(header=succ.name))
                loop.blocks |= _loop_body(blocks, fn, succ.name, block.name)

    # Nesting: loop A is inside B if A's header is in B's body and A != B.
    loop_list = sorted(loops.values(), key=lambda l: len(l.blocks))
    for inner in loop_list:
        for outer in loop_list:
            if outer is inner:
                continue
            if inner.header in outer.blocks and (
                    inner.parent is None
                    or len(outer.blocks) < len(inner.parent.blocks)):
                inner.parent = outer

    # Attach frontend metadata.
    for meta in getattr(fn, "loop_meta", []):
        loop = loops.get(meta.header)
        if loop is not None:
            loop.static_trip_count = meta.static_trip_count
            loop.unroll_factor = meta.unroll_factor
            loop.pipeline = meta.pipeline

    nest = LoopNest(loops=list(loop_list))
    for name in blocks:
        candidates = [l for l in loop_list if name in l.blocks]
        nest.innermost[name] = (
            min(candidates, key=lambda l: len(l.blocks))
            if candidates else None)
    return nest


def _loop_body(blocks: Dict[str, BasicBlock], fn: Function,
               header: str, tail: str) -> Set[str]:
    """Blocks of the natural loop (header, tail): header + all blocks that
    reach the tail without passing through the header."""
    body = {header, tail}
    preds = fn.predecessors()
    stack = [tail]
    while stack:
        name = stack.pop()
        block = blocks.get(name)
        if block is None:
            continue
        for pred in preds[block]:
            if pred.name not in body:
                body.add(pred.name)
                stack.append(pred.name)
    return body
