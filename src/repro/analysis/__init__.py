"""Kernel analysis (paper §3.2).

Turns a lowered kernel plus a launch configuration into the single frozen
:class:`KernelInfo` product that both the analytical model and the
baselines consume: the simplified CDFG, per-loop trip counts (static when
derivable, profiled otherwise), the per-work-item global memory trace,
local/global access counts, detected inter-work-item recurrences, and
resource usage.
"""

from repro.analysis.loops import LoopInfo, LoopNest, find_loops
from repro.analysis.dfg import (
    DataFlowGraph,
    DFGNode,
    build_block_dfg,
    build_function_dfg,
    pointer_root,
)
from repro.analysis.memtrace import (
    AccessSiteStats,
    Recurrence,
    TraceAnalysis,
    analyze_traces,
)
from repro.analysis.kernel_info import (KernelInfo, PipeTraffic,
                                        analyze_kernel)
from repro.analysis.streams import GroupStreamExtrapolator

__all__ = [
    "AccessSiteStats",
    "GroupStreamExtrapolator",
    "DFGNode",
    "DataFlowGraph",
    "KernelInfo",
    "PipeTraffic",
    "LoopInfo",
    "LoopNest",
    "Recurrence",
    "TraceAnalysis",
    "analyze_kernel",
    "analyze_traces",
    "build_block_dfg",
    "build_function_dfg",
    "find_loops",
    "pointer_root",
]
