"""Memory-trace analysis.

Post-processes the per-work-item traces recorded by the profiler into
what the performance models consume:

- per-site statistics (stride across work-items, coalescibility, counts);
- inter-work-item recurrences: a load whose address was written by an
  earlier work-item (paper §3.3.1, the RecMII source — Figure 3's example
  is exactly such a dependence with distance 1);
- aggregate per-work-item access counts for local and global memory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.interp.executor import MemAccess

#: maximum inter-work-item dependence distance we search for
MAX_RECURRENCE_DISTANCE = 8


@dataclass
class AccessSiteStats:
    """Aggregate behaviour of one static load/store site."""

    site: int
    kind: str                     # 'read' | 'write'
    space: str                    # 'global' | 'local'
    buffer: str
    nbytes: int
    #: average dynamic executions of this site per work-item
    per_wi_count: float = 0.0
    #: byte stride between consecutive work-items (None = irregular)
    wi_stride: Optional[int] = None
    #: stride between consecutive dynamic accesses within one work-item
    inner_stride: Optional[int] = None

    @property
    def coalescible(self) -> bool:
        """Unit-stride across work-items (or within the work-item):
        SDAccel merges such consecutive accesses into wide bursts."""
        return (self.wi_stride == self.nbytes
                or self.inner_stride == self.nbytes)


@dataclass
class Recurrence:
    """An inter-work-item dependence through memory."""

    load_site: int
    store_site: int
    space: str
    buffer: str
    distance: int      # in work-items


@dataclass
class TraceAnalysis:
    """Everything derived from the profiled traces."""

    sites: Dict[int, AccessSiteStats] = field(default_factory=dict)
    recurrences: List[Recurrence] = field(default_factory=list)
    global_reads_per_wi: float = 0.0
    global_writes_per_wi: float = 0.0
    local_reads_per_wi: float = 0.0
    local_writes_per_wi: float = 0.0
    #: per-work-item global traces (kept for the DRAM pattern model)
    global_traces: List[List[MemAccess]] = field(default_factory=list)

    def site_stats(self, site: int) -> Optional[AccessSiteStats]:
        return self.sites.get(site)


def analyze_traces(traces: Sequence[List[MemAccess]]) -> TraceAnalysis:
    """Analyse per-work-item traces (one inner list per work-item,
    work-items in work-group-linear order)."""
    result = TraceAnalysis()
    if not traces:
        return result
    n_wi = len(traces)

    # ---- per-site address matrix: site -> [per-WI address lists] -------
    site_addrs: Dict[int, List[List[int]]] = defaultdict(
        lambda: [[] for _ in range(n_wi)])
    site_proto: Dict[int, MemAccess] = {}
    g_reads = g_writes = l_reads = l_writes = 0
    for wi, trace in enumerate(traces):
        for acc in trace:
            site_addrs[acc.site][wi].append(acc.addr)
            site_proto.setdefault(acc.site, acc)
            if acc.space == "global":
                if acc.kind == "read":
                    g_reads += 1
                else:
                    g_writes += 1
            else:
                if acc.kind == "read":
                    l_reads += 1
                else:
                    l_writes += 1

    result.global_reads_per_wi = g_reads / n_wi
    result.global_writes_per_wi = g_writes / n_wi
    result.local_reads_per_wi = l_reads / n_wi
    result.local_writes_per_wi = l_writes / n_wi
    result.global_traces = [
        [a for a in trace if a.space == "global"] for trace in traces
    ]

    # ---- per-site stats -------------------------------------------------
    for site, per_wi in site_addrs.items():
        proto = site_proto[site]
        counts = [len(a) for a in per_wi]
        stats = AccessSiteStats(
            site=site, kind=proto.kind, space=proto.space,
            buffer=proto.buffer, nbytes=proto.nbytes,
            per_wi_count=sum(counts) / n_wi,
            wi_stride=_wi_stride(per_wi),
            inner_stride=_inner_stride(per_wi),
        )
        result.sites[site] = stats

    # ---- recurrences -----------------------------------------------------
    result.recurrences = _find_recurrences(site_addrs, site_proto, n_wi)
    return result


def _wi_stride(per_wi: List[List[int]]) -> Optional[int]:
    """Byte stride of occurrence j between work-item i and i+1, if it is
    the same constant for every (i, j) sampled."""
    strides = set()
    for i in range(len(per_wi) - 1):
        a, b = per_wi[i], per_wi[i + 1]
        if not a or not b:
            continue
        for j in range(min(len(a), len(b))):
            strides.add(b[j] - a[j])
            if len(strides) > 1:
                return None
    if len(strides) == 1:
        return strides.pop()
    return None


def _inner_stride(per_wi: List[List[int]]) -> Optional[int]:
    """Stride between consecutive dynamic accesses within a work-item."""
    strides = set()
    for addrs in per_wi:
        for j in range(len(addrs) - 1):
            strides.add(addrs[j + 1] - addrs[j])
            if len(strides) > 1:
                return None
    if len(strides) == 1:
        return strides.pop()
    return None


def _find_recurrences(site_addrs, site_proto,
                      n_wi: int) -> List[Recurrence]:
    """Find (load site, store site) pairs where work-item i reads what
    work-item i-d wrote, with a consistent distance d.

    The per-work-item address sets are materialised once per site, so
    the O(sites² × distance × work-items) pair search only intersects
    prebuilt sets instead of rebuilding them in its innermost loop.
    """
    recurrences: List[Recurrence] = []
    loads = {s: a for s, a in site_addrs.items()
             if site_proto[s].kind == "read"}
    stores = {s: a for s, a in site_addrs.items()
              if site_proto[s].kind == "write"}
    load_sets = {s: [frozenset(a) for a in per_wi]
                 for s, per_wi in loads.items()}
    store_sets = {s: [frozenset(a) for a in per_wi]
                  for s, per_wi in stores.items()}
    for ls, l_sets in load_sets.items():
        l_proto = site_proto[ls]
        for ss, s_sets in store_sets.items():
            s_proto = site_proto[ss]
            if s_proto.buffer != l_proto.buffer \
                    or s_proto.space != l_proto.space:
                continue
            d = _recurrence_distance(l_sets, s_sets, n_wi)
            if d is not None:
                recurrences.append(Recurrence(
                    load_site=ls, store_site=ss, space=l_proto.space,
                    buffer=l_proto.buffer, distance=d))
    return recurrences


def _recurrence_distance(l_sets: List[frozenset],
                         s_sets: List[frozenset],
                         n_wi: int) -> Optional[int]:
    """Smallest consistent read-after-write distance between two sites'
    per-work-item address sets (pre-hoisted by the caller — the sets are
    shared across every candidate distance rather than rebuilt per
    (distance, work-item) step)."""
    for d in range(1, min(MAX_RECURRENCE_DISTANCE, n_wi - 1) + 1):
        matched = 0
        failed = False
        for i in range(d, n_wi):
            reads = l_sets[i]
            writes = s_sets[i - d]
            if not reads or not writes:
                continue
            if not reads.isdisjoint(writes):
                matched += 1
            else:
                failed = True
                break
        if not failed and matched >= max(2, (n_wi - d) // 2):
            return d
    return None
