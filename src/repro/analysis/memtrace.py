"""Memory-trace analysis.

Post-processes the per-work-item traces recorded by the profiler into
what the performance models consume:

- per-site statistics (stride across work-items, coalescibility, counts);
- inter-work-item recurrences: a load whose address was written by an
  earlier work-item (paper §3.3.1, the RecMII source — Figure 3's example
  is exactly such a dependence with distance 1);
- aggregate per-work-item access counts for local and global memory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.interp.executor import MemAccess

#: maximum inter-work-item dependence distance we search for
MAX_RECURRENCE_DISTANCE = 8

_EMPTY_SET: frozenset = frozenset()


@dataclass
class AccessSiteStats:
    """Aggregate behaviour of one static load/store site."""

    site: int
    kind: str                     # 'read' | 'write'
    space: str                    # 'global' | 'local'
    buffer: str
    nbytes: int
    #: average dynamic executions of this site per work-item
    per_wi_count: float = 0.0
    #: byte stride between consecutive work-items (None = irregular)
    wi_stride: Optional[int] = None
    #: stride between consecutive dynamic accesses within one work-item
    inner_stride: Optional[int] = None

    @property
    def coalescible(self) -> bool:
        """Unit-stride across work-items (or within the work-item):
        SDAccel merges such consecutive accesses into wide bursts."""
        return (self.wi_stride == self.nbytes
                or self.inner_stride == self.nbytes)


@dataclass
class Recurrence:
    """An inter-work-item dependence through memory."""

    load_site: int
    store_site: int
    space: str
    buffer: str
    distance: int      # in work-items


@dataclass
class TraceAnalysis:
    """Everything derived from the profiled traces."""

    sites: Dict[int, AccessSiteStats] = field(default_factory=dict)
    recurrences: List[Recurrence] = field(default_factory=list)
    global_reads_per_wi: float = 0.0
    global_writes_per_wi: float = 0.0
    local_reads_per_wi: float = 0.0
    local_writes_per_wi: float = 0.0
    #: per-work-item global traces (kept for the DRAM pattern model)
    global_traces: List[List[MemAccess]] = field(default_factory=list)

    def site_stats(self, site: int) -> Optional[AccessSiteStats]:
        return self.sites.get(site)


def analyze_traces(traces: Sequence[List[MemAccess]]) -> TraceAnalysis:
    """Analyse per-work-item traces (one inner list per work-item,
    work-items in work-group-linear order).

    Accepts either plain per-work-item ``List[MemAccess]`` sequences or
    :class:`~repro.analysis.packed.PackedTraces`; the packed form is
    analysed column-wise (no per-access objects) with semantics
    identical to the object path.
    """
    from repro.analysis.packed import PackedTraces
    if isinstance(traces, PackedTraces):
        return _analyze_packed(traces)
    result = TraceAnalysis()
    if not traces:
        return result
    n_wi = len(traces)

    # ---- per-site address matrix: site -> [per-WI address lists] -------
    site_addrs: Dict[int, List[List[int]]] = defaultdict(
        lambda: [[] for _ in range(n_wi)])
    site_proto: Dict[int, MemAccess] = {}
    g_reads = g_writes = l_reads = l_writes = 0
    for wi, trace in enumerate(traces):
        for acc in trace:
            site_addrs[acc.site][wi].append(acc.addr)
            site_proto.setdefault(acc.site, acc)
            if acc.space == "global":
                if acc.kind == "read":
                    g_reads += 1
                else:
                    g_writes += 1
            else:
                if acc.kind == "read":
                    l_reads += 1
                else:
                    l_writes += 1

    result.global_reads_per_wi = g_reads / n_wi
    result.global_writes_per_wi = g_writes / n_wi
    result.local_reads_per_wi = l_reads / n_wi
    result.local_writes_per_wi = l_writes / n_wi
    result.global_traces = [
        [a for a in trace if a.space == "global"] for trace in traces
    ]

    # ---- per-site stats -------------------------------------------------
    for site, per_wi in site_addrs.items():
        proto = site_proto[site]
        counts = [len(a) for a in per_wi]
        stats = AccessSiteStats(
            site=site, kind=proto.kind, space=proto.space,
            buffer=proto.buffer, nbytes=proto.nbytes,
            per_wi_count=sum(counts) / n_wi,
            wi_stride=_wi_stride(per_wi),
            inner_stride=_inner_stride(per_wi),
        )
        result.sites[site] = stats

    # ---- recurrences -----------------------------------------------------
    result.recurrences = _find_recurrences(site_addrs, site_proto, n_wi)
    return result


def _wi_stride(per_wi: List[List[int]]) -> Optional[int]:
    """Byte stride of occurrence j between work-item i and i+1, if it is
    the same constant for every (i, j) sampled."""
    strides = set()
    for i in range(len(per_wi) - 1):
        a, b = per_wi[i], per_wi[i + 1]
        if not a or not b:
            continue
        for j in range(min(len(a), len(b))):
            strides.add(b[j] - a[j])
            if len(strides) > 1:
                return None
    if len(strides) == 1:
        return strides.pop()
    return None


def _inner_stride(per_wi: List[List[int]]) -> Optional[int]:
    """Stride between consecutive dynamic accesses within a work-item."""
    strides = set()
    for addrs in per_wi:
        for j in range(len(addrs) - 1):
            strides.add(addrs[j + 1] - addrs[j])
            if len(strides) > 1:
                return None
    if len(strides) == 1:
        return strides.pop()
    return None


def _find_recurrences(site_addrs, site_proto,
                      n_wi: int) -> List[Recurrence]:
    """Find (load site, store site) pairs where work-item i reads what
    work-item i-d wrote, with a consistent distance d.

    The per-work-item address sets are materialised once per site, so
    the O(sites² × distance × work-items) pair search only intersects
    prebuilt sets instead of rebuilding them in its innermost loop.
    """
    recurrences: List[Recurrence] = []
    loads = {s: a for s, a in site_addrs.items()
             if site_proto[s].kind == "read"}
    stores = {s: a for s, a in site_addrs.items()
              if site_proto[s].kind == "write"}
    load_sets = {s: [frozenset(a) for a in per_wi]
                 for s, per_wi in loads.items()}
    store_sets = {s: [frozenset(a) for a in per_wi]
                  for s, per_wi in stores.items()}
    for ls, l_sets in load_sets.items():
        l_proto = site_proto[ls]
        for ss, s_sets in store_sets.items():
            s_proto = site_proto[ss]
            if s_proto.buffer != l_proto.buffer \
                    or s_proto.space != l_proto.space:
                continue
            d = _recurrence_distance(l_sets, s_sets, n_wi)
            if d is not None:
                recurrences.append(Recurrence(
                    load_site=ls, store_site=ss, space=l_proto.space,
                    buffer=l_proto.buffer, distance=d))
    return recurrences


def _analyze_packed(packed) -> TraceAnalysis:
    """Columnar analysis of :class:`PackedTraces` — identical results to
    the object path, computed on the flat arrays."""
    result = TraceAnalysis()
    n_wi = len(packed)
    if n_wi == 0:
        return result
    wg = packed.wg_size

    # ---- concatenate groups (remapping per-group buffer indices onto a
    # shared name table) into global row order: work-item-major, each
    # work-item's rows in program order.
    names: List[str] = []
    name_ix: Dict[str, int] = {}
    sites, kinds, spaces, bufs, nbytes_c, addrs, wis = \
        [], [], [], [], [], [], []
    for g, grp in enumerate(packed.groups):
        remap = np.empty(max(len(grp.names), 1), np.int16)
        for i, nm in enumerate(grp.names):
            j = name_ix.get(nm)
            if j is None:
                j = name_ix[nm] = len(names)
                names.append(nm)
            remap[i] = j
        sites.append(grp.site)
        kinds.append(grp.kind)
        spaces.append(grp.space)
        bufs.append(remap[grp.buf] if len(grp) else grp.buf)
        nbytes_c.append(grp.nbytes)
        addrs.append(grp.addr)
        wis.append(grp.lane.astype(np.int64) + g * wg)
    site = np.concatenate(sites)
    kind = np.concatenate(kinds)
    space = np.concatenate(spaces)
    buf = np.concatenate(bufs)
    nbytes = np.concatenate(nbytes_c)
    addr = np.concatenate(addrs)
    wi = np.concatenate(wis)
    n_rows = site.shape[0]

    # ---- aggregate counts ----------------------------------------------
    code = space.astype(np.intp) * 2 + kind
    totals = np.bincount(code, minlength=4)
    result.global_reads_per_wi = int(totals[0]) / n_wi
    result.global_writes_per_wi = int(totals[1]) / n_wi
    result.local_reads_per_wi = int(totals[2]) / n_wi
    result.local_writes_per_wi = int(totals[3]) / n_wi
    result.global_traces = packed.global_view()
    if n_rows == 0:
        return result

    # ---- per-site row segments (site order = first appearance) ---------
    usites, first = np.unique(site, return_index=True)
    ordered = usites[np.argsort(first, kind="stable")]
    order = np.argsort(site, kind="stable")
    s_sorted = site[order]
    wi_s = wi[order]
    addr_s = addr[order]
    lo_of = {int(s): int(np.searchsorted(s_sorted, s, "left"))
             for s in usites}
    hi_of = {int(s): int(np.searchsorted(s_sorted, s, "right"))
             for s in usites}

    site_runs: Dict[int, tuple] = {}
    for s in ordered.tolist():
        lo, hi = lo_of[s], hi_of[s]
        seg_wi = wi_s[lo:hi]
        seg_addr = addr_s[lo:hi]
        m = hi - lo
        # Rows are already work-item-major within the segment (the
        # stable sort preserves the global row order), so every
        # work-item's accesses form one contiguous run.
        run_starts = np.flatnonzero(
            np.concatenate(([True], seg_wi[1:] != seg_wi[:-1])))
        run_ends = np.concatenate((run_starts[1:], [m]))
        run_len = run_ends - run_starts
        occ = np.arange(m) - np.repeat(run_starts, run_len)
        # Dense (present-work-item x occurrence) matrices: rows are the
        # distinct work-items in ascending order, so numerically
        # adjacent work-items sit in adjacent rows exactly when their
        # ids differ by one.
        uw = seg_wi[run_starts]
        nr = run_starts.shape[0]
        max_occ = int(run_len.max())
        rix = np.repeat(np.arange(nr), run_len)
        M = np.zeros((nr, max_occ), np.int64)
        V = np.zeros((nr, max_occ), bool)
        M[rix, occ] = seg_addr
        V[rix, occ] = True

        both = V[1:] & V[:-1] & ((uw[1:] - uw[:-1]) == 1)[:, None]
        d = (M[1:] - M[:-1])[both]
        wi_stride = int(d[0]) if d.size and (d == d[0]).all() else None
        inner = V[:, 1:] & V[:, :-1]
        d = (M[:, 1:] - M[:, :-1])[inner]
        inner_stride = int(d[0]) if d.size and (d == d[0]).all() \
            else None

        # Prototype row = the site's first appearance in global row
        # order (the stable sort keeps it first in the segment).
        i0 = int(order[lo])
        result.sites[s] = AccessSiteStats(
            site=s,
            kind=_KIND_NAME[int(kind[i0])],
            space=_SPACE_NAME[int(space[i0])],
            buffer=names[int(buf[i0])],
            nbytes=int(nbytes[i0]),
            per_wi_count=m / n_wi,
            wi_stride=wi_stride,
            inner_stride=inner_stride,
        )
        site_runs[s] = (seg_wi, seg_addr, run_starts, run_ends)

    # ---- recurrences ----------------------------------------------------
    # Per-work-item address sets are only needed for (load, store) pairs
    # on the same buffer+space; build them lazily so kernels without
    # such pairs skip the frozenset construction entirely.
    stats = result.sites
    site_sets: Dict[int, List[frozenset]] = {}

    def sets_of(s: int) -> List[frozenset]:
        sets = site_sets.get(s)
        if sets is None:
            seg_wi, seg_addr, run_starts, run_ends = site_runs[s]
            sets = [_EMPTY_SET] * n_wi
            for a, b in zip(run_starts.tolist(), run_ends.tolist()):
                sets[int(seg_wi[a])] = frozenset(seg_addr[a:b].tolist())
            site_sets[s] = sets
        return sets

    loads = [s for s in ordered.tolist() if stats[s].kind == "read"]
    stores = [s for s in ordered.tolist() if stats[s].kind == "write"]
    for ls in loads:
        lp = stats[ls]
        for ss in stores:
            sp = stats[ss]
            if sp.buffer != lp.buffer or sp.space != lp.space:
                continue
            dist = _recurrence_distance(sets_of(ls), sets_of(ss), n_wi)
            if dist is not None:
                result.recurrences.append(Recurrence(
                    load_site=ls, store_site=ss, space=lp.space,
                    buffer=lp.buffer, distance=dist))
    return result


_KIND_NAME = ("read", "write")
_SPACE_NAME = ("global", "local")


def _recurrence_distance(l_sets: List[frozenset],
                         s_sets: List[frozenset],
                         n_wi: int) -> Optional[int]:
    """Smallest consistent read-after-write distance between two sites'
    per-work-item address sets (pre-hoisted by the caller — the sets are
    shared across every candidate distance rather than rebuilt per
    (distance, work-item) step)."""
    for d in range(1, min(MAX_RECURRENCE_DISTANCE, n_wi - 1) + 1):
        matched = 0
        failed = False
        for i in range(d, n_wi):
            reads = l_sets[i]
            writes = s_sets[i - d]
            if not reads or not writes:
                continue
            if not reads.isdisjoint(writes):
                matched += 1
            else:
                failed = True
                break
        if not failed and matched >= max(2, (n_wi - d) // 2):
            return d
    return None
