"""Per-work-group access-stream reconstruction (paper §3.2: the
profiled trace "is then transformed into realistic global memory
accesses").

Only a few work-groups are profiled; the rest of the NDRange's streams
are extrapolated period-aware: the profiled groups are scanned for a
pair (i, i+d) with identical access shapes; group g then reuses the
profiled group congruent to it (mod d), shifted by the pair's
per-period address delta.  Kernels whose active work-items vary with
the row (guarded stencils) get d > 1; kernels with data-dependent
sparsity (frontier algorithms) fall back to replaying the
median-length profiled group.

Both the analytical memory model and the System Run simulator consume
this SAME reconstruction, so their only disagreement is *timing* —
averaged Table 1 prices versus live DRAM state — which is exactly the
error source the paper names.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.packed import PackedStream, PackedTraces
from repro.dram.coalesce import interleave_work_items
from repro.interp.executor import MemAccess


class GroupStreamExtrapolator:
    """Reconstructs the global-access stream of any work-group."""

    def __init__(self, global_traces, wg_size: int,
                 pipelined: bool) -> None:
        self.wg_size = max(wg_size, 1)
        self.pipelined = pipelined
        self._groups: List[List[MemAccess]] = []
        if isinstance(global_traces, PackedTraces) \
                and global_traces.wg_size == self.wg_size:
            # Columnar interleave: pipelined order is occurrence-major
            # (sort by (occ, lane)); non-pipelined is the canonical
            # lane-major row order itself.
            for grp in global_traces.groups:
                order = (np.lexsort((grp.lane, grp.occ))
                         if pipelined else None)
                self._groups.append(PackedStream.from_group(grp, order))
        else:
            for g in range(len(global_traces) // self.wg_size):
                wi_traces = global_traces[g * self.wg_size:
                                          (g + 1) * self.wg_size]
                if not wi_traces:
                    break
                self._groups.append(
                    interleave_work_items(wi_traces, pipelined=pipelined))

        n = len(self._groups)
        self.period: Optional[int] = None
        self.base_index = 0
        self._scalar_delta: Optional[int] = None
        self._elem_deltas = None
        for d in range(1, max(n, 1)):
            for i in range(n - d - 1, -1, -1):
                a, b = self._groups[i], self._groups[i + d]
                if len(a) and len(a) == len(b):
                    self.period, self.base_index = d, i
                    if isinstance(a, PackedStream):
                        diffs = b.addr - a.addr
                        u = np.unique(diffs)
                        if u.shape[0] == 1:
                            self._scalar_delta = int(u[0])
                        else:
                            self._elem_deltas = diffs
                    else:
                        diffs = [y.addr - x.addr for x, y in zip(a, b)]
                        if len(set(diffs)) == 1:
                            self._scalar_delta = diffs[0]
                        else:
                            self._elem_deltas = diffs
                    break
            if self.period is not None:
                break

        # Median-length stand-in: robust both to empty boundary groups
        # (guarded stencils) and to data-dependent sparsity where only
        # a few groups are active (bfs-style frontiers).
        by_len = sorted(range(n), key=lambda k: len(self._groups[k]))
        self.fallback = by_len[n // 2] if n else 0

    @property
    def profiled_groups(self) -> int:
        return len(self._groups)

    def stream(self, group: int) -> List[MemAccess]:
        """The (uncoalesced) access stream of *group*."""
        groups = self._groups
        n = len(groups)
        if group < n:
            return groups[group]             # profiled exactly
        if not groups:
            return []
        if self.period is None:
            return groups[self.fallback]     # replay the stand-in
        p_idx = self.base_index + ((group - self.base_index)
                                   % self.period)
        if p_idx >= n:
            p_idx = self.fallback
        steps = (group - p_idx) // self.period
        stand_in = groups[p_idx]
        if self._scalar_delta is not None:
            return self._shift(stand_in, self._scalar_delta * steps)
        if self._elem_deltas is not None \
                and len(stand_in) == len(self._elem_deltas):
            if isinstance(stand_in, PackedStream):
                return stand_in.with_addr(
                    stand_in.addr + self._elem_deltas * steps)
            return [MemAccess(a.kind,
                              a.addr + self._elem_deltas[j] * steps,
                              a.nbytes, a.buffer, a.space, a.site)
                    for j, a in enumerate(stand_in)]
        return stand_in                      # periodic replay

    @staticmethod
    def _shift(stream, delta: int):
        if delta == 0:
            return stream
        if isinstance(stream, PackedStream):
            return stream.with_addr(stream.addr + delta)
        return [MemAccess(a.kind, a.addr + delta, a.nbytes, a.buffer,
                          a.space, a.site)
                for a in stream]
