"""Kernel analysis orchestration (paper §3.2, Figure 2's "Kernel
Analysis" box).

:func:`analyze_kernel` runs the whole front half of FlexCL:

1. profile a few work-groups with the interpreter (dynamic trip counts
   and memory traces — "the profiling overhead is very small ... because
   only a few work-groups are profiled in practice");
2. discover loops and attach trip counts (static counts win);
3. build the simplified CDFG artefacts: per-block DFGs and the
   whole-work-item DFG with profiled recurrence edges;
4. aggregate resource usage (local ports pressure, DSP cost, local
   memory bytes).

The result, :class:`KernelInfo`, is design-independent for a fixed
work-group size: the model and baselines schedule it per design point.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.dfg import (
    DataFlowGraph,
    build_block_dfg,
    build_function_dfg,
)
from repro.analysis.loops import LoopNest, find_loops
from repro.analysis.memtrace import TraceAnalysis, analyze_traces
from repro.analysis.packed import pack_traces
from repro.interp.executor import Buffer, KernelExecutor, LaunchResult, NDRange
from repro.ir.function import Function
from repro.ir.instructions import Alloca, PipeRead, PipeWrite
from repro.ir.types import AddressSpace
from repro.latency.optable import OpLatencyTable

#: work-groups profiled by default (paper: "only a few work-groups").
#: Four groups let the simulator's address extrapolation find interior
#: (non-boundary) inter-group deltas even when the active-work-item
#: shape varies with a short row period (guarded stencils).
DEFAULT_PROFILE_GROUPS = 4

#: ``static_trace`` modes accepted by :func:`analyze_kernel`.
STATIC_TRACE_MODES = ("auto", "always", "never")

#: ``interp`` modes accepted by :func:`analyze_kernel` — the dynamic
#: (non-synthesized) trace producer.  ``"auto"`` vectorizes non-pipe
#: kernels and falls back to the scalar interpreter on
#: :class:`~repro.interp.vexec.VectorizationError`; ``"vectorized"``
#: demands lane vectorization; ``"scalar"`` always interprets per
#: work-item.
INTERP_MODES = ("auto", "vectorized", "scalar")


class StaticTraceUnavailable(RuntimeError):
    """Raised by ``static_trace='always'`` when the kernel's access
    summary is IRREGULAR (or synthesis fails at runtime)."""


class StaticTraceMismatch(AssertionError):
    """Raised by ``verify=True`` when a synthesized trace disagrees
    with the interpreter — always a bug in the summary engine or the
    synthesizer, never expected in normal operation."""


# Per-function memoization for work the explorer repeats across
# work-group sizes.  Weak keys: entries die with the Function object,
# and nothing here ends up inside pickled KernelInfos beyond the shared
# (read-only) DFG dicts themselves.
_BLOCK_DFG_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SYNTH_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _table_key(table: OpLatencyTable) -> tuple:
    # ``OpLatencyTable.for_device`` builds a fresh object per call, so
    # identity is useless as a memo key; hash the contents instead.
    return (table.scale, tuple(sorted(
        (cls.name, lat) for cls, lat in table.latencies.items())))


def _block_dfgs_for(fn: Function, table: OpLatencyTable
                    ) -> Dict[str, DataFlowGraph]:
    """Per-block DFGs depend only on the IR and the latency table —
    not on the NDRange — so one build serves every work-group size.
    Consumers (the list scheduler, baselines) never mutate them."""
    per_fn = _BLOCK_DFG_MEMO.setdefault(fn, {})
    key = _table_key(table)
    dfgs = per_fn.get(key)
    if dfgs is None:
        dfgs = {block.name: build_block_dfg(block, table)
                for block in fn.reachable_blocks()}
        per_fn[key] = dfgs
    return dfgs


def _synthesizer_for(fn: Function, buffers: Dict[str, Buffer],
                     scalars: Dict[str, object]):
    """A compiled :class:`TraceSynthesizer` depends on the kernel and
    the binding signature (buffer sizes and order, scalar values) but
    never on buffer contents or the NDRange: reuse one compilation for
    every work-group size the explorer probes.  ``GlobalMemory``
    allocation is deterministic in the sizes and bind order, so the
    memoized instance sees the same base addresses a fresh one would."""
    from repro.interp.synth import TraceSynthesizer
    try:
        sig = (tuple((name, b.nbytes, b.elem_size)
                     for name, b in buffers.items()),
               tuple(sorted(scalars.items())))
        hash(sig)
    except TypeError:
        return TraceSynthesizer(fn, buffers, scalars)
    per_fn = _SYNTH_MEMO.setdefault(fn, {})
    synthesizer = per_fn.get(sig)
    if synthesizer is None:
        synthesizer = TraceSynthesizer(fn, buffers, scalars)
        per_fn[sig] = synthesizer
    return synthesizer


@dataclass(frozen=True)
class PipeTraffic:
    """Profiled FIFO traffic of one kernel on one channel.

    Rates are tokens per work-item, computed from the profiled block
    execution frequencies and the static pipe sites — exact for the
    profiled launch, whatever control flow surrounds the sites.
    """

    channel: str
    elem_bytes: int
    reads_per_wi: float = 0.0
    writes_per_wi: float = 0.0


@dataclass
class KernelInfo:
    """Frozen product of kernel analysis for one (kernel, wg-size,
    device) combination."""

    name: str
    fn: Function
    ndrange: NDRange
    device: object
    table: OpLatencyTable
    #: content hash of the analysis inputs (kernel IR, launch signature,
    #: buffer contents, device, profiling depth) — the persistent cache
    #: key this analysis was (or would be) stored under, and the kernel
    #: identity the sub-model caches spill their rows against
    fingerprint: Optional[str] = None
    loop_nest: LoopNest = None
    traces: TraceAnalysis = None
    function_dfg: DataFlowGraph = None
    block_dfgs: Dict[str, DataFlowGraph] = field(default_factory=dict)
    #: per-work-item execution frequency of each block (profiled)
    block_weights: Dict[str, float] = field(default_factory=dict)
    #: weighted DSP cost of one work-item's operations
    dsp_cost_per_wi: float = 0.0
    #: DSP slices of one PE instance (each static op is a core)
    dsp_static_cost: float = 0.0
    #: bytes of __local memory declared by the kernel (per CU)
    local_mem_bytes: int = 0
    barriers_per_wi: int = 0
    #: True when the traces came from the static synthesizer rather
    #: than the profiling interpreter
    static_trace_used: bool = False
    #: which engine produced the traces: ``"synth"`` (static
    #: synthesizer), ``"vectorized"`` (lane-vectorized interpreter),
    #: or ``"scalar"`` (per-work-item interpreter)
    trace_source: str = "scalar"
    #: access-summary verdict ("static" / "irregular"), when computed
    summary_verdict: Optional[str] = None
    summary_fingerprint: Optional[str] = None
    #: per-channel FIFO traffic (empty for pipe-free kernels)
    pipe_traffic: Dict[str, PipeTraffic] = field(default_factory=dict)

    @property
    def uses_pipes(self) -> bool:
        return bool(self.pipe_traffic)

    @property
    def work_group_size(self) -> int:
        return self.ndrange.work_group_size

    @property
    def total_work_items(self) -> int:
        return self.ndrange.num_work_items

    @property
    def num_work_groups(self) -> int:
        return self.ndrange.num_work_groups

    @property
    def uses_barrier(self) -> bool:
        return self.barriers_per_wi > 0

    def global_accesses_per_wi(self) -> float:
        return (self.traces.global_reads_per_wi
                + self.traces.global_writes_per_wi)


def analysis_fingerprint(fn: Function, buffers: Dict[str, Buffer],
                         scalars: Dict[str, object], ndrange: NDRange,
                         device, table: OpLatencyTable,
                         profile_groups: int,
                         summary_fingerprint: Optional[str] = None,
                         trace_engine: Optional[tuple] = None) -> str:
    """Content hash of one analysis run's inputs (the persistent cache
    key): kernel IR, buffer contents, scalars, NDRange, the full device
    configuration, the op-latency table, and the profiling depth.

    When the traces are synthesized statically, the summary engine's
    version and fingerprint join the key (pass *summary_fingerprint*),
    so a summary-engine change invalidates only synthesized entries.
    Likewise *trace_engine* (e.g. ``("vexec", VEXEC_ENGINE_VERSION)``)
    keys vectorized-interpreter entries separately from scalar ones."""
    from repro.cache import analysis_key, digest
    table_part = digest(sorted((cls.name, lat) for cls, lat
                               in table.latencies.items()), table.scale)
    extra: tuple = (profile_groups, table_part)
    if summary_fingerprint is not None:
        from repro.lint.summary.engine import SUMMARY_ENGINE_VERSION
        extra = extra + ("static", SUMMARY_ENGINE_VERSION,
                         summary_fingerprint)
    if trace_engine is not None:
        extra = extra + tuple(trace_engine)
    return analysis_key(fn, buffers, scalars, ndrange, device, extra)


def analyze_kernel(fn: Function, buffers: Dict[str, Buffer],
                   scalars: Dict[str, object], ndrange: NDRange,
                   device, table: Optional[OpLatencyTable] = None,
                   profile_groups: int = DEFAULT_PROFILE_GROUPS,
                   cache=None, static_trace: str = "auto",
                   verify: bool = False,
                   launch: Optional[LaunchResult] = None,
                   interp: str = "auto") -> KernelInfo:
    """Run FlexCL kernel analysis.  *buffers* are consumed (the profiling
    run mutates them); pass fresh copies if the caller needs the data.

    *static_trace* selects the trace producer: ``"auto"`` (default)
    synthesizes the profile analytically when the access summary proves
    the kernel STATIC and interprets otherwise; ``"never"`` always
    interprets; ``"always"`` demands synthesis and raises
    :class:`StaticTraceUnavailable` when the kernel is IRREGULAR.
    *verify* additionally interprets and cross-checks every synthesized
    trace address-for-address (:class:`StaticTraceMismatch` on any
    disagreement).

    *interp* selects the dynamic trace producer used when synthesis is
    off or unavailable: ``"auto"`` (default) runs the lane-vectorized
    interpreter (:class:`repro.interp.vexec.VectorizedExecutor`) and
    falls back to the scalar :class:`KernelExecutor` on
    :class:`~repro.interp.vexec.VectorizationError`; ``"vectorized"``
    demands vectorization (the error propagates); ``"scalar"`` always
    uses the per-work-item interpreter.  All three produce bit-identical
    launches and traces; with ``verify=True`` a vectorized profile is
    additionally cross-checked against the scalar interpreter.

    With a :class:`repro.cache.ArtifactCache` as *cache*, the analysis
    is content-addressed: a prior run with the same kernel, inputs, and
    device (in any process) is loaded from disk instead of re-profiled,
    and a cache hit leaves *buffers* untouched.  The result is
    bit-identical either way — synthesized and interpreted analyses
    produce identical traces, but are cached under distinct keys.

    Pipe kernels cannot be profiled standalone (a blocking FIFO op only
    makes progress when the peer kernel is live): co-execute the whole
    program with :class:`repro.interp.ProgramExecutor` and pass each
    stage's :class:`LaunchResult` as *launch*.  The profiling step is
    then skipped, and the persistent cache is bypassed (the launch came
    from outside this function's hashed inputs).
    """
    if static_trace not in STATIC_TRACE_MODES:
        raise ValueError(f"static_trace must be one of "
                         f"{STATIC_TRACE_MODES}, got {static_trace!r}")
    if interp not in INTERP_MODES:
        raise ValueError(f"interp must be one of {INTERP_MODES}, "
                         f"got {interp!r}")
    if table is None:
        table = OpLatencyTable.for_device(device)

    if launch is not None:
        return _analyze_from_launch(fn, ndrange, device, table, launch)

    summary = None
    if static_trace != "never":
        from repro.lint.summary import VERDICT_STATIC, summarize_kernel
        summary = summarize_kernel(fn)
        if static_trace == "always" and summary.verdict != VERDICT_STATIC:
            why = "; ".join(f"{r.code} at {r.where}"
                            for r in summary.reasons[:4])
            raise StaticTraceUnavailable(
                f"kernel {fn.name} is {summary.verdict}: {why}")
        if summary.verdict != VERDICT_STATIC:
            summary_static = False
        else:
            summary_static = True
    else:
        summary_static = False

    # Hash the inputs before profiling mutates the buffers; the key
    # doubles as the KernelInfo fingerprint the sub-model caches use.
    launch = None
    static_used = False
    fingerprint = None
    if summary_static:
        fingerprint = analysis_fingerprint(
            fn, buffers, scalars, ndrange, device, table, profile_groups,
            summary_fingerprint=summary.fingerprint)
        if cache is not None:
            found, cached = cache.get("analysis", fingerprint)
            if found and isinstance(cached, KernelInfo):
                return cached
        # Stable site ids shared with the trace records.
        for i, inst in enumerate(fn.instructions()):
            inst.site_id = i  # type: ignore[attr-defined]
        from repro.interp.synth import SynthesisError
        try:
            synthesizer = _synthesizer_for(fn, buffers, scalars)
            launch = synthesizer.run(ndrange,
                                     max_groups=max(profile_groups, 1))
            static_used = True
        except SynthesisError as exc:
            # The summary over-promised (or the launch hits a runtime
            # condition the executor would also fault on): fall back to
            # interpretation, which reproduces the real error behaviour.
            if static_trace == "always":
                raise StaticTraceUnavailable(
                    f"synthesis failed for {fn.name}: {exc}") from exc
            launch = None
        if launch is not None and verify:
            _verify_against_interpreter(fn, buffers, scalars, ndrange,
                                        profile_groups, launch)

    trace_source = "synth" if static_used else "scalar"
    if launch is None:
        if interp != "scalar":
            from repro.interp.vexec import (
                VEXEC_ENGINE_VERSION,
                VectorizationError,
                VectorizedExecutor,
            )
            fp_vec = analysis_fingerprint(
                fn, buffers, scalars, ndrange, device, table,
                profile_groups,
                trace_engine=("vexec", VEXEC_ENGINE_VERSION))
            if cache is not None:
                found, cached = cache.get("analysis", fp_vec)
                if found and isinstance(cached, KernelInfo):
                    return cached
            for i, inst in enumerate(fn.instructions()):
                inst.site_id = i  # type: ignore[attr-defined]
            snapshot = ({name: b.data.copy() for name, b in buffers.items()}
                        if verify else None)
            try:
                executor = VectorizedExecutor(fn, buffers, scalars)
                launch = executor.run(ndrange,
                                      max_groups=max(profile_groups, 1))
                fingerprint = fp_vec
                trace_source = "vectorized"
            except VectorizationError:
                # The kernel (or this launch) left the vectorizable
                # subset; the buffers were restored, so scalar
                # interpretation reproduces canonical behaviour.
                if interp == "vectorized":
                    raise
                launch = None
            if launch is not None and verify:
                for name, buf in buffers.items():
                    buf.data[...] = snapshot[name]
                _verify_against_interpreter(fn, buffers, scalars, ndrange,
                                            profile_groups, launch)

    if launch is None:
        fingerprint = analysis_fingerprint(fn, buffers, scalars, ndrange,
                                           device, table, profile_groups)
        if cache is not None:
            found, cached = cache.get("analysis", fingerprint)
            if found and isinstance(cached, KernelInfo):
                return cached
        for i, inst in enumerate(fn.instructions()):
            inst.site_id = i  # type: ignore[attr-defined]
        executor = KernelExecutor(fn, buffers, scalars)
        launch = executor.run(ndrange, max_groups=max(profile_groups, 1))
        # Pack interpreter traces into the columnar form so analysis
        # and cache serialisation stay on the fast path either way.
        launch.traces = pack_traces(launch.traces,
                                    ndrange.work_group_size)

    info = _build_info(fn, ndrange, device, table, launch,
                       fingerprint, static_used, summary,
                       trace_source=trace_source)
    if cache is not None:
        cache.put("analysis", fingerprint, info)
    return info


def _analyze_from_launch(fn: Function, ndrange: NDRange, device,
                         table: OpLatencyTable,
                         launch: LaunchResult) -> KernelInfo:
    """Build a :class:`KernelInfo` from a pre-recorded launch (program
    co-execution).  No profiling, no persistent cache."""
    for i, inst in enumerate(fn.instructions()):
        inst.site_id = i  # type: ignore[attr-defined]
    if isinstance(launch.traces, list):
        launch.traces = pack_traces(launch.traces,
                                    ndrange.work_group_size)
    return _build_info(fn, ndrange, device, table, launch,
                       fingerprint=None, static_used=False, summary=None,
                       trace_source="scalar")


def _build_info(fn: Function, ndrange: NDRange, device,
                table: OpLatencyTable, launch: LaunchResult,
                fingerprint: Optional[str], static_used: bool,
                summary, trace_source: str = "scalar") -> KernelInfo:
    loop_nest = find_loops(fn)
    items = max(launch.work_items_executed, 1)
    block_weights = {name: count / items
                     for name, count in launch.block_counts.items()}
    # Attach profiled trip counts to loops lacking static ones.
    for loop in loop_nest.loops:
        profiled = launch.trip_counts.get(loop.header)
        if profiled is not None:
            loop.profiled_trip_count = profiled

    trace_analysis = analyze_traces(launch.traces)

    block_dfgs = _block_dfgs_for(fn, table)
    function_dfg = build_function_dfg(fn, table, weights=block_weights)
    _add_recurrence_edges(function_dfg, trace_analysis)

    return KernelInfo(
        name=fn.name, fn=fn, ndrange=ndrange, device=device, table=table,
        fingerprint=fingerprint,
        loop_nest=loop_nest, traces=trace_analysis,
        function_dfg=function_dfg, block_dfgs=block_dfgs,
        block_weights=block_weights,
        dsp_cost_per_wi=_dsp_cost_per_wi(function_dfg, table),
        dsp_static_cost=float(sum(
            table.dsp_cost(node.inst) for node in function_dfg.nodes)),
        local_mem_bytes=_local_mem_bytes(fn),
        barriers_per_wi=launch.barriers_per_item,
        static_trace_used=static_used,
        trace_source=trace_source,
        summary_verdict=(summary.verdict if summary is not None
                         else None),
        summary_fingerprint=(summary.fingerprint if summary is not None
                             else None),
        pipe_traffic=_pipe_traffic(fn, block_weights),
    )


def _pipe_traffic(fn: Function,
                  block_weights: Dict[str, float]) -> Dict[str, PipeTraffic]:
    """Tokens per work-item per channel: each execution of a block
    performs one FIFO op per pipe site it contains, so the rate is the
    sum of the profiled block frequencies over the channel's sites."""
    reads: Dict[str, float] = {}
    writes: Dict[str, float] = {}
    elem: Dict[str, int] = {}
    for block in fn.reachable_blocks():
        weight = block_weights.get(block.name, 0.0)
        for inst in block.instructions:
            if isinstance(inst, (PipeRead, PipeWrite)):
                name = inst.channel.name
                elem[name] = max(inst.channel.elem_type.bytes, 1)
                bucket = reads if isinstance(inst, PipeRead) else writes
                bucket[name] = bucket.get(name, 0.0) + weight
    return {name: PipeTraffic(channel=name, elem_bytes=elem[name],
                              reads_per_wi=reads.get(name, 0.0),
                              writes_per_wi=writes.get(name, 0.0))
            for name in sorted(elem)}


def _verify_against_interpreter(fn, buffers, scalars, ndrange,
                                profile_groups, launch) -> None:
    """Cross-check a synthesized launch against the interpreter,
    address-for-address.  Raises :class:`StaticTraceMismatch`."""
    executor = KernelExecutor(fn, buffers, scalars)
    ref = executor.run(ndrange, max_groups=max(profile_groups, 1))
    if len(ref.traces) != len(launch.traces):
        raise StaticTraceMismatch(
            f"{fn.name}: {len(launch.traces)} synthesized work-item "
            f"traces vs {len(ref.traces)} interpreted")
    for wi in range(len(ref.traces)):
        if list(launch.traces[wi]) != list(ref.traces[wi]):
            raise StaticTraceMismatch(
                f"{fn.name}: work-item {wi} trace differs between "
                f"synthesis and interpretation")
    for field_name in ("groups_executed", "work_items_executed",
                       "block_counts", "trip_counts",
                       "barriers_per_item"):
        if getattr(ref, field_name) != getattr(launch, field_name):
            raise StaticTraceMismatch(
                f"{fn.name}: {field_name} differs between synthesis "
                f"and interpretation")


def _add_recurrence_edges(graph: DataFlowGraph,
                          traces: TraceAnalysis) -> None:
    """Add store -> load edges with inter-work-item distances."""
    by_site = {}
    for node in graph.nodes:
        site = getattr(node.inst, "site_id", None)
        if site is not None:
            by_site[site] = node
    for rec in traces.recurrences:
        store_node = by_site.get(rec.store_site)
        load_node = by_site.get(rec.load_site)
        if store_node is not None and load_node is not None:
            graph.add_edge(store_node, load_node, distance=rec.distance)


def _dsp_cost_per_wi(graph: DataFlowGraph, table: OpLatencyTable) -> float:
    total = 0.0
    for node in graph.nodes:
        total += table.dsp_cost(node.inst) * node.weight
    return total


def _local_mem_bytes(fn: Function) -> int:
    total = 0
    for inst in fn.instructions():
        if isinstance(inst, Alloca) and inst.space == AddressSpace.LOCAL:
            total += max(inst.allocated.bytes, 1)
    return total
