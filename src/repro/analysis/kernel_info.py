"""Kernel analysis orchestration (paper §3.2, Figure 2's "Kernel
Analysis" box).

:func:`analyze_kernel` runs the whole front half of FlexCL:

1. profile a few work-groups with the interpreter (dynamic trip counts
   and memory traces — "the profiling overhead is very small ... because
   only a few work-groups are profiled in practice");
2. discover loops and attach trip counts (static counts win);
3. build the simplified CDFG artefacts: per-block DFGs and the
   whole-work-item DFG with profiled recurrence edges;
4. aggregate resource usage (local ports pressure, DSP cost, local
   memory bytes).

The result, :class:`KernelInfo`, is design-independent for a fixed
work-group size: the model and baselines schedule it per design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.dfg import (
    DataFlowGraph,
    build_block_dfg,
    build_function_dfg,
)
from repro.analysis.loops import LoopNest, find_loops
from repro.analysis.memtrace import TraceAnalysis, analyze_traces
from repro.interp.executor import Buffer, KernelExecutor, NDRange
from repro.ir.function import Function
from repro.ir.instructions import Alloca
from repro.ir.types import AddressSpace
from repro.latency.optable import OpLatencyTable

#: work-groups profiled by default (paper: "only a few work-groups").
#: Four groups let the simulator's address extrapolation find interior
#: (non-boundary) inter-group deltas even when the active-work-item
#: shape varies with a short row period (guarded stencils).
DEFAULT_PROFILE_GROUPS = 4


@dataclass
class KernelInfo:
    """Frozen product of kernel analysis for one (kernel, wg-size,
    device) combination."""

    name: str
    fn: Function
    ndrange: NDRange
    device: object
    table: OpLatencyTable
    #: content hash of the analysis inputs (kernel IR, launch signature,
    #: buffer contents, device, profiling depth) — the persistent cache
    #: key this analysis was (or would be) stored under, and the kernel
    #: identity the sub-model caches spill their rows against
    fingerprint: Optional[str] = None
    loop_nest: LoopNest = None
    traces: TraceAnalysis = None
    function_dfg: DataFlowGraph = None
    block_dfgs: Dict[str, DataFlowGraph] = field(default_factory=dict)
    #: per-work-item execution frequency of each block (profiled)
    block_weights: Dict[str, float] = field(default_factory=dict)
    #: weighted DSP cost of one work-item's operations
    dsp_cost_per_wi: float = 0.0
    #: DSP slices of one PE instance (each static op is a core)
    dsp_static_cost: float = 0.0
    #: bytes of __local memory declared by the kernel (per CU)
    local_mem_bytes: int = 0
    barriers_per_wi: int = 0

    @property
    def work_group_size(self) -> int:
        return self.ndrange.work_group_size

    @property
    def total_work_items(self) -> int:
        return self.ndrange.num_work_items

    @property
    def num_work_groups(self) -> int:
        return self.ndrange.num_work_groups

    @property
    def uses_barrier(self) -> bool:
        return self.barriers_per_wi > 0

    def global_accesses_per_wi(self) -> float:
        return (self.traces.global_reads_per_wi
                + self.traces.global_writes_per_wi)


def analysis_fingerprint(fn: Function, buffers: Dict[str, Buffer],
                         scalars: Dict[str, object], ndrange: NDRange,
                         device, table: OpLatencyTable,
                         profile_groups: int) -> str:
    """Content hash of one analysis run's inputs (the persistent cache
    key): kernel IR, buffer contents, scalars, NDRange, the full device
    configuration, the op-latency table, and the profiling depth."""
    from repro.cache import analysis_key, digest
    table_part = digest(sorted((cls.name, lat) for cls, lat
                               in table.latencies.items()), table.scale)
    return analysis_key(fn, buffers, scalars, ndrange, device,
                        (profile_groups, table_part))


def analyze_kernel(fn: Function, buffers: Dict[str, Buffer],
                   scalars: Dict[str, object], ndrange: NDRange,
                   device, table: Optional[OpLatencyTable] = None,
                   profile_groups: int = DEFAULT_PROFILE_GROUPS,
                   cache=None) -> KernelInfo:
    """Run FlexCL kernel analysis.  *buffers* are consumed (the profiling
    run mutates them); pass fresh copies if the caller needs the data.

    With a :class:`repro.cache.ArtifactCache` as *cache*, the analysis
    is content-addressed: a prior run with the same kernel, inputs, and
    device (in any process) is loaded from disk instead of re-profiled,
    and a cache hit leaves *buffers* untouched.  The result is
    bit-identical either way.
    """
    if table is None:
        table = OpLatencyTable.for_device(device)

    # Hash the inputs before profiling mutates the buffers; the key
    # doubles as the KernelInfo fingerprint the sub-model caches use.
    fingerprint = analysis_fingerprint(fn, buffers, scalars, ndrange,
                                       device, table, profile_groups)
    if cache is not None:
        found, cached = cache.get("analysis", fingerprint)
        if found and isinstance(cached, KernelInfo):
            return cached

    # Stable site ids shared with the executor's trace records.
    for i, inst in enumerate(fn.instructions()):
        inst.site_id = i  # type: ignore[attr-defined]

    executor = KernelExecutor(fn, buffers, scalars)
    launch = executor.run(ndrange, max_groups=max(profile_groups, 1))

    loop_nest = find_loops(fn)
    items = max(launch.work_items_executed, 1)
    block_weights = {name: count / items
                     for name, count in launch.block_counts.items()}
    # Attach profiled trip counts to loops lacking static ones.
    for loop in loop_nest.loops:
        profiled = launch.trip_counts.get(loop.header)
        if profiled is not None:
            loop.profiled_trip_count = profiled

    trace_analysis = analyze_traces(launch.traces)

    block_dfgs = {
        block.name: build_block_dfg(block, table)
        for block in fn.reachable_blocks()
    }
    function_dfg = build_function_dfg(fn, table, weights=block_weights)
    _add_recurrence_edges(function_dfg, trace_analysis)

    info = KernelInfo(
        name=fn.name, fn=fn, ndrange=ndrange, device=device, table=table,
        fingerprint=fingerprint,
        loop_nest=loop_nest, traces=trace_analysis,
        function_dfg=function_dfg, block_dfgs=block_dfgs,
        block_weights=block_weights,
        dsp_cost_per_wi=_dsp_cost_per_wi(function_dfg, table),
        dsp_static_cost=float(sum(
            table.dsp_cost(node.inst) for node in function_dfg.nodes)),
        local_mem_bytes=_local_mem_bytes(fn),
        barriers_per_wi=launch.barriers_per_item,
    )
    if cache is not None:
        cache.put("analysis", fingerprint, info)
    return info


def _add_recurrence_edges(graph: DataFlowGraph,
                          traces: TraceAnalysis) -> None:
    """Add store -> load edges with inter-work-item distances."""
    by_site = {}
    for node in graph.nodes:
        site = getattr(node.inst, "site_id", None)
        if site is not None:
            by_site[site] = node
    for rec in traces.recurrences:
        store_node = by_site.get(rec.store_site)
        load_node = by_site.get(rec.load_site)
        if store_node is not None and load_node is not None:
            graph.add_edge(store_node, load_node, distance=rec.distance)


def _dsp_cost_per_wi(graph: DataFlowGraph, table: OpLatencyTable) -> float:
    total = 0.0
    for node in graph.nodes:
        total += table.dsp_cost(node.inst) * node.weight
    return total


def _local_mem_bytes(fn: Function) -> int:
    total = 0
    for inst in fn.instructions():
        if isinstance(inst, Alloca) and inst.space == AddressSpace.LOCAL:
            total += max(inst.allocated.bytes, 1)
    return total
