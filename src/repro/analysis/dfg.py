"""Data-flow graph construction.

Two granularities:

- :func:`build_block_dfg` — the DFG of one basic block, consumed by the
  resource-aware list scheduler (paper §3.3.1) to estimate that block's
  execution latency.
- :func:`build_function_dfg` — the whole-work-item DFG (blocks linearised
  in reverse post-order, cross-block value and memory dependencies, and
  control edges from branch conditions into the blocks they guard).  The
  modulo scheduler and the recurrence analysis run on this graph.

Because the lowering is alloca-based, value flow passes through private
stack slots; dependencies through memory are therefore tracked per
*pointer root* (the alloca / argument a pointer was derived from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Store,
    )
from repro.ir.types import AddressSpace
from repro.ir.values import Argument, Register, Value
from repro.latency.optable import OpClass, OpLatencyTable, classify_instruction


def pointer_root(value: Value) -> object:
    """Trace a pointer value back to its origin.

    Returns the defining :class:`Alloca`, the :class:`Argument`, or the
    string ``"?"`` when the origin cannot be determined (forcing
    conservative dependence edges).
    """
    seen = 0
    current = value
    while seen < 64:
        seen += 1
        if isinstance(current, Argument):
            return current
        if not isinstance(current, Register):
            return "?"
        # Find the defining instruction via the result backlink pattern:
        # registers are only produced by instructions, which we reach
        # through the value's definer attribute set at graph build time.
        definer = getattr(current, "definer", None)
        if definer is None:
            return "?"
        if isinstance(definer, Alloca):
            return definer
        if isinstance(definer, (GetElementPtr,)):
            current = definer.base
            continue
        if isinstance(definer, Cast) and definer.kind in ("ptrcast",
                                                          "bitcast"):
            current = definer.value
            continue
        if isinstance(definer, Load):
            # Pointer loaded from a private slot (e.g. a pointer
            # argument's stack slot): follow to the slot, then to what
            # was stored there if it is unique.
            stored = getattr(definer, "unique_stored_value", None)
            if stored is not None:
                current = stored
                continue
            return "?"
        return "?"
    return "?"


def _annotate_definers(fn: Function) -> None:
    """Attach .definer to every register and resolve unique stores into
    private slots (so pointer roots can be traced through them)."""
    for inst in fn.instructions():
        if inst.result is not None:
            inst.result.definer = inst  # type: ignore[attr-defined]
    # slot alloca -> set of values stored into it
    stores: Dict[int, List[Value]] = {}
    slot_of: Dict[int, Alloca] = {}
    for inst in fn.instructions():
        if isinstance(inst, Store):
            root = _direct_alloca(inst.pointer)
            if root is not None:
                stores.setdefault(id(root), []).append(inst.value)
                slot_of[id(root)] = root
    unique: Dict[int, Value] = {}
    for key, values in stores.items():
        if len(values) == 1:
            unique[key] = values[0]
    for inst in fn.instructions():
        if isinstance(inst, Load):
            root = _direct_alloca(inst.pointer)
            if root is not None and id(root) in unique:
                inst.unique_stored_value = unique[id(root)]  # type: ignore


def _direct_alloca(pointer: Value) -> Optional[Alloca]:
    definer = getattr(pointer, "definer", None)
    if isinstance(definer, Alloca):
        return definer
    return None


@dataclass
class DFGNode:
    """One instruction in a data-flow graph."""

    inst: Instruction
    index: int                    # program order
    latency: float = 1.0
    op_class: OpClass = OpClass.INT_ALU
    weight: float = 1.0           # executions per work-item
    block: str = ""
    preds: List[Tuple[int, int]] = field(default_factory=list)  # (node, dist)
    succs: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class DataFlowGraph:
    """A dependence graph over instructions.

    Edges carry an iteration *distance* (0 for intra-work-item
    dependencies; recurrence edges added later carry the inter-work-item
    distance).
    """

    nodes: List[DFGNode] = field(default_factory=list)
    _index_of: Dict[int, int] = field(default_factory=dict)

    def add_node(self, inst: Instruction, latency: float, op_class: OpClass,
                 weight: float = 1.0, block: str = "") -> DFGNode:
        node = DFGNode(inst=inst, index=len(self.nodes), latency=latency,
                       op_class=op_class, weight=weight, block=block)
        self.nodes.append(node)
        self._index_of[id(inst)] = node.index
        return node

    def node_for(self, inst: Instruction) -> Optional[DFGNode]:
        idx = self._index_of.get(id(inst))
        return self.nodes[idx] if idx is not None else None

    def add_edge(self, src: DFGNode, dst: DFGNode, distance: int = 0) -> None:
        if src.index == dst.index:
            return
        if (dst.index, distance) in src.succs:
            return
        src.succs.append((dst.index, distance))
        dst.preds.append((src.index, distance))

    def critical_path(self) -> float:
        """Longest latency path over distance-0 edges."""
        finish = [0.0] * len(self.nodes)
        for node in self.nodes:   # nodes are in topological (program) order
            start = 0.0
            for pred_idx, dist in node.preds:
                if dist == 0 and pred_idx < node.index:
                    start = max(start, finish[pred_idx])
            finish[node.index] = start + node.latency
        return max(finish, default=0.0)

    def longest_path_between(self, src: DFGNode, dst: DFGNode) -> Optional[float]:
        """Longest distance-0 path latency from *src* to *dst* (inclusive
        of both node latencies); None if unreachable."""
        best: Dict[int, float] = {src.index: src.latency}
        for node in self.nodes:
            if node.index <= src.index:
                continue
            incoming = [best[p] for p, d in node.preds
                        if d == 0 and p in best]
            if incoming:
                best[node.index] = max(incoming) + node.latency
        return best.get(dst.index)


def build_block_dfg(block: BasicBlock, table: OpLatencyTable) -> DataFlowGraph:
    """The dependence graph of one basic block's instructions."""
    fn = block.parent
    if fn is not None:
        _annotate_definers(fn)
    graph = DataFlowGraph()
    for inst in block.instructions:
        graph.add_node(inst, table.latency(inst),
                       classify_instruction(inst), block=block.name)
    _add_dependence_edges(graph, graph.nodes)
    return graph


def build_function_dfg(fn: Function, table: OpLatencyTable,
                       weights: Optional[Dict[str, float]] = None
                       ) -> DataFlowGraph:
    """The whole-work-item dependence graph.

    *weights* maps block names to per-work-item execution frequencies
    (from the loop nest); defaults to 1.0 everywhere.
    """
    _annotate_definers(fn)
    graph = DataFlowGraph()
    order = _reverse_post_order(fn)
    for block in order:
        w = (weights or {}).get(block.name, 1.0)
        for inst in block.instructions:
            graph.add_node(inst, table.latency(inst),
                           classify_instruction(inst), weight=w,
                           block=block.name)
    _add_dependence_edges(graph, graph.nodes)
    _add_control_edges(graph, fn)
    return graph


def _reverse_post_order(fn: Function) -> List[BasicBlock]:
    seen = set()
    post: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(id(block))
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                post.append(current)
                stack.pop()

    visit(fn.entry)
    return list(reversed(post))


def _add_dependence_edges(graph: DataFlowGraph,
                          nodes: Sequence[DFGNode]) -> None:
    # Register def-use edges.
    producer: Dict[int, DFGNode] = {}
    for node in nodes:
        if node.inst.result is not None:
            producer[id(node.inst.result)] = node
    for node in nodes:
        for op in node.inst.operands:
            src = producer.get(id(op))
            if src is not None and src.index < node.index:
                graph.add_edge(src, node)

    # Memory ordering per pointer root (RAW / WAR / WAW) and barriers.
    last_store: Dict[object, DFGNode] = {}
    loads_since_store: Dict[object, List[DFGNode]] = {}
    last_barrier: Optional[DFGNode] = None

    def root_key(pointer: Value, space: AddressSpace) -> object:
        root = pointer_root(pointer)
        if root == "?":
            return ("?", space)
        return id(root)

    for node in nodes:
        inst = node.inst
        if isinstance(inst, Barrier):
            # Barrier orders every preceding memory op before every
            # following one.
            for store_node in last_store.values():
                graph.add_edge(store_node, node)
            for load_list in loads_since_store.values():
                for load_node in load_list:
                    graph.add_edge(load_node, node)
            last_store.clear()
            loads_since_store.clear()
            last_barrier = node
            continue
        if isinstance(inst, Load):
            key = root_key(inst.pointer, inst.space)
            for k in (key, ("?", inst.space)):
                if k in last_store:
                    graph.add_edge(last_store[k], node)
            if isinstance(key, tuple):
                # Unknown root: depends on every outstanding store.
                for store_node in last_store.values():
                    graph.add_edge(store_node, node)
            loads_since_store.setdefault(key, []).append(node)
            if last_barrier is not None:
                graph.add_edge(last_barrier, node)
        elif isinstance(inst, Store) or (
                isinstance(inst, Call)
                and inst.callee.startswith("atomic_")):
            pointer = (inst.pointer if isinstance(inst, Store)
                       else inst.operands[0])
            space = (pointer.type.space
                     if hasattr(pointer.type, "space")
                     else AddressSpace.GLOBAL)
            key = root_key(pointer, space)
            if key in last_store:
                graph.add_edge(last_store[key], node)  # WAW
            for load_node in loads_since_store.pop(key, []):
                graph.add_edge(load_node, node)        # WAR
            last_store[key] = node
            if last_barrier is not None:
                graph.add_edge(last_barrier, node)


def _add_control_edges(graph: DataFlowGraph, fn: Function) -> None:
    """Edge from each branch condition to the ops of the blocks it
    guards (one level; transitivity follows from nested branches)."""
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        term_node = graph.node_for(term)
        if term_node is None:
            continue
        for target in (term.then_block, term.else_block):
            for inst in target.instructions:
                dst = graph.node_for(inst)
                if dst is not None and dst.index > term_node.index:
                    graph.add_edge(term_node, dst)
