"""Columnar (structure-of-arrays) memory traces.

The profiler's native trace format — one ``List[MemAccess]`` per
work-item — is convenient but ruinously slow to analyse, extrapolate,
and pickle: a heavy kernel records hundreds of thousands of accesses,
and every downstream pass (site statistics, stream interleaving,
coalescing, bank classification, cache serialisation) pays a Python
object per access.

:class:`PackedGroup` stores one work-group's trace as seven flat numpy
columns in **lane-major canonical order**: rows sorted by lane, each
lane's rows in its program order.  Both trace producers emit it —
per-work-item interpreter traces are packed by :func:`pack_traces`, and
the static trace synthesizer builds it directly — so every consumer
sees one representation regardless of how the trace was obtained.

:class:`PackedTraces` wraps the groups as a ``Sequence`` of per-item
``List[MemAccess]`` (lazy materialisation), so object-path code keeps
working unchanged while vectorised fast paths detect the packed form
with ``isinstance`` and skip materialisation entirely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.interp.executor import MemAccess

KIND_READ, KIND_WRITE = 0, 1
SPACE_GLOBAL, SPACE_LOCAL = 0, 1

_KIND_STR = ("read", "write")
_SPACE_STR = ("global", "local")


class PackedGroup:
    """One work-group's trace as flat columns in canonical order.

    Canonical order: rows sorted by ``lane`` (stable), each lane's rows
    in that lane's execution order.  All columns share the row axis:

    - ``site``  int32 — static instruction site id
    - ``kind``  uint8 — 0 read, 1 write
    - ``nbytes`` int32
    - ``space`` uint8 — 0 global, 1 local
    - ``buf``   int16 — index into ``names`` ("__local" for local rows)
    - ``lane``  int32 — work-item index within the group
    - ``addr``  int64 — byte address
    """

    __slots__ = ("site", "kind", "nbytes", "space", "buf", "lane",
                 "addr", "names", "wg_size", "_lane_starts", "_occ")

    def __init__(self, site, kind, nbytes, space, buf, lane, addr,
                 names: Tuple[str, ...], wg_size: int) -> None:
        self.site = site
        self.kind = kind
        self.nbytes = nbytes
        self.space = space
        self.buf = buf
        self.lane = lane
        self.addr = addr
        self.names = names
        self.wg_size = int(wg_size)
        self._lane_starts: Optional[np.ndarray] = None
        self._occ: Optional[np.ndarray] = None

    # -- derived ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self.site.shape[0])

    @property
    def lane_starts(self) -> np.ndarray:
        """``lane_starts[l]:lane_starts[l+1]`` slices lane *l*'s rows."""
        if self._lane_starts is None:
            self._lane_starts = np.searchsorted(
                self.lane, np.arange(self.wg_size + 1))
        return self._lane_starts

    @property
    def occ(self) -> np.ndarray:
        """Occurrence index: position of each row within its lane."""
        if self._occ is None:
            starts = self.lane_starts
            n = len(self)
            self._occ = np.arange(n, dtype=np.int64) \
                - starts[self.lane.astype(np.int64)]
        return self._occ

    # -- materialisation -------------------------------------------------

    def lane_trace(self, lane: int) -> List[MemAccess]:
        starts = self.lane_starts
        lo, hi = int(starts[lane]), int(starts[lane + 1])
        names = self.names
        return [
            MemAccess(_KIND_STR[k], a, nb, names[b],
                      space=_SPACE_STR[sp], site=s)
            for s, k, nb, sp, b, a in zip(
                self.site[lo:hi].tolist(), self.kind[lo:hi].tolist(),
                self.nbytes[lo:hi].tolist(), self.space[lo:hi].tolist(),
                self.buf[lo:hi].tolist(), self.addr[lo:hi].tolist())
        ]

    def global_only(self) -> "PackedGroup":
        """This group with local-space rows dropped (order preserved)."""
        if not len(self) or bool((self.space == SPACE_GLOBAL).all()):
            return self
        m = self.space == SPACE_GLOBAL
        return PackedGroup(self.site[m], self.kind[m], self.nbytes[m],
                           self.space[m], self.buf[m], self.lane[m],
                           self.addr[m], self.names, self.wg_size)

    # -- pickling (drop lazily derived caches) ---------------------------

    def __getstate__(self):
        return (self.site, self.kind, self.nbytes, self.space, self.buf,
                self.lane, self.addr, self.names, self.wg_size)

    def __setstate__(self, state) -> None:
        (self.site, self.kind, self.nbytes, self.space, self.buf,
         self.lane, self.addr, self.names, self.wg_size) = state
        self._lane_starts = None
        self._occ = None

    def __repr__(self) -> str:
        return (f"<PackedGroup {len(self)} rows, "
                f"{self.wg_size} lanes>")


class PackedTraces(Sequence):
    """A ``Sequence[List[MemAccess]]`` view over packed groups.

    Index *i* materialises work-item *i*'s trace (group ``i // wg``,
    lane ``i % wg``); slices materialise lists, so legacy object-path
    consumers — the simulator, tests — keep working.  Fast paths use
    ``.groups`` directly.
    """

    __slots__ = ("groups", "wg_size")

    def __init__(self, groups: List[PackedGroup], wg_size: int) -> None:
        self.groups = groups
        self.wg_size = int(wg_size)

    def __len__(self) -> int:
        return len(self.groups) * self.wg_size

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self.groups[index // self.wg_size].lane_trace(
            index % self.wg_size)

    def global_view(self) -> "PackedTraces":
        return PackedTraces([g.global_only() for g in self.groups],
                            self.wg_size)

    @property
    def n_rows(self) -> int:
        return sum(len(g) for g in self.groups)

    def __repr__(self) -> str:
        return (f"<PackedTraces {len(self.groups)} groups x "
                f"{self.wg_size} items, {self.n_rows} rows>")


class PackedStream(Sequence):
    """One work-group's interleaved access stream as flat columns.

    Behaves as a ``Sequence[MemAccess]`` (lazy materialisation) for the
    object-path consumers (the simulator's per-group replay), while the
    coalescer and the DRAM pattern classifier read the columns
    directly."""

    __slots__ = ("site", "kind", "nbytes", "space", "buf", "addr",
                 "names")

    def __init__(self, site, kind, nbytes, space, buf, addr,
                 names: Tuple[str, ...]) -> None:
        self.site = site
        self.kind = kind
        self.nbytes = nbytes
        self.space = space
        self.buf = buf
        self.addr = addr
        self.names = names

    @classmethod
    def from_group(cls, group: PackedGroup, order=None) -> "PackedStream":
        if order is None:
            return cls(group.site, group.kind, group.nbytes, group.space,
                       group.buf, group.addr, group.names)
        return cls(group.site[order], group.kind[order],
                   group.nbytes[order], group.space[order],
                   group.buf[order], group.addr[order], group.names)

    def with_addr(self, addr) -> "PackedStream":
        return PackedStream(self.site, self.kind, self.nbytes,
                            self.space, self.buf, addr, self.names)

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return MemAccess(_KIND_STR[int(self.kind[index])],
                         int(self.addr[index]),
                         int(self.nbytes[index]),
                         self.names[int(self.buf[index])],
                         space=_SPACE_STR[int(self.space[index])],
                         site=int(self.site[index]))

    def __repr__(self) -> str:
        return f"<PackedStream {len(self)} accesses>"


def pack_group(traces: Sequence[List[MemAccess]],
               names: Optional[Tuple[str, ...]] = None) -> PackedGroup:
    """Pack one work-group's per-lane object traces (lane order given
    by the sequence order) into canonical columns."""
    wg = len(traces)
    total = sum(len(t) for t in traces)
    site = np.empty(total, np.int32)
    kind = np.empty(total, np.uint8)
    nbytes = np.empty(total, np.int32)
    space = np.empty(total, np.uint8)
    buf = np.empty(total, np.int16)
    lane = np.empty(total, np.int32)
    addr = np.empty(total, np.int64)
    name_ix = {n: i for i, n in enumerate(names or ())}
    pos = 0
    for l, trace in enumerate(traces):
        for acc in trace:
            b = name_ix.get(acc.buffer)
            if b is None:
                b = len(name_ix)
                name_ix[acc.buffer] = b
            site[pos] = acc.site
            kind[pos] = KIND_READ if acc.kind == "read" else KIND_WRITE
            nbytes[pos] = acc.nbytes
            space[pos] = SPACE_GLOBAL if acc.space == "global" \
                else SPACE_LOCAL
            buf[pos] = b
            lane[pos] = l
            addr[pos] = acc.addr
            pos += 1
    ordered = tuple(sorted(name_ix, key=name_ix.get))
    return PackedGroup(site, kind, nbytes, space, buf, lane, addr,
                       ordered, wg)


def pack_traces(traces: Sequence[List[MemAccess]],
                wg_size: Optional[int] = None) -> PackedTraces:
    """Pack per-work-item object traces into :class:`PackedTraces`.

    *wg_size* gives the work-group-linear grouping; when omitted (or
    when it does not divide the item count) the whole sequence is
    treated as a single group, which preserves all per-item semantics.
    """
    if isinstance(traces, PackedTraces):
        return traces
    n = len(traces)
    if not wg_size or wg_size <= 0 or (n and n % wg_size != 0):
        wg_size = max(n, 1)
    groups: List[PackedGroup] = []
    names: Tuple[str, ...] = ()
    for g in range(n // wg_size):
        grp = pack_group(traces[g * wg_size:(g + 1) * wg_size], names)
        names = grp.names
        groups.append(grp)
    return PackedTraces(groups, wg_size)
