"""FlexCL -- an analytical performance model for OpenCL workloads on FPGAs.

Reproduction of Wang, Liang & Zhang, DAC 2017.  The public API:

- :func:`repro.frontend.compile_opencl` -- OpenCL C -> IR.
- :func:`repro.analysis.analyze_kernel` -- IR -> :class:`KernelInfo`
  (CDFG, trip counts, memory trace).
- :class:`repro.model.FlexCL` -- the analytical model: predict cycles for a
  (kernel, design, device) triple.
- :class:`repro.simulator.SystemRun` -- cycle-level ground-truth simulator.
- :mod:`repro.dse` -- design-space definition and exploration.
- :mod:`repro.workloads` -- Rodinia and PolyBench kernel suites.
"""

__version__ = "1.0.0"
