"""Ground-truth "System Run" simulator.

The paper's System Run synthesises each design to a bitstream and
measures it on the board.  Our substitute performs the two steps a real
flow performs:

1. **Synthesis** (:mod:`repro.simulator.synthesis`) — schedules the
   kernel with the *concrete* implementation variants the toolchain
   picked for this design (not the averaged latencies FlexCL uses), and
   fixes the hardware II, pipeline depth, and effective parallelism.
2. **Execution** (:mod:`repro.simulator.system`) — an event-driven run
   of the synthesised design: round-robin work-group dispatch with
   jittered overhead, work-item pipelining with barrier drains, and all
   global accesses serviced by a live banked-DRAM controller shared by
   every compute unit (so multi-CU designs really contend for memory).

The divergences between this and the analytical model are exactly the
paper's stated error sources: per-op implementation choice vs averaged
latencies, and dynamic memory behaviour vs averaged pattern prices.
"""

from repro.simulator.synthesis import SynthesizedDesign, synthesize
from repro.simulator.system import SimulationReport, SystemRun

__all__ = [
    "SimulationReport",
    "SynthesizedDesign",
    "SystemRun",
    "synthesize",
]
