"""The synthesis half of System Run.

A real OpenCL-to-FPGA flow schedules the RTL: the hardware's II and
pipeline depth are decided at synthesis time from the *concrete* IP
cores instantiated.  We reproduce that by re-running the same scheduling
theory FlexCL uses — but with the implementation variants the toolchain
actually picked for this (kernel, design) pair instead of FlexCL's
averaged micro-benchmark latencies, plus the structural details the
analytical model simplifies away (barrier stage splits, arbitration
registers on shared ports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.dfg import build_block_dfg, build_function_dfg
from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design
from repro.latency.microbench import ImplementationChoice
from repro.model.pe import critical_path_depth
from repro.scheduling import (
    ResourceBudget,
    compute_mii,
    list_schedule,
    swing_modulo_schedule,
)


@dataclass
class SynthesizedDesign:
    """The fixed hardware produced by 'synthesis'."""

    ii: float                 # hardware initiation interval
    depth: float              # hardware pipeline depth
    n_pe_eff: int             # PEs the arbitration actually keeps busy
    phases: int               # pipeline stages split by barriers
    block_latencies: Dict[str, float] = None


def synthesize(info: KernelInfo, design: Design, device) -> SynthesizedDesign:
    """Schedule the kernel with concrete implementation latencies."""
    choice = ImplementationChoice(info.name, design.signature())
    concrete_table = choice.table(base_scale=device.op_latency_scale)

    budget = ResourceBudget.for_pe(
        device, design.effective_pe_slots, design.num_cu)

    # Rebuild DFGs with the concrete latencies (same structure as the
    # analysis DFGs, different node weights).
    block_dfgs = {
        block.name: build_block_dfg(block, concrete_table)
        for block in info.fn.reachable_blocks()
    }
    block_latencies = {name: list_schedule(dfg, budget).latency
                       for name, dfg in block_dfgs.items()}
    function_dfg = build_function_dfg(info.fn, concrete_table,
                                      weights=info.block_weights)
    _copy_recurrence_edges(info.function_dfg, function_dfg)

    depth = max(critical_path_depth(info.fn, block_latencies,
                                    info.loop_nest), 1.0)
    if design.work_item_pipeline:
        mii = compute_mii(function_dfg, budget, info.traces,
                          info.dsp_cost_per_wi)
        sms = swing_modulo_schedule(function_dfg, budget, mii.mii)
        ii = sms.ii
    else:
        ii = depth

    n_pe = _effective_parallelism(info, design, device, ii)
    phases = max(info.barriers_per_wi + 1, 1)
    return SynthesizedDesign(ii=ii, depth=depth, n_pe_eff=n_pe,
                             phases=phases,
                             block_latencies=block_latencies)


def _effective_parallelism(info: KernelInfo, design: Design, device,
                           ii: float) -> int:
    """How many of the replicated PEs the shared ports keep busy."""
    p = design.effective_pe_slots
    ii = max(ii, 1.0)
    n_read = info.traces.local_reads_per_wi
    n_write = info.traces.local_writes_per_wi
    bounds = [p]
    if n_read > 0:
        bounds.append(int(device.local_read_ports * ii / n_read))
    if n_write > 0:
        bounds.append(int(device.local_write_ports * ii / n_write))
    if info.dsp_static_cost > 0:
        bounds.append(int(device.dsp_total / max(design.num_cu, 1)
                          / info.dsp_static_cost))
    return max(1, min(bounds))


def _copy_recurrence_edges(src_graph, dst_graph) -> None:
    """Recurrence (distance > 0) edges were attached to the analysis DFG
    from profiled traces; mirror them onto the synthesis DFG."""
    by_site_dst = {}
    for node in dst_graph.nodes:
        site = getattr(node.inst, "site_id", None)
        if site is not None:
            by_site_dst[site] = node
    for node in src_graph.nodes:
        for succ_idx, dist in node.succs:
            if dist > 0:
                src_site = getattr(node.inst, "site_id", None)
                dst_site = getattr(
                    src_graph.nodes[succ_idx].inst, "site_id", None)
                a = by_site_dst.get(src_site)
                b = by_site_dst.get(dst_site)
                if a is not None and b is not None:
                    dst_graph.add_edge(a, b, distance=dist)
