"""The execution half of System Run: event-driven simulation.

Work-groups are dispatched round-robin to compute units with jittered
scheduling overhead; each work-group's work-items stream through the
synthesised pipeline (with barrier drains between pipeline phases); and
every global access of every work-group is serviced by one shared
banked-DRAM controller.  Requests from all concurrently-active compute
units are merged in global time order, so bank conflicts, row-buffer
locality, bus turnarounds, and multi-CU contention all emerge
dynamically.

Per-work-group addresses beyond the profiled groups are extrapolated
period-aware from inter-group address deltas observed among the
profiled groups (exact for the affine access functions OpenCL kernels
overwhelmingly use, including guarded stencils whose active work-item
shape varies with a short row period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.kernel_info import KernelInfo
from repro.devices.device import Device
from repro.dram.coalesce import (
    CoalescedRequest,
    coalesce_stream,
)
from repro.dram.controller import DRAMController
from repro.dram.mapping import BankMapping
from repro.dse.space import Design
from repro.latency.microbench import _stable_hash
from repro.simulator.synthesis import SynthesizedDesign, synthesize


@dataclass
class SimulationReport:
    """The measured execution of one design."""

    cycles: float
    design: Design
    hardware: SynthesizedDesign
    compute_cycles_per_group: float = 0.0
    memory_requests: int = 0
    groups: int = 0


class _GroupExec:
    """One work-group in flight on a CU: closed-loop request chains."""

    __slots__ = ("cu", "start", "compute_end", "chains", "chain_clock",
                 "chain_pos", "last_finish", "serial", "tail",
                 "issue_done")

    def __init__(self, cu: int, start: float, compute: float,
                 requests: Sequence[CoalescedRequest], n_chains: int,
                 serial: bool, tail: float = 0.0,
                 issue_done: float = 0.0) -> None:
        self.tail = tail
        self.issue_done = issue_done or (start + compute)
        self.cu = cu
        self.start = start
        self.compute_end = start + compute
        self.serial = serial
        if serial:
            n_chains = 1
        n_chains = max(n_chains, 1)
        self.chains: List[List[CoalescedRequest]] = [
            [] for _ in range(n_chains)]
        for i, req in enumerate(requests):
            self.chains[i % n_chains].append(req)
        self.chain_clock = [start] * n_chains
        self.chain_pos = [0] * n_chains
        self.last_finish = start

    def next_chain(self) -> Optional[int]:
        """The chain with the earliest pending arrival, or None."""
        best = None
        best_t = math.inf
        for c, queue in enumerate(self.chains):
            if self.chain_pos[c] < len(queue) \
                    and self.chain_clock[c] < best_t:
                best = c
                best_t = self.chain_clock[c]
        return best

    @property
    def requests_done(self) -> bool:
        return all(self.chain_pos[c] >= len(q)
                   for c, q in enumerate(self.chains))

    def end_time(self, compute: float) -> float:
        if self.serial:
            # Barrier communication: transfers then compute.
            return self.last_finish + compute
        # The last response still traverses the downstream half of the
        # pipeline before the work-group retires.
        return max(self.compute_end, self.last_finish + self.tail)


class SystemRun:
    """Simulates the synthesised design executing the full NDRange."""

    #: cap on individually simulated work-groups; beyond it the
    #: simulation continues with the measured steady-state group time
    MAX_SIMULATED_GROUPS = 96

    def __init__(self, device: Device) -> None:
        self.device = device

    # -- public -------------------------------------------------------------

    def run(self, info: KernelInfo, design: Design) -> SimulationReport:
        """Synthesize and execute; returns measured cycles."""
        hw = synthesize(info, design, self.device)
        if design.work_group_size != info.work_group_size:
            raise ValueError("design/work-group mismatch: re-analyse the "
                             "kernel for this work-group size")

        num_groups = info.num_work_groups
        num_cu = design.num_cu
        jitter = _Jitter(info.name, design.signature())
        compute = self._group_compute_cycles(hw, design)
        streams = self._group_streams(info, design)
        controller = DRAMController(BankMapping.for_device(self.device),
                                    self.device.dram)
        overhead = self.device.schedule_overhead_cycles

        if design.comm_mode == "barrier":
            return self._run_barrier_mode(
                info, design, hw, compute, streams, controller,
                jitter, overhead)

        cu_free = [0.0] * num_cu
        active: List[Optional[_GroupExec]] = [None] * num_cu
        next_group = 0
        finished_groups = 0
        total_requests = 0
        group_times: List[float] = []
        finish = 0.0

        simulated_groups = min(num_groups, self.MAX_SIMULATED_GROUPS)
        dispatcher_free = 0.0   # the round-robin dispatcher is serial
        while finished_groups < simulated_groups:
            # Dispatch onto idle CUs, one work-group at a time.
            for cu in range(num_cu):
                if active[cu] is None and next_group < simulated_groups:
                    dispatch = overhead * jitter.factor(
                        f"disp{next_group}", 0.25)
                    start = max(cu_free[cu], dispatcher_free) + dispatch
                    dispatcher_free = start
                    requests = streams(next_group)
                    total_requests += len(requests)
                    initiations = math.ceil(
                        max(design.work_group_size - hw.n_pe_eff, 0)
                        / max(hw.n_pe_eff, 1))
                    active[cu] = _GroupExec(
                        cu, start, compute, requests, hw.n_pe_eff,
                        False, tail=hw.depth * 0.5,
                        issue_done=start + hw.ii * max(initiations, 1))
                    next_group += 1

            # Service the globally earliest pending request.
            best_cu, best_chain, best_t = None, None, math.inf
            for cu in range(num_cu):
                exec_ = active[cu]
                if exec_ is None:
                    continue
                chain = exec_.next_chain()
                if chain is not None \
                        and exec_.chain_clock[chain] < best_t:
                    best_cu, best_chain = cu, chain
                    best_t = exec_.chain_clock[chain]

            if best_cu is not None:
                exec_ = active[best_cu]
                pos = exec_.chain_pos[best_chain]
                req = exec_.chains[best_chain][pos]
                record = controller.access(
                    req, arrival=exec_.chain_clock[best_chain])
                exec_.chain_clock[best_chain] = record.finish_time
                exec_.chain_pos[best_chain] = pos + 1
                exec_.last_finish = max(exec_.last_finish,
                                        record.finish_time)

            # Retire groups whose requests (and compute) are done.
            for cu in range(num_cu):
                exec_ = active[cu]
                if exec_ is not None and exec_.requests_done:
                    end = exec_.end_time(compute)
                    if design.work_group_pipeline:
                        # Successive groups stream into the pipeline as
                        # soon as initiation capacity frees; only the
                        # memory drain still gates the CU.
                        cu_free[cu] = max(exec_.issue_done,
                                          exec_.last_finish)
                    else:
                        cu_free[cu] = end
                    finish = max(finish, end)
                    group_times.append(max(cu_free[cu], exec_.start)
                                       - exec_.start)
                    active[cu] = None
                    finished_groups += 1

        # Steady-state extrapolation for the remaining groups: the
        # completion rate is bound by CU occupancy or by the serial
        # dispatcher, whichever is slower.
        remaining = num_groups - simulated_groups
        if remaining > 0 and group_times:
            window = group_times[-min(len(group_times), 4 * num_cu):]
            steady = sum(window) / len(window)
            per_group = max((steady + overhead) / num_cu, overhead)
            finish += remaining * per_group
        return SimulationReport(
            cycles=finish, design=design, hardware=hw,
            compute_cycles_per_group=compute,
            memory_requests=total_requests, groups=num_groups)

    # -- barrier communication mode ------------------------------------

    def _run_barrier_mode(self, info: KernelInfo, design: Design,
                          hw: SynthesizedDesign, compute: float,
                          streams, controller: DRAMController,
                          jitter: "_Jitter",
                          overhead: float) -> SimulationReport:
        """Strict phase alternation (paper §3.5: "no overlap between
        the computation and the global memory access").

        Each round dispatches one work-group per CU, streams every
        group's transfers through the memory channel back to back
        (dependency-chained — this is what Eq. 10's serial
        ``L_mem^wi x N_wi`` prices), then lets the round's groups
        compute concurrently before the next transfer phase opens.
        """
        num_groups = info.num_work_groups
        num_cu = design.num_cu
        rounds = math.ceil(num_groups / num_cu)
        simulated_rounds = min(
            rounds, max(self.MAX_SIMULATED_GROUPS // max(num_cu, 1), 1))

        clock = 0.0
        total_requests = 0
        round_times: List[float] = []
        group_index = 0
        for r in range(simulated_rounds):
            round_start = clock
            groups = list(range(group_index,
                                min(group_index + num_cu, num_groups)))
            group_index += len(groups)
            # dispatch + transfer phase (serial on the channel)
            for g in groups:
                clock += overhead * jitter.factor(f"disp{g}", 0.25)
                for req in streams(g):
                    total_requests += 1
                    record = controller.access(req, arrival=clock)
                    clock = record.finish_time
            # compute phase: the round's groups run concurrently
            clock += compute
            round_times.append(clock - round_start)

        remaining = rounds - simulated_rounds
        if remaining > 0 and round_times:
            window = round_times[-min(len(round_times), 8):]
            clock += remaining * (sum(window) / len(window))
        return SimulationReport(
            cycles=clock, design=design, hardware=hw,
            compute_cycles_per_group=compute,
            memory_requests=total_requests, groups=num_groups)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _group_compute_cycles(hw: SynthesizedDesign,
                              design: Design) -> float:
        initiations = math.ceil(
            max(design.work_group_size - hw.n_pe_eff, 0)
            / max(hw.n_pe_eff, 1))
        # Work-items stay registered in the pipeline across a barrier;
        # each barrier costs one phase-depth drain + refill.
        phase_depth = hw.depth / max(hw.phases, 1)
        return (hw.ii * initiations + hw.depth
                + (hw.phases - 1) * phase_depth)

    def _group_streams(self, info: KernelInfo, design: Design
                       ) -> Callable[[int], List[CoalescedRequest]]:
        """group index -> coalesced request list, via the shared
        :class:`repro.analysis.GroupStreamExtrapolator` (the model
        prices the SAME streams; only timing differs)."""
        from repro.analysis.streams import GroupStreamExtrapolator
        extrapolator = GroupStreamExtrapolator(
            info.traces.global_traces, design.work_group_size,
            pipelined=design.work_item_pipeline)
        unit = self.device.mem_access_unit_bits

        def streams(group: int) -> List[CoalescedRequest]:
            return coalesce_stream(extrapolator.stream(group), unit)

        return streams


class _Jitter:
    """Deterministic noise source keyed on (kernel, design)."""

    def __init__(self, kernel: str, signature: str) -> None:
        self._kernel = kernel
        self._signature = signature

    def factor(self, tag: str, amplitude: float) -> float:
        """A multiplier in [1 - amplitude, 1 + amplitude]."""
        h = _stable_hash("jitter", self._kernel, self._signature, tag)
        u = (h % 10_000) / 10_000
        return 1.0 + amplitude * (2.0 * u - 1.0)
