"""Micro-benchmark profiling of operation latencies.

The paper (§4.2) explains FlexCL's main error source: "For the same IR
operation, SDAccel may have multiple hardware implementation choices with
different execution latencies.  In the current toolchain, the hardware
implementation can not be controlled by the programmer.  In FlexCL, we
address this problem by computing the average latency of an operation
using micro-benchmarks."

We reproduce that situation structurally:

- each :class:`OpClass` has a small *population* of implementation
  variants (think: LUT adder vs DSP adder, deep vs shallow float cores);
- :func:`profile_op_latencies` runs the micro-benchmark: it samples the
  population many times and returns the averaged
  :class:`~repro.latency.optable.OpLatencyTable` that FlexCL uses;
- :class:`ImplementationChoice` deterministically picks one concrete
  variant per (design, op class) — this is what the ground-truth
  simulator executes with, so model-vs-actual error has the same source
  as in the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List

from repro.latency.optable import NOMINAL_LATENCY, OpClass, OpLatencyTable

#: Relative latency multipliers of the implementation variants available
#: for each op class, and how often the toolchain picks each (weights).
#: Classes with a single entry have one canonical implementation.
VARIANT_POPULATION: Dict[OpClass, List[tuple]] = {
    OpClass.INT_ALU: [(1.0, 0.9), (2.0, 0.1)],
    OpClass.INT_MUL: [(0.67, 0.3), (1.0, 0.5), (1.33, 0.2)],
    OpClass.INT_DIV: [(0.78, 0.25), (1.0, 0.5), (1.33, 0.25)],
    OpClass.FADD: [(0.8, 0.35), (1.0, 0.4), (1.4, 0.25)],
    OpClass.FMUL: [(0.75, 0.3), (1.0, 0.45), (1.5, 0.25)],
    OpClass.FDIV: [(0.71, 0.2), (1.0, 0.5), (1.29, 0.3)],
    OpClass.FEXPENSIVE: [(0.72, 0.25), (1.0, 0.45), (1.39, 0.3)],
    OpClass.CAST: [(0.67, 0.3), (1.0, 0.5), (1.67, 0.2)],
    OpClass.LOCAL_READ: [(1.0, 0.8), (1.5, 0.2)],
    OpClass.LOCAL_WRITE: [(1.0, 1.0)],
    OpClass.GLOBAL_ISSUE: [(1.0, 0.7), (1.5, 0.3)],
    OpClass.ADDR: [(1.0, 0.85), (2.0, 0.15)],
    OpClass.CONTROL: [(1.0, 1.0)],
    OpClass.FREE: [(1.0, 1.0)],
    OpClass.ATOMIC: [(0.75, 0.25), (1.0, 0.5), (1.25, 0.25)],
}


def _population_mean(cls: OpClass) -> float:
    variants = VARIANT_POPULATION[cls]
    total_weight = sum(w for _, w in variants)
    return sum(m * w for m, w in variants) / total_weight


def _stable_hash(*parts: object) -> int:
    text = "|".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


@dataclass
class MicrobenchProfiler:
    """Runs the latency micro-benchmarks for one device."""

    device_scale: float = 1.0
    samples: int = 256

    def profile(self) -> OpLatencyTable:
        """Sample every class's variant population and average.

        The sampling is deterministic (hash-seeded) so the profiled table
        is reproducible, matching how a real profiling run would be done
        once per platform and cached.
        """
        averaged: Dict[OpClass, float] = {}
        for cls, nominal in NOMINAL_LATENCY.items():
            if nominal == 0.0:
                averaged[cls] = 0.0
                continue
            acc = 0.0
            for i in range(self.samples):
                mult = self._sample_variant(cls, i)
                acc += nominal * mult
            averaged[cls] = acc / self.samples
        return OpLatencyTable(latencies=averaged, scale=self.device_scale)

    def _sample_variant(self, cls: OpClass, sample_index: int) -> float:
        variants = VARIANT_POPULATION[cls]
        total_weight = sum(w for _, w in variants)
        u = (_stable_hash("microbench", cls.value, sample_index)
             % 10_000) / 10_000 * total_weight
        acc = 0.0
        for mult, weight in variants:
            acc += weight
            if u <= acc:
                return mult
        return variants[-1][0]


def profile_op_latencies(device) -> OpLatencyTable:
    """Micro-benchmark the op latency table for *device*."""
    return MicrobenchProfiler(device_scale=device.op_latency_scale).profile()


class ImplementationChoice:
    """The toolchain's concrete implementation pick for one synthesis run.

    Deterministic in (kernel name, design signature): re-synthesising the
    same design yields the same hardware, but different designs of the
    same kernel may get different cores — exactly the behaviour that
    limits analytical-model accuracy in the paper.
    """

    def __init__(self, kernel_name: str, design_signature: str) -> None:
        self._key = (kernel_name, design_signature)
        self._cache: Dict[OpClass, float] = {}

    def multiplier(self, cls: OpClass) -> float:
        """The latency multiplier of the variant chosen for *cls*."""
        if cls not in self._cache:
            variants = VARIANT_POPULATION[cls]
            total_weight = sum(w for _, w in variants)
            u = (_stable_hash("impl", *self._key, cls.value)
                 % 10_000) / 10_000 * total_weight
            acc = 0.0
            chosen = variants[-1][0]
            for mult, weight in variants:
                acc += weight
                if u <= acc:
                    chosen = mult
                    break
            self._cache[cls] = chosen
        return self._cache[cls]

    def table(self, base_scale: float = 1.0) -> OpLatencyTable:
        """A concrete (non-averaged) latency table for this synthesis."""
        latencies = {cls: nominal * self.multiplier(cls)
                     for cls, nominal in NOMINAL_LATENCY.items()}
        return OpLatencyTable(latencies=latencies, scale=base_scale)
