"""Per-operation latency classes and the averaged latency table."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.frontend.builtins import builtin_signature
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace


class OpClass(enum.Enum):
    """Hardware operation classes; each maps to a family of IP cores."""

    INT_ALU = "int_alu"          # add/sub/logic/shift/compare/select
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    FEXPENSIVE = "fexpensive"    # sqrt/exp/log/trig IP cores
    CAST = "cast"                # int<->float conversion cores
    LOCAL_READ = "local_read"    # BRAM read
    LOCAL_WRITE = "local_write"  # BRAM write
    GLOBAL_ISSUE = "global_issue"  # issue slot of a global access (AXI)
    ADDR = "addr"                # address generation (gep)
    CONTROL = "control"          # branches, barriers, returns
    FREE = "free"                # allocas, private loads/stores, bit casts
    ATOMIC = "atomic"            # global atomic RMW pipeline

    def __str__(self) -> str:
        return self.value


#: Nominal (design-manual) latency in cycles at 200 MHz for each class.
#: The micro-benchmark profiler perturbs these per implementation variant
#: and averages; the numbers here are the population means.
NOMINAL_LATENCY: Dict[OpClass, float] = {
    OpClass.INT_ALU: 1.0,
    OpClass.INT_MUL: 3.0,
    OpClass.INT_DIV: 18.0,
    OpClass.FADD: 5.0,
    OpClass.FMUL: 4.0,
    OpClass.FDIV: 14.0,
    OpClass.FEXPENSIVE: 18.0,
    OpClass.CAST: 3.0,
    OpClass.LOCAL_READ: 2.0,
    OpClass.LOCAL_WRITE: 1.0,
    OpClass.GLOBAL_ISSUE: 2.0,
    OpClass.ADDR: 1.0,
    OpClass.CONTROL: 1.0,
    OpClass.FREE: 0.0,
    OpClass.ATOMIC: 8.0,
}

#: DSP slices consumed by one instance of each class (Xilinx 7-series
#: figures: float add 2, float mul 3, int32 mul 4, elementary funcs ~6).
DSP_COST: Dict[OpClass, int] = {
    OpClass.INT_ALU: 0,
    OpClass.INT_MUL: 4,
    OpClass.INT_DIV: 0,
    OpClass.FADD: 2,
    OpClass.FMUL: 3,
    OpClass.FDIV: 0,
    OpClass.FEXPENSIVE: 6,
    OpClass.CAST: 0,
    OpClass.LOCAL_READ: 0,
    OpClass.LOCAL_WRITE: 0,
    OpClass.GLOBAL_ISSUE: 0,
    OpClass.ADDR: 0,
    OpClass.CONTROL: 0,
    OpClass.FREE: 0,
    OpClass.ATOMIC: 0,
}

_INT_ALU_OPS = {"add", "sub", "and", "or", "xor", "shl", "shr"}
_FLOAT_MAP = {"fadd": OpClass.FADD, "fsub": OpClass.FADD,
              "fmul": OpClass.FMUL, "fdiv": OpClass.FDIV,
              "frem": OpClass.FDIV}

_BUILTIN_CLASS = {
    "workitem": OpClass.FREE,     # ids are wired constants per PE slot
    "sync": OpClass.CONTROL,
    "fsimple": OpClass.FADD,
    "fexpensive": OpClass.FEXPENSIVE,
    "fdiv": OpClass.FDIV,
    "isimple": OpClass.INT_ALU,
    "atomic": OpClass.ATOMIC,
}


def classify_instruction(inst: Instruction) -> OpClass:
    """Map an IR instruction to its hardware operation class."""
    if isinstance(inst, BinaryOp):
        op = inst.opcode
        if op in _FLOAT_MAP:
            return _FLOAT_MAP[op]
        if op == "mul":
            return OpClass.INT_MUL
        if op in ("div", "rem"):
            return OpClass.INT_DIV
        return OpClass.INT_ALU
    if isinstance(inst, CompareOp):
        if inst.lhs.type.is_float:
            return OpClass.FADD      # float compare uses the adder core
        return OpClass.INT_ALU
    if isinstance(inst, Select):
        return OpClass.INT_ALU
    if isinstance(inst, Cast):
        if inst.kind in ("sitofp", "uitofp", "fptosi", "fptoui",
                         "fpext", "fptrunc"):
            return OpClass.CAST
        return OpClass.FREE          # bit-level casts are wiring
    if isinstance(inst, Load):
        space = inst.space
        if space == AddressSpace.PRIVATE:
            return OpClass.FREE
        if space in (AddressSpace.LOCAL, AddressSpace.CONSTANT):
            return OpClass.LOCAL_READ
        return OpClass.GLOBAL_ISSUE
    if isinstance(inst, Store):
        space = inst.space
        if space == AddressSpace.PRIVATE:
            return OpClass.FREE
        if space in (AddressSpace.LOCAL, AddressSpace.CONSTANT):
            return OpClass.LOCAL_WRITE
        return OpClass.GLOBAL_ISSUE
    if isinstance(inst, GetElementPtr):
        return OpClass.ADDR
    if isinstance(inst, Call):
        sig = builtin_signature(inst.callee)
        if sig is not None:
            return _BUILTIN_CLASS.get(sig.category, OpClass.INT_ALU)
        return OpClass.INT_ALU
    if isinstance(inst, (Branch, CondBranch, Return, Barrier)):
        return OpClass.CONTROL
    if isinstance(inst, (Alloca, Phi)):
        return OpClass.FREE
    return OpClass.INT_ALU


@dataclass
class OpLatencyTable:
    """Average per-class latencies, in cycles.

    Produced either from :data:`NOMINAL_LATENCY` (scaled per device) or by
    micro-benchmark profiling (:func:`repro.latency.profile_op_latencies`).
    """

    latencies: Dict[OpClass, float] = field(
        default_factory=lambda: dict(NOMINAL_LATENCY))
    scale: float = 1.0

    def latency(self, inst: Instruction) -> float:
        return self.of_class(classify_instruction(inst))

    def of_class(self, cls: OpClass) -> float:
        base = self.latencies[cls]
        if base == 0.0:
            return 0.0
        return max(1.0, round(base * self.scale))

    def dsp_cost(self, inst: Instruction) -> int:
        return DSP_COST[classify_instruction(inst)]

    @classmethod
    def for_device(cls, device) -> "OpLatencyTable":
        return cls(latencies=dict(NOMINAL_LATENCY),
                   scale=device.op_latency_scale)
