"""Operation latency modelling.

On FPGAs every IR operation maps to an IP core (paper §3.2).  A given
operation has *several* hardware implementation choices (LUT-based vs
DSP-based, different pipeline depths) and the toolchain picks one the
programmer cannot control; FlexCL therefore uses the *average* latency
obtained by micro-benchmark profiling (paper §4.2, "Estimation Error
Analysis").

- :class:`OpLatencyTable` — the averaged per-op table the model uses.
- :mod:`repro.latency.microbench` — profiles the table by sampling the
  implementation-variant population (and hands concrete variants to the
  ground-truth simulator, which is where the model's op-latency error
  comes from, exactly as in the paper).
"""

from repro.latency.optable import (
    DSP_COST,
    OpClass,
    OpLatencyTable,
    classify_instruction,
)
from repro.latency.microbench import (
    ImplementationChoice,
    MicrobenchProfiler,
    profile_op_latencies,
)

__all__ = [
    "DSP_COST",
    "ImplementationChoice",
    "MicrobenchProfiler",
    "OpClass",
    "OpLatencyTable",
    "classify_instruction",
    "profile_op_latencies",
]
