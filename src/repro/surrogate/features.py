"""Architecture-independent feature extraction for the learned surrogate.

A feature vector describes one (kernel, design point) pair in terms the
analytical model never sees directly: the dynamic operation mix, loop
trip counts, the stride/coalescing profile of the memory traces,
barrier and pipe density, launch geometry, and the swept design knobs.
The framing follows Johnston et al., "OpenCL Performance Prediction
using Architecture-Independent Features" (arXiv 1811.00156): cheap
machine-independent counts predict relative performance well enough to
*rank* candidates, which is all the DSE pre-filter needs.

Every input is already computed by kernel analysis (``KernelInfo``: the
profiled block weights, the loop nest, and the trace-analysis site
table), so extraction costs one pass over the IR plus a handful of
dictionary reads — no interpretation, no model evaluation.

Determinism is a hard contract: the same (kernel, design, device)
produces the bit-identical vector in any process, under any trace
engine (synthesized, lane-vectorized, or scalar — their traces are
bit-identical by the sweep tests), and for warm or cold caches.  The
extractor therefore only reads engine-independent fields and iterates
everything in a fixed order (IR block order, sorted trace sites, loop
list order).  :data:`FEATURE_NAMES` is the schema; its content hash
(:func:`feature_schema_hash`) is folded into every surrogate cache key
so a schema change can never silently mix vectors of different shapes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Bump when the feature definitions change meaning (renames, new
#: entries, different weighting) — stale model artifacts become
#: unreachable rather than wrong.
FEATURE_SCHEMA_VERSION = 1

#: Kernel-side features: one value per name, extracted from KernelInfo.
KERNEL_FEATURE_NAMES: Tuple[str, ...] = (
    # dynamic op mix, per work-item (log1p-compressed counts)
    "ops_int_addsub",
    "ops_int_mul",
    "ops_int_divrem",
    "ops_int_bit",
    "ops_float_addsub",
    "ops_float_mul",
    "ops_float_divrem",
    "ops_cmp",
    "ops_select",
    "ops_cast",
    "ops_gep",
    "ops_call",
    "ops_branch",
    "ops_private_mem",
    "ops_total",
    # op-mix ratios (dimensionless)
    "frac_float_arith",
    "frac_mem_ops",
    "frac_control",
    # loop structure
    "loop_count",
    "loop_max_depth",
    "loop_max_trip",
    "loop_iters_per_wi",
    # memory behaviour from the trace analysis
    "global_reads_per_wi",
    "global_writes_per_wi",
    "local_reads_per_wi",
    "local_writes_per_wi",
    "global_bytes_per_wi",
    "stride_frac_unit",
    "stride_frac_zero",
    "stride_frac_const",
    "stride_frac_irregular",
    "coalescible_frac",
    "recurrence_count",
    "recurrence_min_distance",
    # synchronisation / streaming density
    "barriers_per_wi",
    "pipe_tokens_per_wi",
    "uses_barrier",
    # static resources
    "local_mem_bytes",
    "dsp_cost_per_wi",
    "dsp_static_cost",
    # launch geometry
    "log2_work_group_size",
    "total_work_items",
    "num_work_groups",
)

#: Design-knob features (and kernel x design interactions).
DESIGN_FEATURE_NAMES: Tuple[str, ...] = (
    "design_log2_wg",
    "design_work_item_pipeline",
    "design_work_group_pipeline",
    "design_log2_pe",
    "design_log2_cu",
    "design_log2_vector_width",
    "design_comm_pipeline",
    "design_log2_pe_slots",
    "design_log2_parallelism",
    "design_work_per_slot",
    "design_wg_over_slots",
    "design_parallel_mem_pressure",
)

FEATURE_NAMES: Tuple[str, ...] = KERNEL_FEATURE_NAMES + DESIGN_FEATURE_NAMES


def feature_schema_hash() -> str:
    """Content hash of the feature schema (names, order, version) —
    folded into surrogate cache keys and NDJSON export headers."""
    from repro.cache import digest
    return digest("surrogate-features", FEATURE_SCHEMA_VERSION,
                  *FEATURE_NAMES)


def _log1p(x: float) -> float:
    return math.log1p(max(float(x), 0.0))


def _log2(x: float) -> float:
    return math.log2(max(float(x), 1.0))


#: opcode -> op-mix bucket (memory and synchronisation opcodes are
#: handled separately because they need the address space / traffic)
_OP_BUCKETS: Dict[str, str] = {
    "add": "ops_int_addsub", "sub": "ops_int_addsub",
    "mul": "ops_int_mul",
    "div": "ops_int_divrem", "rem": "ops_int_divrem",
    "and": "ops_int_bit", "or": "ops_int_bit", "xor": "ops_int_bit",
    "shl": "ops_int_bit", "shr": "ops_int_bit",
    "fadd": "ops_float_addsub", "fsub": "ops_float_addsub",
    "fmul": "ops_float_mul",
    "fdiv": "ops_float_divrem", "frem": "ops_float_divrem",
    "cmp": "ops_cmp",
    "select": "ops_select",
    "cast": "ops_cast",
    "gep": "ops_gep",
    "call": "ops_call",
    "br": "ops_branch",
    "condbr": "ops_branch",
}

_FLOAT_BUCKETS = ("ops_float_addsub", "ops_float_mul", "ops_float_divrem")
_INT_BUCKETS = ("ops_int_addsub", "ops_int_mul", "ops_int_divrem",
                "ops_int_bit")


def _op_mix(info) -> Dict[str, float]:
    """Per-work-item dynamic op counts, weighted by the profiled block
    execution frequencies (which already encode trip counts)."""
    counts: Dict[str, float] = {}
    weights = info.block_weights or {}
    private_mem = 0.0
    total = 0.0
    for block in info.fn.blocks:
        w = float(weights.get(block.name, 0.0))
        if w <= 0.0:
            continue
        for inst in block.instructions:
            op = inst.opcode
            total += w
            bucket = _OP_BUCKETS.get(op)
            if bucket is not None:
                counts[bucket] = counts.get(bucket, 0.0) + w
            elif op in ("load", "store"):
                space = str(inst.space)
                if space not in ("global", "local"):
                    private_mem += w
            # barrier / pipe.* / phi / ret / alloca: counted in `total`
            # and covered by the dedicated density features below
    counts["ops_private_mem"] = private_mem
    counts["ops_total"] = total
    return counts


def _stride_histogram(info) -> Dict[str, float]:
    """Distribution of global-access strides across work-items, weighted
    by each site's dynamic access count."""
    unit = zero = const = irregular = coalescible = 0.0
    total = 0.0
    bytes_per_wi = 0.0
    for site in sorted(info.traces.sites):
        stats = info.traces.sites[site]
        if stats.space != "global":
            continue
        w = float(stats.per_wi_count)
        if w <= 0.0:
            continue
        total += w
        bytes_per_wi += w * stats.nbytes
        if stats.coalescible:
            coalescible += w
        if stats.wi_stride is None:
            irregular += w
        elif stats.wi_stride == stats.nbytes:
            unit += w
        elif stats.wi_stride == 0:
            zero += w
        else:
            const += w
    if total <= 0.0:
        return {"stride_frac_unit": 0.0, "stride_frac_zero": 0.0,
                "stride_frac_const": 0.0, "stride_frac_irregular": 0.0,
                "coalescible_frac": 0.0, "global_bytes_per_wi": 0.0}
    return {
        "stride_frac_unit": unit / total,
        "stride_frac_zero": zero / total,
        "stride_frac_const": const / total,
        "stride_frac_irregular": irregular / total,
        "coalescible_frac": coalescible / total,
        "global_bytes_per_wi": bytes_per_wi,
    }


def kernel_features(info) -> Dict[str, float]:
    """The kernel-side feature map (name -> value) for one analysed
    kernel at one work-group size.  Count-like features are
    log1p-compressed so log-latency is roughly linear in them."""
    mix = _op_mix(info)
    out: Dict[str, float] = {}
    for name in ("ops_int_addsub", "ops_int_mul", "ops_int_divrem",
                 "ops_int_bit", "ops_float_addsub", "ops_float_mul",
                 "ops_float_divrem", "ops_cmp", "ops_select", "ops_cast",
                 "ops_gep", "ops_call", "ops_branch", "ops_private_mem",
                 "ops_total"):
        out[name] = _log1p(mix.get(name, 0.0))

    total = mix.get("ops_total", 0.0)
    float_arith = sum(mix.get(b, 0.0) for b in _FLOAT_BUCKETS)
    int_arith = sum(mix.get(b, 0.0) for b in _INT_BUCKETS)
    arith = float_arith + int_arith
    traces = info.traces
    mem_ops = (traces.global_reads_per_wi + traces.global_writes_per_wi
               + traces.local_reads_per_wi + traces.local_writes_per_wi)
    out["frac_float_arith"] = float_arith / arith if arith > 0 else 0.0
    out["frac_mem_ops"] = mem_ops / total if total > 0 else 0.0
    out["frac_control"] = (mix.get("ops_branch", 0.0) / total
                           if total > 0 else 0.0)

    loops = info.loop_nest.loops if info.loop_nest is not None else []
    trips = [float(loop.trip_count) for loop in loops]
    out["loop_count"] = float(len(loops))
    out["loop_max_depth"] = float(max((loop.depth + 1 for loop in loops),
                                      default=0))
    out["loop_max_trip"] = _log1p(max(trips, default=0.0))
    out["loop_iters_per_wi"] = _log1p(sum(trips))

    out["global_reads_per_wi"] = _log1p(traces.global_reads_per_wi)
    out["global_writes_per_wi"] = _log1p(traces.global_writes_per_wi)
    out["local_reads_per_wi"] = _log1p(traces.local_reads_per_wi)
    out["local_writes_per_wi"] = _log1p(traces.local_writes_per_wi)

    strides = _stride_histogram(info)
    for name, value in strides.items():
        out[name] = (_log1p(value) if name == "global_bytes_per_wi"
                     else value)

    recurrences = traces.recurrences or []
    out["recurrence_count"] = _log1p(len(recurrences))
    out["recurrence_min_distance"] = _log1p(
        min((abs(r.distance) for r in recurrences), default=0))

    out["barriers_per_wi"] = _log1p(info.barriers_per_wi)
    pipe_tokens = sum(t.reads_per_wi + t.writes_per_wi
                      for _, t in sorted(info.pipe_traffic.items()))
    out["pipe_tokens_per_wi"] = _log1p(pipe_tokens)
    out["uses_barrier"] = 1.0 if info.uses_barrier else 0.0

    out["local_mem_bytes"] = _log1p(info.local_mem_bytes)
    out["dsp_cost_per_wi"] = _log1p(info.dsp_cost_per_wi)
    out["dsp_static_cost"] = _log1p(info.dsp_static_cost)

    out["log2_work_group_size"] = _log2(info.work_group_size)
    out["total_work_items"] = _log1p(info.total_work_items)
    out["num_work_groups"] = _log1p(info.num_work_groups)
    return out


def design_features(info, design) -> Dict[str, float]:
    """The design-knob feature map for one design point, including the
    kernel x design interactions the ridge model cannot form itself."""
    slots = design.effective_pe_slots
    parallelism = slots * design.num_cu
    traces = info.traces
    mem_per_wi = traces.global_reads_per_wi + traces.global_writes_per_wi
    return {
        "design_log2_wg": _log2(design.work_group_size),
        "design_work_item_pipeline":
            1.0 if design.work_item_pipeline else 0.0,
        "design_work_group_pipeline":
            1.0 if design.work_group_pipeline else 0.0,
        "design_log2_pe": _log2(design.num_pe),
        "design_log2_cu": _log2(design.num_cu),
        "design_log2_vector_width": _log2(design.vector_width),
        "design_comm_pipeline":
            1.0 if design.comm_mode == "pipeline" else 0.0,
        "design_log2_pe_slots": _log2(slots),
        "design_log2_parallelism": _log2(parallelism),
        "design_work_per_slot":
            _log1p(info.total_work_items / max(parallelism, 1)),
        "design_wg_over_slots":
            _log2(design.work_group_size) - _log2(slots),
        "design_parallel_mem_pressure":
            _log2(parallelism) * _log1p(mem_per_wi),
    }


def feature_vector(info, design) -> np.ndarray:
    """The full (kernel, design) feature vector in
    :data:`FEATURE_NAMES` order, as float64."""
    kernel = kernel_features(info)
    knobs = design_features(info, design)
    values: List[float] = []
    for name in KERNEL_FEATURE_NAMES:
        values.append(float(kernel[name]))
    for name in DESIGN_FEATURE_NAMES:
        values.append(float(knobs[name]))
    return np.asarray(values, dtype=np.float64)


def design_matrix(info, designs: Sequence[object]) -> np.ndarray:
    """Feature vectors for many designs of one analysed kernel, with
    the kernel-side features extracted exactly once."""
    kernel = kernel_features(info)
    base = [float(kernel[name]) for name in KERNEL_FEATURE_NAMES]
    rows = np.empty((len(designs), len(FEATURE_NAMES)), dtype=np.float64)
    for i, design in enumerate(designs):
        knobs = design_features(info, design)
        rows[i, :len(base)] = base
        rows[i, len(base):] = [float(knobs[name])
                               for name in DESIGN_FEATURE_NAMES]
    return rows
