"""Training-data assembly and NDJSON export for the surrogate.

The surrogate trains on rows the evaluation suite already produces:
``run_suite(..., collect_features=True)`` attaches the architecture-
independent feature vector to every :class:`SuitePrediction`, and this
module turns those rows into the (X, cycles, kernels) triple the
trainer consumes — or streams them to disk as NDJSON so training data
can be regenerated offline without re-tracing anything.

The NDJSON format is self-describing: the first record is a schema
header carrying the feature names, the schema version, and the schema
content hash; every later record is one (workload, design) row.  A
reader rejects files whose schema hash differs from the running code's,
so stale exports fail loudly instead of training a mis-shaped model.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.surrogate.features import (FEATURE_NAMES, FEATURE_SCHEMA_VERSION,
                                      feature_schema_hash)


class FeatureSchemaError(ValueError):
    """An NDJSON feature file does not match the running schema."""


def training_rows(suite_result) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """(X, cycles, kernels) from a feature-collecting suite run.

    Rows whose prediction carried no feature vector (collection was off,
    or analysis failed) are skipped."""
    feats: List[Sequence[float]] = []
    cycles: List[float] = []
    kernels: List[str] = []
    for pred in suite_result.predictions:
        if pred.features is None:
            continue
        feats.append(pred.features)
        cycles.append(pred.cycles)
        kernels.append(pred.workload)
    if not feats:
        return (np.empty((0, len(FEATURE_NAMES))), np.empty(0), [])
    return (np.asarray(feats, dtype=np.float64),
            np.asarray(cycles, dtype=np.float64), kernels)


def schema_header() -> dict:
    """The NDJSON header record describing the current feature schema."""
    return {
        "record": "schema",
        "schema_version": FEATURE_SCHEMA_VERSION,
        "schema_hash": feature_schema_hash(),
        "feature_names": list(FEATURE_NAMES),
    }


def write_feature_rows(fh: IO[str], suite_result) -> int:
    """Stream a suite result's feature rows to *fh* as NDJSON (header
    first); returns the number of data rows written."""
    fh.write(json.dumps(schema_header(), sort_keys=True) + "\n")
    written = 0
    for pred in suite_result.predictions:
        if pred.features is None:
            continue
        row = {
            "record": "row",
            "workload": pred.workload,
            "design": pred.design,
            "cycles": pred.cycles,
            "trace_source": pred.trace_source,
            "features": list(pred.features),
        }
        fh.write(json.dumps(row, sort_keys=True) + "\n")
        written += 1
    return written


def export_features(path: Union[str, "object"], suite_result) -> int:
    """Write a suite result's feature rows to *path* (NDJSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        return write_feature_rows(fh, suite_result)


def read_feature_rows(lines: Iterable[str]
                      ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Parse exported NDJSON back into (X, cycles, kernels); validates
    the schema header against the running code."""
    feats: List[Sequence[float]] = []
    cycles: List[float] = []
    kernels: List[str] = []
    saw_header = False
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("record")
        if kind == "schema":
            if record.get("schema_hash") != feature_schema_hash():
                raise FeatureSchemaError(
                    "feature file was exported under a different schema "
                    f"(file {str(record.get('schema_hash'))[:16]}..., "
                    f"code {feature_schema_hash()[:16]}...); re-export it")
            saw_header = True
        elif kind == "row":
            values = record["features"]
            if len(values) != len(FEATURE_NAMES):
                raise FeatureSchemaError(
                    f"row has {len(values)} features, schema has "
                    f"{len(FEATURE_NAMES)}")
            feats.append(values)
            cycles.append(float(record["cycles"]))
            kernels.append(str(record["workload"]))
    if not saw_header:
        raise FeatureSchemaError("feature file is missing its schema header")
    if not feats:
        return (np.empty((0, len(FEATURE_NAMES))), np.empty(0), [])
    return (np.asarray(feats, dtype=np.float64),
            np.asarray(cycles, dtype=np.float64), kernels)


def load_feature_file(path) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Read an NDJSON feature export from *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        return read_feature_rows(fh)
