"""Learned latency surrogate (``repro.surrogate``).

A fast approximate path next to the analytical model: deterministic
architecture-independent feature extraction per (kernel, design point)
(:mod:`~repro.surrogate.features`), a dependency-free numpy trainer
with persistent versioned artifacts (:mod:`~repro.surrogate.train`),
and training-data plumbing from suite runs / NDJSON exports
(:mod:`~repro.surrogate.data`).

The surrogate never replaces the analytical model for final answers —
it *ranks*: ``explore(prefilter="surrogate")`` scores the whole design
space in microseconds and hands only the promising slice to the exact
model, and the serve daemon's ``"tier": "instant"`` answers /predict
with an approximate latency plus confidence bounds.
"""

from repro.surrogate.data import (
    FeatureSchemaError,
    export_features,
    load_feature_file,
    read_feature_rows,
    schema_header,
    training_rows,
    write_feature_rows,
)
from repro.surrogate.features import (
    DESIGN_FEATURE_NAMES,
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    KERNEL_FEATURE_NAMES,
    design_features,
    design_matrix,
    feature_schema_hash,
    feature_vector,
    kernel_features,
)
from repro.surrogate.train import (
    DEFAULT_TAG,
    SurrogateModel,
    TrainReport,
    load_model,
    model_key,
    save_model,
    spearman,
    train_surrogate,
    train_with_holdout,
)

__all__ = [
    "DEFAULT_TAG",
    "DESIGN_FEATURE_NAMES",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureSchemaError",
    "KERNEL_FEATURE_NAMES",
    "SurrogateModel",
    "TrainReport",
    "design_features",
    "design_matrix",
    "export_features",
    "feature_schema_hash",
    "feature_vector",
    "kernel_features",
    "load_feature_file",
    "load_model",
    "model_key",
    "read_feature_rows",
    "save_model",
    "schema_header",
    "spearman",
    "train_surrogate",
    "train_with_holdout",
    "training_rows",
    "write_feature_rows",
]
