"""Dependency-free surrogate trainer: ridge + boosted stumps in numpy.

The model predicts ``log1p(cycles)`` from the architecture-independent
feature vectors of :mod:`repro.surrogate.features`: a closed-form ridge
regression over standardized features captures the dominant log-linear
structure (latency is roughly multiplicative in trip counts, memory
volume, and parallelism), and a short round of gradient-boosted
decision stumps fit on the ridge residuals picks up the non-linear
remainder (feasibility cliffs, bandwidth saturation).  Everything is
plain numpy with deterministic tie-breaking, so training the same rows
twice — in any process — produces the bit-identical artifact.

Model artifacts are versioned through the persistent
:class:`~repro.cache.ArtifactCache` under the ``surrogate`` layer: the
key folds the feature-schema hash, the trainer schema version, the
device fingerprint, and a user tag, so a schema or device change makes
old artifacts unreachable rather than silently mis-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.surrogate.features import (FEATURE_NAMES, FEATURE_SCHEMA_VERSION,
                                      feature_schema_hash)

#: Default artifact tag — one trained model per (device, tag).
DEFAULT_TAG = "default"


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank), deterministic."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j)
        i = j + 1
    return ranks


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (average-tie ranks); 0.0 when either
    side is constant or fewer than two points are given."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if len(x) < 2 or len(x) != len(y):
        return 0.0
    rx, ry = _ranks(x), _ranks(y)
    sx, sy = rx.std(), ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


@dataclass
class SurrogateModel:
    """A trained latency surrogate (ridge + boosted stumps over
    standardized features, target ``log1p(cycles)``)."""

    schema_hash: str
    feature_names: Tuple[str, ...]
    schema_version: int
    mean: np.ndarray           # (d,) feature standardization
    scale: np.ndarray          # (d,)
    weights: np.ndarray        # (d,) ridge coefficients
    intercept: float
    stump_features: np.ndarray     # (r,) int feature index per round
    stump_thresholds: np.ndarray   # (r,) split point (standardized units)
    stump_left: np.ndarray         # (r,) leaf value when z <= thr
    stump_right: np.ndarray        # (r,) leaf value when z > thr
    learning_rate: float
    #: std-dev of training residuals in log space (confidence bounds)
    sigma: float
    n_rows: int
    seed: int
    alpha: float
    #: qualified workload names the model was trained on
    trained_on: Tuple[str, ...] = ()

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (np.asarray(X, dtype=np.float64) - self.mean) / self.scale

    def predict_log(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``log1p(cycles)`` for a (n, d) feature matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature matrix has {X.shape[1]} columns, model expects "
                f"{len(self.feature_names)}")
        Z = self._standardize(X)
        y = Z @ self.weights + self.intercept
        if len(self.stump_features):
            # All rounds at once: (n, r) gather of each round's split
            # feature, compared against its threshold, selecting its
            # leaf — the Python-loop equivalent is ~20x slower and
            # would dominate the instant serve tier.
            gathered = Z[:, self.stump_features]          # (n, r)
            leaves = np.where(gathered <= self.stump_thresholds,
                              self.stump_left, self.stump_right)
            y = y + self.learning_rate * leaves.sum(axis=1)
        return y

    def predict_cycles(self, X: np.ndarray) -> np.ndarray:
        """Predicted cycle counts (>= 0) for a (n, d) feature matrix."""
        return np.maximum(np.expm1(self.predict_log(X)), 0.0)

    def confidence(self, cycles: float, z: float = 2.0
                   ) -> Tuple[float, float]:
        """A (lo, hi) band around one predicted cycle count: +/- *z*
        training sigmas in log space (roughly a 95% band at z=2)."""
        log_pred = np.log1p(max(float(cycles), 0.0))
        lo = max(float(np.expm1(log_pred - z * self.sigma)), 0.0)
        hi = float(np.expm1(log_pred + z * self.sigma))
        return lo, hi

    def describe(self) -> Dict[str, object]:
        """Artifact metadata for CLI / serve provenance."""
        return {
            "schema_hash": self.schema_hash[:16],
            "schema_version": self.schema_version,
            "features": len(self.feature_names),
            "stumps": int(len(self.stump_features)),
            "sigma_log": round(self.sigma, 6),
            "rows": self.n_rows,
            "kernels": len(self.trained_on),
            "seed": self.seed,
        }


@dataclass
class TrainReport:
    """Held-out evaluation produced alongside a trained model."""

    spearman_overall: float = 0.0
    #: per-held-out-kernel Spearman across its design points
    spearman_by_kernel: Dict[str, float] = field(default_factory=dict)
    held_out: Tuple[str, ...] = ()
    train_rows: int = 0
    test_rows: int = 0

    @property
    def spearman_min(self) -> float:
        if not self.spearman_by_kernel:
            return self.spearman_overall
        return min(self.spearman_by_kernel.values())


def _fit_ridge(Z: np.ndarray, y: np.ndarray, alpha: float
               ) -> Tuple[np.ndarray, float]:
    d = Z.shape[1]
    intercept = float(y.mean())
    yc = y - intercept
    gram = Z.T @ Z + alpha * np.eye(d)
    weights = np.linalg.solve(gram, Z.T @ yc)
    return weights, intercept


def _fit_stumps(Z: np.ndarray, residual: np.ndarray, rounds: int,
                learning_rate: float, n_thresholds: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Greedy gradient-boosted stumps on the ridge residual.

    Candidate splits are per-feature quantiles (deterministic); each
    round picks the (feature, threshold) pair with the largest SSE
    reduction, with ties broken toward the lower candidate index."""
    n, d = Z.shape
    feats: List[int] = []
    thrs: List[float] = []
    lefts: List[float] = []
    rights: List[float] = []
    if rounds <= 0 or n < 4:
        empty = np.empty(0, dtype=np.float64)
        return np.empty(0, dtype=np.int64), empty, empty, empty

    # candidate masks, built once: (n_candidates, n) float matrix
    qs = np.linspace(0.05, 0.95, n_thresholds)
    cand_feature: List[int] = []
    cand_thr: List[float] = []
    masks: List[np.ndarray] = []
    for f in range(d):
        col = Z[:, f]
        if np.all(col == col[0]):
            continue
        thresholds = np.unique(np.quantile(col, qs))
        for thr in thresholds:
            mask = col <= thr
            k = int(mask.sum())
            if k == 0 or k == n:
                continue
            cand_feature.append(f)
            cand_thr.append(float(thr))
            masks.append(mask.astype(np.float64))
    if not masks:
        empty = np.empty(0, dtype=np.float64)
        return np.empty(0, dtype=np.int64), empty, empty, empty
    M = np.stack(masks)                       # (c, n)
    left_cnt = M.sum(axis=1)                  # (c,)
    right_cnt = n - left_cnt

    r = residual.copy()
    for _ in range(rounds):
        total = float(r.sum())
        left_sum = M @ r                      # (c,)
        right_sum = total - left_sum
        gain = left_sum**2 / left_cnt + right_sum**2 / right_cnt
        best = int(np.argmax(gain))
        f = cand_feature[best]
        thr = cand_thr[best]
        left_mask = M[best] > 0.5
        left_val = float(r[left_mask].mean())
        right_val = float(r[~left_mask].mean())
        feats.append(f)
        thrs.append(thr)
        lefts.append(left_val)
        rights.append(right_val)
        step = np.where(left_mask, left_val, right_val)
        r = r - learning_rate * step
    return (np.asarray(feats, dtype=np.int64),
            np.asarray(thrs, dtype=np.float64),
            np.asarray(lefts, dtype=np.float64),
            np.asarray(rights, dtype=np.float64))


def train_surrogate(X: np.ndarray, cycles: np.ndarray,
                    kernels: Optional[Sequence[str]] = None,
                    alpha: float = 1.0, rounds: int = 400,
                    learning_rate: float = 0.1, n_thresholds: int = 16,
                    seed: int = 0) -> SurrogateModel:
    """Fit a surrogate on (n, d) features and n measured cycle counts.

    *kernels* (one qualified name per row) is recorded as provenance.
    Training is fully deterministic for fixed inputs; *seed* is kept in
    the artifact for bookkeeping (the pipeline has no random step, but
    callers may subsample rows with it before calling)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.log1p(np.maximum(np.asarray(cycles, dtype=np.float64), 0.0))
    if X.ndim != 2 or X.shape[0] != len(y):
        raise ValueError("X must be (n, d) with one cycles value per row")
    if X.shape[1] != len(FEATURE_NAMES):
        raise ValueError(
            f"X has {X.shape[1]} features, schema has {len(FEATURE_NAMES)}")
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale[scale == 0.0] = 1.0
    Z = (X - mean) / scale

    weights, intercept = _fit_ridge(Z, y, alpha)
    residual = y - (Z @ weights + intercept)
    feats, thrs, lefts, rights = _fit_stumps(
        Z, residual, rounds, learning_rate, n_thresholds)

    model = SurrogateModel(
        schema_hash=feature_schema_hash(),
        feature_names=FEATURE_NAMES,
        schema_version=FEATURE_SCHEMA_VERSION,
        mean=mean, scale=scale, weights=weights, intercept=intercept,
        stump_features=feats, stump_thresholds=thrs,
        stump_left=lefts, stump_right=rights,
        learning_rate=learning_rate,
        sigma=0.0, n_rows=int(X.shape[0]), seed=seed, alpha=alpha,
        trained_on=tuple(sorted(set(kernels))) if kernels else ())
    final_residual = y - model.predict_log(X)
    model.sigma = float(final_residual.std())
    return model


def train_with_holdout(X: np.ndarray, cycles: np.ndarray,
                       kernels: Sequence[str],
                       holdout_fraction: float = 0.25,
                       **train_kwargs) -> Tuple[SurrogateModel, TrainReport]:
    """Grouped held-out evaluation + final fit on all rows.

    Whole kernels are held out (every 1/fraction-th of the sorted
    kernel list — deterministic), a model is fit on the remainder and
    scored per held-out kernel, then the returned model is re-trained
    on *all* rows so the persisted artifact sees every kernel."""
    X = np.asarray(X, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    kernels = list(kernels)
    names = sorted(set(kernels))
    stride = max(int(round(1.0 / holdout_fraction)), 2)
    held = set(names[stride - 1::stride])
    report = TrainReport(held_out=tuple(sorted(held)))

    if held and len(names) > len(held):
        test_mask = np.asarray([k in held for k in kernels])
        fit = train_surrogate(X[~test_mask], cycles[~test_mask],
                              [k for k in kernels if k not in held],
                              **train_kwargs)
        pred = fit.predict_log(X[test_mask])
        truth = np.log1p(cycles[test_mask])
        report.spearman_overall = spearman(truth, pred)
        test_kernels = [k for k in kernels if k in held]
        for name in sorted(held):
            idx = [i for i, k in enumerate(test_kernels) if k == name]
            if len(idx) >= 2:
                report.spearman_by_kernel[name] = spearman(
                    truth[idx], pred[idx])
        report.train_rows = int((~test_mask).sum())
        report.test_rows = int(test_mask.sum())

    model = train_surrogate(X, cycles, kernels, **train_kwargs)
    return model, report


# ---------------------------------------------------------------------------
# Artifact persistence (ArtifactCache "surrogate" layer)
# ---------------------------------------------------------------------------

def model_key(device, tag: str = DEFAULT_TAG) -> str:
    """Cache key of the trained artifact for (device, tag): folds the
    surrogate layer schema version, the feature-schema hash, and the
    full device fingerprint."""
    from repro.cache import SCHEMA_VERSIONS, device_fingerprint, digest
    return digest("surrogate-model", SCHEMA_VERSIONS["surrogate"],
                  feature_schema_hash(), device_fingerprint(device), tag)


def save_model(cache, model: SurrogateModel, device,
               tag: str = DEFAULT_TAG) -> str:
    """Persist *model* through the cache; returns the key."""
    key = model_key(device, tag)
    cache.put("surrogate", key, model)
    return key


def load_model(cache, device, tag: str = DEFAULT_TAG
               ) -> Optional[SurrogateModel]:
    """Load the trained artifact for (device, tag), or None if absent,
    corrupt, or from a different feature schema."""
    if cache is None:
        return None
    found, model = cache.get("surrogate", model_key(device, tag))
    if not found or model is None:
        return None
    if (getattr(model, "schema_hash", None) != feature_schema_hash()
            or tuple(getattr(model, "feature_names", ())) != FEATURE_NAMES):
        return None
    return model
