"""Barrier divergence check.

OpenCL requires ``barrier()`` to be reached by either *all* work-items
of a work-group or none (Eq. 10 of the paper prices barriers assuming
uniform arrival; hardware deadlocks when they diverge).  A barrier
diverges when it is control-dependent on a work-item-dependent branch:
reachable from exactly one of the branch's successors.  (Reachable
from both means control rejoins before the barrier — uniform; the
asymmetric case means some work-items arrive and the rest never do.
This formulation also handles barriers inside loops, where plain
post-dominance fails because the loop-exit edge skips the body.)
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Barrier, CondBranch
from repro.lint.cfg import reachable_from
from repro.lint.diagnostics import Diagnostic, Severity, span_of

CHECK_ID = "barrier-divergence"


def check_barrier_divergence(fn: Function, ctx) -> List[Diagnostic]:
    """Flag barriers reachable under work-item-dependent control flow."""
    diags: List[Diagnostic] = []
    barriers = [inst for inst in fn.instructions()
                if isinstance(inst, Barrier)]
    if not barriers:
        return diags
    divergent_branches = []
    for block in fn.reachable_blocks():
        term = block.terminator
        if isinstance(term, CondBranch) and \
                ctx.affine.value_is_tainted(term.cond):
            divergent_branches.append((block, term))
    for barrier in barriers:
        bblock = barrier.parent
        for branch_block, term in divergent_branches:
            if bblock is branch_block:
                continue
            via_then = bblock is term.then_block or \
                id(bblock) in reachable_from(term.then_block)
            via_else = bblock is term.else_block or \
                id(bblock) in reachable_from(term.else_block)
            if via_then == via_else:
                # Unreachable from the branch, or control rejoins
                # before the barrier: arrival is uniform either way.
                continue
            line, col = span_of(barrier)
            bline, bcol = span_of(term)
            diags.append(Diagnostic(
                check=CHECK_ID, severity=Severity.ERROR,
                message=(
                    f"barrier() is reachable under a work-item-dependent "
                    f"branch (condition at line {bline}): work-items may "
                    f"diverge at the barrier and deadlock the work-group"),
                function=fn.name, line=line, col=col,
                hint="hoist the barrier out of the divergent region or "
                     "make the condition uniform across the work-group",
                related=[(bline, bcol)]))
            break  # one report per barrier is enough
    return diags
