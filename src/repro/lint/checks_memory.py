"""Local-memory race and static bounds checks.

*Race*: two work-items touching the same ``__local`` element with at
least one write and no intervening ``barrier()`` is undefined behaviour
— and invisible to the performance model, which assumes the profiled
work-group is representative.  The check compares the
``get_local_id``-affine index forms of every conflicting access pair
and asks the CFG whether a barrier-free path connects them.

*Bounds*: affine index ranges are intersected with the declared
``__local``/``__private`` array extents; definite out-of-range accesses
(constant indices, or ``lid``-affine forms with a declared
``reqd_work_group_size``) are errors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.types import AddressSpace, ArrayType
from repro.lint.affine import AffineExpr, has_id_symbol
from repro.lint.cfg import barrier_free_path
from repro.lint.diagnostics import Diagnostic, Severity, span_of

RACE_CHECK_ID = "local-race"
BOUNDS_CHECK_ID = "array-bounds"


def _array_accesses(fn: Function, ctx) -> Dict[int, List[Tuple]]:
    """id(alloca result) -> [(inst, kind, index expr)] for array allocas."""
    accesses: Dict[int, List[Tuple]] = {}
    for inst in fn.instructions():
        if isinstance(inst, Load):
            pointer, kind = inst.pointer, "read"
        elif isinstance(inst, Store):
            pointer, kind = inst.pointer, "write"
        else:
            continue
        root, index = ctx.affine.pointer_root(pointer)
        alloca = ctx.affine.alloca_of(root)
        if alloca is None or not isinstance(alloca.allocated, ArrayType):
            continue
        accesses.setdefault(id(root), []).append((inst, kind, index, alloca))
    return accesses


def check_local_races(fn: Function, ctx) -> List[Diagnostic]:
    """Flag un-synchronised cross-work-item conflicts on __local arrays."""
    diags: List[Diagnostic] = []
    for entries in _array_accesses(fn, ctx).values():
        alloca = entries[0][3]
        if alloca.space != AddressSpace.LOCAL:
            continue
        writes = [e for e in entries if e[1] == "write"]
        for w_inst, _, w_idx, _ in writes:
            conflict = _find_conflict(fn, ctx, w_inst, w_idx, entries)
            if conflict is None:
                continue
            other, o_kind = conflict
            line, col = span_of(w_inst)
            oline, ocol = span_of(other)
            pair = ("another work-item's write"
                    if o_kind == "write" else "a read by another work-item")
            diags.append(Diagnostic(
                check=RACE_CHECK_ID, severity=Severity.WARNING,
                message=(
                    f"write to __local '{alloca.var_name}' may race with "
                    f"{pair} of the same element (line {oline}): no barrier "
                    f"separates the two accesses"),
                function=fn.name, line=line, col=col,
                hint="insert barrier(CLK_LOCAL_MEM_FENCE) between the "
                     "conflicting accesses",
                related=[(oline, ocol)]))
    return diags


def _find_conflict(fn: Function, ctx, w_inst: Instruction,
                   w_idx: Optional[AffineExpr], entries):
    for o_inst, o_kind, o_idx, _ in entries:
        if o_inst is w_inst:
            continue
        if not _may_overlap_across_wi(ctx, w_idx, o_idx):
            continue
        if barrier_free_path(fn, w_inst, o_inst) or \
                barrier_free_path(fn, o_inst, w_inst):
            return o_inst, o_kind
    return None


def _may_overlap_across_wi(ctx, ia: Optional[AffineExpr],
                           ib: Optional[AffineExpr]) -> bool:
    """Can two *different* work-items produce the same element index?"""
    if ia is None or ib is None:
        return True
    if ia == ib:
        # Identical forms: each work-item touches its own element iff
        # the form actually distinguishes work-items.
        if any(sym in ctx.affine.tainted_symbols for sym, _ in ia.terms):
            return True  # varies per work-item in an unknown way
        return not has_id_symbol(ia)
    return True


def check_array_bounds(fn: Function, ctx) -> List[Diagnostic]:
    """Flag statically out-of-range indices into declared arrays."""
    diags: List[Diagnostic] = []
    seen_spans = set()
    for entries in _array_accesses(fn, ctx).values():
        for inst, kind, index, alloca in entries:
            extent = alloca.allocated.count
            lo, hi = ctx.affine.expr_bounds(index)
            # Work-item ids span their whole range, so a finite bound
            # past the extent means some work-item is out of bounds on
            # every launch — a definite error, not a may-happen.
            over = hi is not None and hi >= extent
            under = lo is not None and lo < 0
            if not (over or under):
                continue
            line, col = span_of(inst)
            key = (line, col, id(alloca))
            if key in seen_spans:
                continue
            seen_spans.add(key)
            bound = f"{lo}" if lo == hi else f"[{lo}, {hi}]"
            diags.append(Diagnostic(
                check=BOUNDS_CHECK_ID, severity=Severity.ERROR,
                message=(
                    f"{kind} of '{alloca.var_name}' at index {bound} is "
                    f"out of bounds for extent {extent}"),
                function=fn.name, line=line, col=col,
                hint=f"'{alloca.var_name}' has {extent} elements; "
                     f"valid indices are 0..{extent - 1}"))
    return diags
