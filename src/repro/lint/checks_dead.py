"""Dead stores and unused kernel arguments.

Clang-style -O0 lowering gives every variable and parameter a private
stack slot, so both checks reduce to slot dataflow: a slot that is
written but never read is a dead store (wasted ALU work and, for
arrays, wasted BRAM); an argument whose slot is never read is dead
interface — often a sign the kernel was edited but the signature was
not.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import (Alloca, Cast, GetElementPtr, Load, Store)
from repro.ir.types import AddressSpace
from repro.ir.values import Argument
from repro.lint.diagnostics import Diagnostic, Severity, span_of

DEAD_CHECK_ID = "dead-store"
UNUSED_ARG_CHECK_ID = "unused-arg"


class _SlotUsage:
    """Loads/stores/escapes of one alloca slot and its derived pointers."""

    def __init__(self, alloca: Alloca) -> None:
        self.alloca = alloca
        self.pointers: Set[int] = {id(alloca.result)}
        self.loads: int = 0
        self.stores: List[Store] = []
        self.escapes: bool = False


def _slot_usage(fn: Function) -> Dict[int, _SlotUsage]:
    slots: Dict[int, _SlotUsage] = {}
    by_pointer: Dict[int, _SlotUsage] = {}
    for inst in fn.instructions():
        if isinstance(inst, Alloca):
            usage = _SlotUsage(inst)
            slots[id(inst)] = usage
            by_pointer[id(inst.result)] = usage
            continue
        # Derived pointers keep pointing at the same slot.
        if isinstance(inst, GetElementPtr) and id(inst.base) in by_pointer:
            usage = by_pointer[id(inst.base)]
            usage.pointers.add(id(inst.result))
            by_pointer[id(inst.result)] = usage
            # The gep's *index* operand may itself be a tracked pointer
            # (pathological, but would be an escape) — fall through.
        if isinstance(inst, Cast) and id(inst.value) in by_pointer and \
                inst.kind in ("bitcast", "ptrcast"):
            usage = by_pointer[id(inst.value)]
            usage.pointers.add(id(inst.result))
            by_pointer[id(inst.result)] = usage
        for op in inst.operands:
            usage = by_pointer.get(id(op))
            if usage is None:
                continue
            if isinstance(inst, Load) and op is inst.pointer:
                usage.loads += 1
            elif isinstance(inst, Store) and op is inst.pointer:
                usage.stores.append(inst)
            elif isinstance(inst, (GetElementPtr, Cast)) and \
                    id(inst.result) in usage.pointers:
                pass  # address arithmetic we already follow
            else:
                # Passed to a call, stored as data, compared, ... — the
                # address leaves our sight, so assume it is read.
                usage.escapes = True
    return slots


def _param_names(fn: Function) -> Set[str]:
    return {arg.name for arg in fn.args}


def check_dead_stores(fn: Function, ctx) -> List[Diagnostic]:
    """Flag private variables that are written but never read."""
    params = _param_names(fn)
    diags: List[Diagnostic] = []
    for usage in _slot_usage(fn).values():
        alloca = usage.alloca
        if alloca.space != AddressSpace.PRIVATE:
            continue
        if alloca.var_name in params:
            continue  # parameter copies are handled by unused-arg
        if usage.escapes or usage.loads or not usage.stores:
            continue
        line, col = span_of(usage.stores[0])
        related = [span_of(s) for s in usage.stores[1:]]
        diags.append(Diagnostic(
            check=DEAD_CHECK_ID, severity=Severity.WARNING,
            message=(
                f"value stored to '{alloca.var_name}' is never read "
                f"({len(usage.stores)} dead "
                f"store{'s' if len(usage.stores) != 1 else ''})"),
            function=fn.name, line=line, col=col,
            hint=f"remove '{alloca.var_name}' or use its value",
            related=related))
    return diags


def check_unused_args(fn: Function, ctx) -> List[Diagnostic]:
    """Flag kernel arguments whose values are never consumed."""
    # Map each parameter to its stack slot via the argument-init store.
    slot_of: Dict[str, _SlotUsage] = {}
    direct_uses: Dict[str, int] = {arg.name: 0 for arg in fn.args}
    usages = _slot_usage(fn)
    for usage in usages.values():
        for store in usage.stores:
            if isinstance(store.value, Argument) and \
                    usage.alloca.var_name == store.value.name:
                slot_of[store.value.name] = usage
    for inst in fn.instructions():
        for op in inst.operands:
            if isinstance(op, Argument) and op.name in direct_uses:
                direct_uses[op.name] += 1
    diags: List[Diagnostic] = []
    for arg in fn.args:
        usage = slot_of.get(arg.name)
        if usage is None:
            continue  # no init store — synthesised IR, stay silent
        uses_beyond_init = direct_uses[arg.name] - 1
        if uses_beyond_init > 0 or usage.escapes or usage.loads:
            continue
        line, col = span_of(usage.alloca)
        diags.append(Diagnostic(
            check=UNUSED_ARG_CHECK_ID, severity=Severity.NOTE,
            message=f"kernel argument '{arg.name}' is never used",
            function=fn.name, line=line, col=col,
            hint="drop the argument (host-side setKernelArg indices "
                 "shift) or wire it into the kernel"))
    return diags
