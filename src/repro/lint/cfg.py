"""CFG queries shared by the lint checks.

Small, self-contained graph analyses over :class:`repro.ir.Function`:
dominators and post-dominators (iterative set intersection — functions
here are a few dozen blocks at most), natural-loop membership keyed on
the loop headers recorded by the frontend (``fn.loop_meta``), and
barrier-aware path queries used by the local-memory race check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Barrier, Instruction
from repro.ir.visitor import flood, meet_over_edges


def reachable_from(block: BasicBlock) -> Set[int]:
    """Ids of blocks reachable from *block* (excluding it unless cyclic)."""
    return set(flood([block], lambda b: b.successors()))


def dominators(fn: Function) -> Dict[int, Set[int]]:
    """``dom[id(b)]`` = ids of blocks dominating *b* (including itself)."""
    preds = fn.predecessors()
    return meet_over_edges(fn.reachable_blocks(), [fn.entry],
                           lambda b: preds[b])


def postdominators(fn: Function) -> Dict[int, Set[int]]:
    """``pdom[id(b)]`` = ids of blocks post-dominating *b*.

    Blocks with no successors (returns) post-dominate only themselves;
    a virtual exit joins them.
    """
    blocks = fn.reachable_blocks()
    exits = [b for b in blocks if not b.successors()]
    return meet_over_edges(blocks, exits, lambda b: b.successors())


def immediate_postdominator(fn: Function, block: BasicBlock,
                            pdom: Optional[Dict[int, Set[int]]] = None
                            ) -> Optional[BasicBlock]:
    """The closest strict post-dominator of *block* (the join point of
    a two-way branch), or ``None`` when every path returns first.

    Among the strict post-dominators P of *block*, the immediate one is
    the unique p with ``pdom(p) == P`` — every other strict
    post-dominator also post-dominates p.
    """
    pdom = pdom if pdom is not None else postdominators(fn)
    strict = pdom.get(id(block), set()) - {id(block)}
    if not strict:
        return None
    by_id = {id(b): b for b in fn.reachable_blocks()}
    for pid in strict:
        if pdom.get(pid, set()) == strict:
            return by_id.get(pid)
    return None


def block_by_name(fn: Function, name: str) -> Optional[BasicBlock]:
    """Find a block by name, or ``None``."""
    for b in fn.blocks:
        if b.name == name:
            return b
    return None


def natural_loop(fn: Function, header: BasicBlock,
                 dom: Optional[Dict[int, Set[int]]] = None) -> Set[int]:
    """Ids of the blocks in the natural loop with *header*.

    The loop body is every block that can reach a back edge's source
    (a latch the header dominates) without passing through the header.
    """
    dom = dom if dom is not None else dominators(fn)
    preds = fn.predecessors()
    latches = [p for p in preds.get(header, [])
               if id(header) in dom.get(id(p), set())]
    # Flood backwards from the latches, damming at the header.
    body = flood(latches,
                 lambda b: (preds.get(b, []) if b is not header else []),
                 include_seeds=True)
    return {id(header)} | set(body)


def _position(inst: Instruction) -> int:
    return inst.parent.instructions.index(inst)


def _has_barrier(insts) -> bool:
    return any(isinstance(i, Barrier) for i in insts)


def barrier_free_path(fn: Function, src: Instruction,
                      dst: Instruction) -> bool:
    """Is there a CFG path from *src* to *dst* crossing no barrier?

    Used by the race check: two conflicting local accesses are safe
    only when every path between them synchronises.  Intra-block
    ordering is respected; a path may wrap around a loop back edge.
    """
    sblock, dblock = src.parent, dst.parent
    si, di = _position(src), _position(dst)
    if sblock is dblock and si < di:
        if not _has_barrier(sblock.instructions[si + 1:di]):
            return True
    # Leave src's block: no barrier may sit between src and the exit.
    if _has_barrier(sblock.instructions[si + 1:]):
        return False
    seen: Set[int] = set()
    stack: List[BasicBlock] = list(sblock.successors())
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        if b is dblock:
            if not _has_barrier(b.instructions[:di]):
                return True
            continue  # entering past dst is useless: prefix is fixed
        if _has_barrier(b.instructions):
            continue  # cannot pass through
        stack.extend(b.successors())
    return False
