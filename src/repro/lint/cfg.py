"""CFG queries shared by the lint checks.

Small, self-contained graph analyses over :class:`repro.ir.Function`:
dominators and post-dominators (iterative set intersection — functions
here are a few dozen blocks at most), natural-loop membership keyed on
the loop headers recorded by the frontend (``fn.loop_meta``), and
barrier-aware path queries used by the local-memory race check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Barrier, Instruction


def reachable_from(block: BasicBlock) -> Set[int]:
    """Ids of blocks reachable from *block* (excluding it unless cyclic)."""
    seen: Set[int] = set()
    stack = list(block.successors())
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        stack.extend(b.successors())
    return seen


def dominators(fn: Function) -> Dict[int, Set[int]]:
    """``dom[id(b)]`` = ids of blocks dominating *b* (including itself)."""
    blocks = fn.reachable_blocks()
    preds = fn.predecessors()
    all_ids = {id(b) for b in blocks}
    dom: Dict[int, Set[int]] = {
        id(b): ({id(b)} if b is fn.entry else set(all_ids)) for b in blocks}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b is fn.entry:
                continue
            incoming = [dom[id(p)] for p in preds[b] if id(p) in dom]
            new = set.intersection(*incoming) if incoming else set()
            new = new | {id(b)}
            if new != dom[id(b)]:
                dom[id(b)] = new
                changed = True
    return dom


def postdominators(fn: Function) -> Dict[int, Set[int]]:
    """``pdom[id(b)]`` = ids of blocks post-dominating *b*.

    Blocks with no successors (returns) post-dominate only themselves;
    a virtual exit joins them.
    """
    blocks = fn.reachable_blocks()
    all_ids = {id(b) for b in blocks}
    succs = {id(b): b.successors() for b in blocks}
    exits = [b for b in blocks if not succs[id(b)]]
    pdom: Dict[int, Set[int]] = {
        id(b): ({id(b)} if b in exits else set(all_ids)) for b in blocks}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b in exits:
                continue
            outgoing = [pdom[id(s)] for s in succs[id(b)] if id(s) in pdom]
            new = set.intersection(*outgoing) if outgoing else set()
            new = new | {id(b)}
            if new != pdom[id(b)]:
                pdom[id(b)] = new
                changed = True
    return pdom


def block_by_name(fn: Function, name: str) -> Optional[BasicBlock]:
    """Find a block by name, or ``None``."""
    for b in fn.blocks:
        if b.name == name:
            return b
    return None


def natural_loop(fn: Function, header: BasicBlock,
                 dom: Optional[Dict[int, Set[int]]] = None) -> Set[int]:
    """Ids of the blocks in the natural loop with *header*.

    The loop body is every block that can reach a back edge's source
    (a latch the header dominates) without passing through the header.
    """
    dom = dom if dom is not None else dominators(fn)
    preds = fn.predecessors()
    latches = [p for p in preds.get(header, [])
               if id(header) in dom.get(id(p), set())]
    loop: Set[int] = {id(header)}
    by_id = {id(b): b for b in fn.blocks}
    stack = [id(latch) for latch in latches]
    while stack:
        bid = stack.pop()
        if bid in loop:
            continue
        loop.add(bid)
        for p in preds.get(by_id[bid], []):
            stack.append(id(p))
    return loop


def _position(inst: Instruction) -> int:
    return inst.parent.instructions.index(inst)


def _has_barrier(insts) -> bool:
    return any(isinstance(i, Barrier) for i in insts)


def barrier_free_path(fn: Function, src: Instruction,
                      dst: Instruction) -> bool:
    """Is there a CFG path from *src* to *dst* crossing no barrier?

    Used by the race check: two conflicting local accesses are safe
    only when every path between them synchronises.  Intra-block
    ordering is respected; a path may wrap around a loop back edge.
    """
    sblock, dblock = src.parent, dst.parent
    si, di = _position(src), _position(dst)
    if sblock is dblock and si < di:
        if not _has_barrier(sblock.instructions[si + 1:di]):
            return True
    # Leave src's block: no barrier may sit between src and the exit.
    if _has_barrier(sblock.instructions[si + 1:]):
        return False
    seen: Set[int] = set()
    stack: List[BasicBlock] = list(sblock.successors())
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        if b is dblock:
            if not _has_barrier(b.instructions[:di]):
                return True
            continue  # entering past dst is useless: prefix is fixed
        if _has_barrier(b.instructions):
            continue  # cannot pass through
        stack.extend(b.successors())
    return False
