"""Static kernel linter: performance-hazard diagnostics over the IR.

Runs entirely at compile time — no execution, no profiling — and flags
the hazards the analytical model prices (or assumes away): divergent
barriers, ``__local`` races, out-of-bounds static indices, uncoalesced
global access strides, RecMII-bounding recurrences, and dead code.
"""

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.runner import (ALL_CHECKS, LintContext, lint_function,
                               lint_module, lint_source)

__all__ = [
    "ALL_CHECKS",
    "Diagnostic",
    "LintContext",
    "Severity",
    "lint_function",
    "lint_module",
    "lint_source",
]
