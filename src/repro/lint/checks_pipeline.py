"""RecMII hazard check: loop-carried dependences that bound II.

The paper's Eqs. 2–4 bound the initiation interval by
``RecMII = max over cycles of ceil(latency / distance)``.  The profiler
discovers inter-work-item recurrences dynamically; this check finds the
*static* recurrences every pipelined loop carries — an accumulator read
and rewritten each iteration, or a read-modify-write of the same local/
global element — and prices the dependence chain with the nominal op
latencies so the user sees *why* II is bounded before ever profiling.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Load, Store
from repro.ir.types import ArrayType
from repro.latency.optable import OpLatencyTable
from repro.lint.cfg import block_by_name, dominators, natural_loop
from repro.lint.diagnostics import Diagnostic, Severity, span_of

CHECK_ID = "recmii-hazard"

#: chains at or below this RecMII are the trivial induction-variable
#: update every loop has; reporting them would be noise
TRIVIAL_RECMII = 1.0


def check_recmii_hazards(fn: Function, ctx) -> List[Diagnostic]:
    """Flag loop-carried dependence chains that bound RecMII above 1."""
    loop_meta = getattr(fn, "loop_meta", [])
    if not loop_meta:
        return []
    table = OpLatencyTable()
    dom = dominators(fn)
    diags: List[Diagnostic] = []
    reported: Set[Tuple[int, str]] = set()
    for meta in loop_meta:
        header = block_by_name(fn, meta.header)
        if header is None:
            continue
        loop = natural_loop(fn, header, dom)
        if len(loop) <= 1:
            continue
        for name, load, store, latency in _loop_carried(fn, ctx, loop, table):
            rec_mii = math.ceil(latency)
            if rec_mii <= TRIVIAL_RECMII:
                continue
            key = (meta.line, name)
            if key in reported:
                continue
            reported.add(key)
            line, col = span_of(store)
            lline, lcol = span_of(load)
            diags.append(Diagnostic(
                check=CHECK_ID, severity=Severity.NOTE,
                message=(
                    f"loop at line {meta.line} carries a dependence on "
                    f"'{name}' (read at line {lline}, rewritten here; "
                    f"chain ≈ {latency:.0f} cycles): RecMII ≥ {rec_mii}, "
                    f"so II cannot drop below {rec_mii} (Eqs. 2-4)"),
                function=fn.name, line=line, col=col,
                hint="break the recurrence (e.g. partial sums) to let the "
                     "pipeline reach II=1",
                related=[(lline, lcol)]))
    return diags


def _loop_carried(fn: Function, ctx, loop: Set[int], table: OpLatencyTable):
    """Yield ``(var name, load, store, chain latency)`` dependences."""
    loads: List[Load] = []
    stores: List[Store] = []
    for block in fn.blocks:
        if id(block) not in loop:
            continue
        for inst in block.instructions:
            if isinstance(inst, Load):
                loads.append(inst)
            elif isinstance(inst, Store):
                stores.append(inst)
    for store in stores:
        s_root, s_idx = ctx.affine.pointer_root(store.pointer)
        for load in loads:
            l_root, l_idx = ctx.affine.pointer_root(load.pointer)
            if l_root is not s_root:
                continue
            name = ctx.affine.buffer_name(s_root)
            alloca = ctx.affine.alloca_of(s_root)
            if alloca is not None and not isinstance(alloca.allocated,
                                                     ArrayType):
                # Scalar slot: same address by construction.
                same_address = True
            else:
                # Array / pointer: the address must be provably the
                # same every iteration — equal affine forms with no
                # loop-variable symbol (those advance per iteration).
                if s_idx is None or l_idx is None or s_idx != l_idx:
                    continue
                if any(sym.startswith("var:") for sym in s_idx.symbols()):
                    continue
                same_address = True
            if not same_address:
                continue
            chain = _chain_latency(fn, loop, load, store, table)
            if chain is None:
                continue
            yield name, load, store, chain


def _chain_latency(fn: Function, loop: Set[int], load: Load, store: Store,
                   table: OpLatencyTable) -> Optional[float]:
    """Longest register path load -> store.value, in cycles.

    ``None`` when the stored value does not depend on the load — then
    there is no recurrence, just a dead read-write pair.
    """
    best: Dict[int, float] = {id(load.result): table.latency(load)}
    for block in fn.blocks:
        if id(block) not in loop:
            continue
        for inst in block.instructions:
            if inst.result is None or id(inst.result) in best:
                continue
            reaching = [best[id(op)] for op in inst.operands
                        if id(op) in best]
            if reaching:
                best[id(inst.result)] = max(reaching) + table.latency(inst)
    chain = best.get(id(store.value))
    if chain is None:
        return None
    return chain + table.latency(store)
