"""Static coalescing / stride hazard check for global accesses.

Classifies every ``__global`` load/store by the element stride between
consecutive work-items, derived from the access's affine index form —
the static counterpart of the profiled classification in
:mod:`repro.analysis.memtrace`:

- stride 1 (unit): consecutive work-items touch consecutive elements —
  SDAccel coalesces these into wide bursts; row-buffer hits dominate.
- stride 0 (broadcast): every work-item reads the same element — a
  single request serves the group.
- stride > 1 or unknown: requests cannot be merged; the DRAM stream
  degrades towards the row-miss rows of Table 1
  (:class:`repro.dram.patterns.AccessPattern`), each paying the full
  activate+CAS penalty.
"""

from __future__ import annotations

from typing import List

from repro.dram.patterns import AccessPattern
from repro.ir.function import Function
from repro.ir.instructions import Load, Store
from repro.ir.types import AddressSpace, PointerType
from repro.lint.diagnostics import Diagnostic, Severity, span_of

CHECK_ID = "global-stride"


def check_global_strides(fn: Function, ctx) -> List[Diagnostic]:
    """Classify each __global access by inter-work-item stride."""
    diags: List[Diagnostic] = []
    seen = set()
    for inst in fn.instructions():
        if isinstance(inst, Load):
            pointer, kind = inst.pointer, "read"
        elif isinstance(inst, Store):
            pointer, kind = inst.pointer, "write"
        else:
            continue
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType) or \
                ptr_type.space != AddressSpace.GLOBAL:
            continue
        root, index = ctx.affine.pointer_root(pointer)
        buffer = ctx.affine.buffer_name(root)
        elem_bytes = ptr_type.pointee.bytes
        stride = ctx.affine.wi_stride(index)
        miss = (AccessPattern.RAR_MISS if kind == "read"
                else AccessPattern.WAW_MISS)
        if stride is None:
            if index is not None and not ctx.affine.expr_is_per_wi(index):
                continue  # uniform but opaque: a broadcast, coalescible
            message = (
                f"{kind} of __global '{buffer}' has a data-dependent "
                f"(irregular) index across work-items: accesses cannot "
                f"be coalesced and DRAM traffic degrades towards "
                f"'{miss.value}' (Table 1)")
            hint = ("stage the data through __local memory or restructure "
                    "the index to be affine in get_global_id")
        elif stride in (0, 1):
            continue  # broadcast / unit-stride: coalescible
        else:
            message = (
                f"{kind} of __global '{buffer}' is strided across "
                f"work-items ({stride} elements = "
                f"{abs(stride) * elem_bytes} B between neighbours): "
                f"coalescing is defeated and row misses "
                f"('{miss.value}', Table 1) dominate")
            hint = ("transpose the access so consecutive work-items touch "
                    "consecutive elements, or tile through __local memory")
        line, col = span_of(inst)
        key = (line, col, kind, buffer)
        if key in seen:
            continue
        seen.add(key)
        diags.append(Diagnostic(
            check=CHECK_ID, severity=Severity.WARNING, message=message,
            function=fn.name, line=line, col=col, hint=hint))
    return diags
