"""Affine-expression and work-item-dependence analysis over the IR.

The frontend lowers in Clang -O0 style — every variable lives in a
private stack slot — so recovering ``get_local_id``-affine index forms
requires forwarding values through those slots.  This module does that
statically (no execution):

- :class:`AffineExpr` — ``const + Σ coeff·symbol`` over a small symbol
  vocabulary (work-item ids, scalar kernel arguments, loop-variable
  slots, opaque registers);
- :class:`AffineAnalysis` — per-function: evaluates any IR value to an
  affine form, resolves pointer values to ``(base, index)`` roots, and
  computes the *work-item-dependence taint* (does a value vary between
  work-items of one work-group?) by fixpoint over the slot graph.

The checks use the affine forms to reason about local-memory races,
static bounds, and global-access stride (Table 1 patterns), and the
taint to detect barrier divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, PointerType
from repro.ir.values import Argument, Constant, Register, Value
from repro.ir.visitor import Dispatcher

#: Builtins whose result is the same for every work-item of a group.
_UNIFORM_BUILTINS = {
    "get_group_id", "get_num_groups", "get_local_size", "get_global_size",
    "get_global_offset", "get_work_dim",
}
#: Builtins whose result distinguishes work-items within a group.
_PER_WI_BUILTINS = {"get_local_id", "get_global_id"}

_ID_SYMBOL_PREFIX = {
    "get_local_id": "lid", "get_global_id": "gid", "get_group_id": "grp",
    "get_local_size": "lsz", "get_global_size": "gsz",
    "get_num_groups": "ngrp",
}

#: Symbols that step by exactly 1 between consecutive work-items
#: (dimension 0 is the fastest-varying in the flat NDRange).
_DIM0_LINEAR = {"lid0", "gid0"}
#: Per-work-item symbols in higher dimensions: they vary between
#: work-items but not linearly with the flat work-item index.
_HIGHER_DIM_IDS = {"lid1", "lid2", "gid1", "gid2"}


def has_id_symbol(expr: "AffineExpr") -> bool:
    """Does the form contain a work-item id with nonzero coefficient?"""
    return any(sym in _DIM0_LINEAR or sym in _HIGHER_DIM_IDS
               for sym, _ in expr.terms)


@dataclass(frozen=True)
class AffineExpr:
    """``const + Σ coeff·symbol`` with integer coefficients."""

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    # -- constructors ----------------------------------------------------

    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr(const=int(value))

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "AffineExpr":
        if coeff == 0:
            return AffineExpr()
        return AffineExpr(terms=((name, coeff),))

    # -- algebra ---------------------------------------------------------

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        coeffs = dict(self.terms)
        for sym, c in other.terms:
            coeffs[sym] = coeffs.get(sym, 0) + c
        terms = tuple(sorted((s, c) for s, c in coeffs.items() if c != 0))
        return AffineExpr(const=self.const + other.const, terms=terms)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self + other.scaled(-1)

    def scaled(self, factor: int) -> "AffineExpr":
        if factor == 0:
            return AffineExpr()
        terms = tuple(sorted((s, c * factor) for s, c in self.terms))
        return AffineExpr(const=self.const * factor, terms=terms)

    # -- queries ---------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coeff(self, symbol: str) -> int:
        for sym, c in self.terms:
            if sym == symbol:
                return c
        return 0

    def symbols(self) -> List[str]:
        return [sym for sym, _ in self.terms]

    def has_opaque(self) -> bool:
        """Does the form contain a symbol with unknown structure?"""
        return any(sym.split(":")[0] in ("var", "reg", "mem")
                   for sym, _ in self.terms)

    def __str__(self) -> str:
        parts = [f"{c}*{s}" if c != 1 else s for s, c in self.terms]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


class AffineAnalysis(Dispatcher):
    """Static value analysis for one IR function.

    Affine evaluation of instruction results dispatches through the
    shared :class:`~repro.ir.visitor.Dispatcher` base (``_eval_<Class>``
    methods); unhandled instruction classes fall back to an opaque
    symbol via :meth:`generic_visit`.
    """

    visit_prefix = "_eval_"

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        #: defining instruction of each register
        self.defs: Dict[int, Instruction] = {}
        #: alloca-result register id -> the Alloca instruction
        self.allocas: Dict[int, Alloca] = {}
        #: alloca id -> stores whose pointer is exactly that slot
        self.slot_stores: Dict[int, List[Store]] = {}
        self._slot_seq: Dict[int, int] = {}
        self._memo: Dict[int, Optional[AffineExpr]] = {}
        self._in_progress: Set[int] = set()
        self._scan()
        #: opaque symbols known to vary between work-items
        self.tainted_symbols: Set[str] = set()
        self._tainted_values: Set[int] = set()
        self._tainted_slots: Set[int] = set()
        self._compute_taint()

    # -- scanning --------------------------------------------------------

    def _scan(self) -> None:
        for inst in self.fn.instructions():
            if inst.result is not None:
                self.defs[id(inst.result)] = inst
            if isinstance(inst, Alloca):
                self.allocas[id(inst.result)] = inst
                self.slot_stores.setdefault(id(inst.result), [])
                self._slot_seq[id(inst.result)] = len(self._slot_seq)
        for inst in self.fn.instructions():
            if isinstance(inst, Store) and id(inst.pointer) in self.allocas:
                self.slot_stores[id(inst.pointer)].append(inst)

    def alloca_of(self, value: Value) -> Optional[Alloca]:
        return self.allocas.get(id(value))

    # -- work-item-dependence taint --------------------------------------

    def _compute_taint(self) -> None:
        """Fixpoint: which values can differ between work-items?"""
        changed = True
        while changed:
            changed = False
            for inst in self.fn.instructions():
                if inst.result is not None and self._inst_tainted(inst):
                    if id(inst.result) not in self._tainted_values:
                        self._tainted_values.add(id(inst.result))
                        changed = True
                if isinstance(inst, Store):
                    # A store taints the slot (or whole private array,
                    # for gep stores) if the value or the index varies.
                    root, _ = self.pointer_root(inst.pointer)
                    rid = id(root)
                    if rid in self.allocas and rid not in self._tainted_slots:
                        if (id(inst.value) in self._tainted_values
                                or self._gep_index_tainted(inst.pointer)):
                            self._tainted_slots.add(rid)
                            changed = True

    def _gep_index_tainted(self, pointer: Value) -> bool:
        cur = pointer
        while isinstance(cur, Register):
            d = self.defs.get(id(cur))
            if isinstance(d, GetElementPtr):
                if id(d.index) in self._tainted_values:
                    return True
                cur = d.base
            elif isinstance(d, Cast):
                cur = d.value
            else:
                break
        return False

    def _inst_tainted(self, inst: Instruction) -> bool:
        if isinstance(inst, Call):
            if inst.callee in _PER_WI_BUILTINS:
                return True
            if inst.callee.startswith("atomic_") or inst.callee.startswith("atom_"):
                return True
            if inst.callee in _UNIFORM_BUILTINS:
                return False
            return any(id(op) in self._tainted_values for op in inst.operands)
        if isinstance(inst, Load):
            ptr_type = inst.pointer.type
            if isinstance(ptr_type, PointerType) and \
                    ptr_type.space != AddressSpace.PRIVATE:
                # Global/local/constant loads: the address (hence the
                # data) may be work-item dependent; constant space is
                # uniform only for uniform indices.
                if ptr_type.space == AddressSpace.CONSTANT:
                    return self._gep_index_tainted(inst.pointer)
                return True
            root, _ = self.pointer_root(inst.pointer)
            rid = id(root)
            if rid in self.allocas:
                return (rid in self._tainted_slots
                        or self._gep_index_tainted(inst.pointer))
            return True  # loads through unresolved pointers: be safe
        if isinstance(inst, Alloca):
            return False
        return any(id(op) in self._tainted_values for op in inst.operands)

    def value_is_tainted(self, value: Value) -> bool:
        """Can *value* differ between work-items of one work-group?"""
        if isinstance(value, Constant):
            return False
        if isinstance(value, Argument):
            return False  # same kernel arguments for every work-item
        return id(value) in self._tainted_values

    def expr_is_per_wi(self, expr: Optional[AffineExpr]) -> bool:
        """Does the affine form vary between work-items?"""
        if expr is None:
            return True  # unknown: assume the worst
        for sym, _ in expr.terms:
            if sym in _DIM0_LINEAR or sym in _HIGHER_DIM_IDS:
                return True
            if sym in self.tainted_symbols:
                return True
        return False

    # -- affine evaluation -----------------------------------------------

    def expr_of(self, value: Value) -> Optional[AffineExpr]:
        """*value* as an affine form, or ``None`` for non-integer values.

        Unknown-but-fixed integer values become opaque symbols so two
        uses of the same register still compare equal.
        """
        key = id(value)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:
            # Cyclic slot dependence (e.g. `i = i + 1`): opaque.
            return self._opaque_for(value)
        self._in_progress.add(key)
        try:
            expr = self._eval(value)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = expr
        return expr

    def _eval(self, value: Value) -> Optional[AffineExpr]:
        if isinstance(value, Constant):
            if isinstance(value.value, bool) or isinstance(value.value, int):
                return AffineExpr.constant(int(value.value))
            return None
        if isinstance(value, Argument):
            if isinstance(value.type, PointerType):
                return None
            if value.type.is_float:
                return None
            return AffineExpr.symbol(f"arg:{value.name}")
        if not isinstance(value, Register):
            return None
        if value.type.is_float:
            return None
        inst = self.defs.get(id(value))
        if inst is None:
            return self._opaque_for(value)
        return self.visit(inst, value)

    def generic_visit(self, inst: Instruction,
                      value: Register) -> Optional[AffineExpr]:
        return self._opaque_for(value)

    def _eval_Cast(self, inst: Cast, value: Register) -> Optional[AffineExpr]:
        if inst.kind in ("trunc", "zext", "sext", "bitcast", "ptrcast"):
            inner = self.expr_of(inst.value)
            return inner if inner is not None else self._opaque_for(value)
        return self._opaque_for(value)

    def _eval_BinaryOp(self, inst: BinaryOp,
                       value: Register) -> Optional[AffineExpr]:
        lhs = self.expr_of(inst.lhs)
        rhs = self.expr_of(inst.rhs)
        if lhs is None or rhs is None:
            return self._opaque_for(value)
        op = inst.opcode
        if op == "add":
            return lhs + rhs
        if op == "sub":
            return lhs - rhs
        if op == "mul":
            if rhs.is_constant:
                return lhs.scaled(rhs.const)
            if lhs.is_constant:
                return rhs.scaled(lhs.const)
            return self._opaque_for(value)
        if op == "shl" and rhs.is_constant and 0 <= rhs.const < 63:
            return lhs.scaled(1 << rhs.const)
        if op == "div" and rhs.is_constant and rhs.const != 0 \
                and lhs.is_constant:
            return AffineExpr.constant(lhs.const // rhs.const)
        return self._opaque_for(value)

    def _eval_Call(self, inst: Call, value: Register) -> Optional[AffineExpr]:
        prefix = _ID_SYMBOL_PREFIX.get(inst.callee)
        if prefix is not None and inst.operands:
            dim = self.expr_of(inst.operands[0])
            if dim is not None and dim.is_constant and 0 <= dim.const <= 2:
                return AffineExpr.symbol(f"{prefix}{dim.const}")
        if inst.callee == "get_work_dim":
            return AffineExpr.symbol("wdim")
        return self._opaque_for(value)

    def _eval_Load(self, inst: Load, value: Register) -> Optional[AffineExpr]:
        slot = self.allocas.get(id(inst.pointer))
        if slot is not None and not isinstance(slot.allocated, ArrayType) \
                and slot.space == AddressSpace.PRIVATE:
            stores = self.slot_stores.get(id(inst.pointer), [])
            if len(stores) == 1:
                fwd = self.expr_of(stores[0].value)
                if fwd is not None:
                    return fwd
            # Multi-store slot (loop variable, accumulator): one symbol
            # per slot so `a[i]` and `b[i]` share the same form.
            sym = f"var:{slot.var_name}#{self._slot_seq[id(inst.pointer)]}"
            if id(inst.pointer) in self._tainted_slots:
                self.tainted_symbols.add(sym)
            return AffineExpr.symbol(sym)
        return self._opaque_for(value)

    def _opaque_for(self, value: Value) -> Optional[AffineExpr]:
        if isinstance(value.type, PointerType):
            return None
        if getattr(value.type, "is_float", False):
            return None
        name = getattr(value, "name", "") or "anon"
        sym = f"reg:{name}#{id(value) & 0xffff}"
        if id(value) in self._tainted_values:
            self.tainted_symbols.add(sym)
        return AffineExpr.symbol(sym)

    # -- pointers --------------------------------------------------------

    def pointer_root(self, pointer: Value) -> Tuple[Value, Optional[AffineExpr]]:
        """Resolve a pointer to ``(base, element index)``.

        *base* is the underlying alloca result register or kernel
        argument; the index is the accumulated affine element offset
        (``None`` when any step is non-affine).
        """
        index: Optional[AffineExpr] = AffineExpr.constant(0)
        cur = pointer
        while isinstance(cur, Register):
            inst = self.defs.get(id(cur))
            if isinstance(inst, GetElementPtr):
                step = self.expr_of(inst.index)
                index = index + step if (index is not None
                                         and step is not None) else None
                cur = inst.base
            elif isinstance(inst, Cast) and inst.kind in ("ptrcast", "bitcast"):
                cur = inst.value
            elif isinstance(inst, Alloca):
                return cur, index
            else:
                return cur, index
        return cur, index

    def buffer_name(self, root: Value) -> str:
        """Human name of the buffer a resolved pointer root refers to."""
        if isinstance(root, Argument):
            return root.name
        alloca = self.allocas.get(id(root))
        if alloca is not None:
            return alloca.var_name
        inst = self.defs.get(id(root))
        if isinstance(inst, Load):
            stores = self.slot_stores.get(id(inst.pointer), [])
            if len(stores) == 1 and isinstance(stores[0].value, Argument):
                return stores[0].value.name
            slot = self.allocas.get(id(inst.pointer))
            if slot is not None:
                return slot.var_name
        return getattr(root, "name", "") or "<pointer>"

    # -- strides & bounds ------------------------------------------------

    def wi_stride(self, index: Optional[AffineExpr]) -> Optional[int]:
        """Element stride between consecutive work-items, or ``None``.

        Consecutive work-items differ by +1 in ``lid0`` and ``gid0``;
        uniform symbols (arguments, loop variables) cancel out.  Any
        per-work-item symbol beyond the dimension-0 ids makes the
        stride statically unknown.
        """
        if index is None:
            return None
        stride = 0
        for sym, c in index.terms:
            if sym in _DIM0_LINEAR:
                stride += c
            elif sym in _HIGHER_DIM_IDS or sym in self.tainted_symbols:
                return None
        return stride

    def expr_bounds(self, expr: Optional[AffineExpr]
                    ) -> Tuple[Optional[int], Optional[int]]:
        """Best-effort ``[lo, hi]`` interval of an affine form."""
        if expr is None:
            return None, None
        lo: Optional[int] = expr.const
        hi: Optional[int] = expr.const
        for sym, c in expr.terms:
            slo, shi = self._symbol_range(sym)
            if c >= 0:
                term_lo = None if slo is None else c * slo
                term_hi = None if shi is None else c * shi
            else:
                term_lo = None if shi is None else c * shi
                term_hi = None if slo is None else c * slo
            lo = None if (lo is None or term_lo is None) else lo + term_lo
            hi = None if (hi is None or term_hi is None) else hi + term_hi
        return lo, hi

    def _symbol_range(self, sym: str) -> Tuple[Optional[int], Optional[int]]:
        wgs = self.fn.reqd_work_group_size
        if sym.startswith("lid"):
            dim = int(sym[3:])
            if wgs is not None and dim < len(wgs):
                return 0, max(int(wgs[dim]) - 1, 0)
            return 0, None
        if sym[:3] in ("gid", "grp", "lsz", "gsz") or sym.startswith("ngrp"):
            return 0, None
        if sym == "wdim":
            return 1, 3
        return None, None
