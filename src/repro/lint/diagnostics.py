"""Structured, source-located diagnostics.

Every lint check produces :class:`Diagnostic` records.  A diagnostic
carries the check id (stable, kebab-case — the CLI's ``--check`` filter
and the JSON output key on it), a severity, a human message, and the
``(line, col)`` source span propagated from the lexer through the AST
into the IR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are definite correctness violations (the model's
    prediction for such a kernel is meaningless); ``WARNING`` findings
    are probable correctness or performance hazards; ``NOTE`` findings
    explain model behaviour (e.g. why II is bounded) without implying
    anything is wrong.
    """

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"note": 0, "warning": 1, "error": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass
class Diagnostic:
    """One finding, located in the kernel source."""

    check: str                       # stable check id, e.g. 'local-race'
    severity: Severity
    message: str
    function: str = ""               # kernel the finding is in
    line: int = 0                    # 1-based; 0 = no source location
    col: int = 0
    hint: str = ""                   # optional remediation advice
    #: spans of other involved sites (e.g. the divergent branch for a
    #: barrier, the racing read for a write)
    related: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def span(self) -> Tuple[int, int]:
        return (self.line, self.col)

    def sort_key(self):
        return (self.line, self.col, -self.severity.rank, self.check)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (round-trips through ``json``)."""
        out: Dict[str, object] = {
            "check": self.check,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "line": self.line,
            "col": self.col,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.related:
            out["related"] = [list(span) for span in self.related]
        return out

    def format(self, source_name: str = "<kernel>") -> str:
        """gcc-style one-line rendering."""
        loc = f"{source_name}:{self.line}:{self.col}"
        text = f"{loc}: {self.severity}: [{self.check}] {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text


def span_of(inst) -> Tuple[int, int]:
    """The ``(line, col)`` of an IR instruction, or ``(0, 0)``."""
    span: Optional[Tuple[int, int]] = getattr(inst, "span", None)
    return span if span else (0, 0)


def sort_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Order diagnostics by source position, then severity, then check."""
    return sorted(diags, key=Diagnostic.sort_key)
