"""Determinism classifier: which IR values are pure functions of the
launch geometry and the scalar kernel arguments?

A value is **deterministic** (DET) when the trace synthesizer can
compute it without ever reading memory contents: constants, integer
arguments, work-item ids, and any integer/pointer arithmetic over
those.  Everything touched by a float, a global/local/constant load, an
atomic result, or an unmodelled call is **unknown** — and the
classifier remembers the *leaf* cause ("float", "global-load",
"call:foo"...) so IRREGULAR verdicts stay explainable.

The frontend lowers at -O0 (every variable is a private stack slot), so
determinism flows through slots: a slot is DET iff **every** store into
it writes a DET value at a DET offset.  Loads from a slot read the
slot's current judgement, which breaks `i = i + 1` style cycles; a
whole-function fixpoint (optimistic, monotonically decreasing) then
converges in at most #slots+1 passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, PointerType
from repro.ir.values import Argument, Constant, Register, Value
from repro.ir.visitor import Dispatcher

#: NDRange geometry builtins: per-lane but launch-determined.
ID_BUILTINS = frozenset({
    "get_local_id", "get_global_id", "get_group_id",
    "get_local_size", "get_global_size", "get_num_groups",
    "get_global_offset", "get_work_dim",
})

#: Integer builtins that are pure functions of their arguments.
INT_BUILTINS = frozenset({"min", "max", "abs", "clamp", "mul24", "mad24"})

_SPACE_REASON = {
    AddressSpace.GLOBAL: "global-load",
    AddressSpace.LOCAL: "local-load",
    AddressSpace.CONSTANT: "constant-load",
}


def _float_builtins() -> frozenset:
    # The executor owns the authoritative builtin tables; import lazily
    # to keep module import order free of cycles.
    from repro.interp.executor import FLOAT_BUILTINS
    return FLOAT_BUILTINS


class Classifier(Dispatcher):
    """Per-value determinism judgements for one lowered kernel.

    ``value_reason(v)`` returns ``None`` when *v* is deterministic, else
    the leaf reason it is not.  ``pointer_root(p)`` resolves a pointer
    to its underlying buffer argument or alloca, following private
    pointer slots (``float *p = a + off; ...``), with loop-carried
    self-references (``p += stride``) unified away.
    """

    visit_prefix = "_det_"

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.defs: Dict[int, Instruction] = {}
        self.allocas: Dict[int, Alloca] = {}
        self.slot_stores: Dict[int, List[Store]] = {}
        for inst in fn.instructions():
            if inst.result is not None:
                self.defs[id(inst.result)] = inst
            if isinstance(inst, Alloca):
                self.allocas[id(inst.result)] = inst
                self.slot_stores[id(inst.result)] = []
        for inst in fn.instructions():
            if isinstance(inst, Store):
                root = self._strip_geps(inst.pointer)
                if id(root) in self.allocas:
                    self.slot_stores[id(root)].append(inst)
        #: slot id -> None (DET) or the leaf reason it is not
        self.slot_reason: Dict[int, Optional[str]] = {
            sid: None for sid in self.allocas}
        self._memo: Dict[int, Optional[str]] = {}
        self._fixpoint()

    # -- fixpoint --------------------------------------------------------

    def _fixpoint(self) -> None:
        # Optimistic start (every slot DET); each pass demotes slots
        # whose stores are not provably DET under the current
        # assumptions.  Demotion is monotone, so at most #slots + 1
        # passes run; the last pass makes no change, which means the
        # memo it leaves behind is consistent with the final judgement.
        changed = True
        while changed:
            changed = False
            self._memo.clear()
            for sid, stores in self.slot_stores.items():
                if self.slot_reason[sid] is not None:
                    continue
                reason = None
                for st in stores:
                    reason = (self.value_reason(st.value)
                              or self._offset_reason(st.pointer))
                    if reason is not None:
                        break
                if reason is not None:
                    self.slot_reason[sid] = reason
                    changed = True

    # -- public queries --------------------------------------------------

    def value_reason(self, value: Value) -> Optional[str]:
        """``None`` iff *value* is deterministic; else the leaf cause."""
        if isinstance(value, Constant):
            return "float" if value.type.is_float else None
        if isinstance(value, Argument):
            return "float" if value.type.is_float else None
        if not isinstance(value, Register):
            return f"op:{type(value).__name__}"
        key = id(value)
        if key in self._memo:
            return self._memo[key]
        if value.type.is_vector:
            reason: Optional[str] = "vector-op"
        elif value.type.is_float:
            reason = "float"
        else:
            inst = self.defs.get(key)
            reason = (self.visit(inst) if inst is not None
                      else "undefined-register")
        self._memo[key] = reason
        return reason

    def pointer_root(self, pointer: Value,
                     _active: Optional[Set[int]] = None
                     ) -> Tuple[Optional[Value], Optional[str]]:
        """Resolve *pointer* to ``(root, reason)``.

        *root* is the buffer :class:`Argument` or :class:`Alloca` result
        the pointer provably derives from (``None`` when it cannot be
        identified — a pointer escape).  *reason* is ``None`` when every
        offset applied along the way is deterministic.
        """
        root, off_reason = self._walk_geps(pointer)
        if isinstance(root, Argument):
            return root, off_reason
        if id(root) in self.allocas:
            return root, off_reason
        d = self.defs.get(id(root)) if isinstance(root, Register) else None
        if isinstance(d, Load):
            # Pointer loaded back out of a private slot: unify the
            # roots of everything ever stored into that slot.
            slot, slot_off = self._walk_geps(d.pointer)
            sid = id(slot)
            if sid in self.allocas and slot.type.space == AddressSpace.PRIVATE:
                active = _active if _active is not None else set()
                if sid in active:
                    # Loop-carried self-reference (p = p + k): it adds
                    # no new root, only offsets — already judged by the
                    # slot fixpoint.
                    return None, None
                active.add(sid)
                resolved: Optional[Value] = None
                reason = off_reason or slot_off or self.slot_reason[sid]
                for st in self.slot_stores[sid]:
                    r, w = self.pointer_root(st.value, active)
                    reason = reason or w
                    if r is None:
                        continue
                    if resolved is None:
                        resolved = r
                    elif resolved is not r:
                        return None, reason or "pointer-merge"
                active.discard(sid)
                if resolved is None:
                    return None, reason or "uninitialised-pointer"
                return resolved, reason
        if isinstance(d, Select):
            a, wa = self.pointer_root(d.operands[1], _active)
            b, wb = self.pointer_root(d.operands[2], _active)
            reason = (self.value_reason(d.operands[0]) or off_reason
                      or wa or wb)
            if a is not None and a is b:
                return a, reason
            return None, reason or "pointer-merge"
        return None, off_reason

    # -- helpers ---------------------------------------------------------

    def _strip_geps(self, pointer: Value) -> Value:
        """The base value under any GEP/pointer-cast layers."""
        cur = pointer
        while isinstance(cur, Register):
            d = self.defs.get(id(cur))
            if isinstance(d, GetElementPtr):
                cur = d.base
            elif isinstance(d, Cast) and d.kind in ("ptrcast", "bitcast"):
                cur = d.value
            else:
                break
        return cur

    def _walk_geps(self, pointer: Value
                   ) -> Tuple[Value, Optional[str]]:
        """Strip GEP/pointer-cast layers; returns the base value plus
        the first non-DET index reason met along the chain."""
        reason: Optional[str] = None
        cur = pointer
        while isinstance(cur, Register):
            d = self.defs.get(id(cur))
            if isinstance(d, GetElementPtr):
                reason = reason or self.value_reason(d.index)
                cur = d.base
            elif isinstance(d, Cast) and d.kind in ("ptrcast", "bitcast"):
                cur = d.value
            else:
                break
        return cur, reason

    def _offset_reason(self, pointer: Value) -> Optional[str]:
        _, reason = self._walk_geps(pointer)
        return reason

    # -- dispatch handlers ----------------------------------------------

    def _det_BinaryOp(self, inst: BinaryOp) -> Optional[str]:
        return (self.value_reason(inst.lhs)
                or self.value_reason(inst.rhs))

    def _det_CompareOp(self, inst: CompareOp) -> Optional[str]:
        if inst.lhs.type.is_float or inst.rhs.type.is_float:
            return "float"
        return (self.value_reason(inst.lhs)
                or self.value_reason(inst.rhs))

    def _det_Cast(self, inst: Cast) -> Optional[str]:
        if inst.kind in ("fptosi", "fptoui"):
            return "float"
        return self.value_reason(inst.value)

    def _det_Select(self, inst: Select) -> Optional[str]:
        for op in inst.operands:
            reason = self.value_reason(op)
            if reason is not None:
                return reason
        return None

    def _det_GetElementPtr(self, inst: GetElementPtr) -> Optional[str]:
        return (self.value_reason(inst.base)
                or self.value_reason(inst.index))

    def _det_Alloca(self, inst: Alloca) -> Optional[str]:
        # The address itself is launch-determined (the engine separately
        # rejects local allocas outside the entry block, whose lazy
        # allocation order the synthesizer cannot replicate).
        return None

    def _det_Load(self, inst: Load) -> Optional[str]:
        ptr_type = inst.pointer.type
        if isinstance(ptr_type, PointerType) \
                and ptr_type.space != AddressSpace.PRIVATE:
            return _SPACE_REASON.get(ptr_type.space, "load")
        root, off_reason = self._walk_geps(inst.pointer)
        if id(root) in self.allocas:
            return self.slot_reason[id(root)] or off_reason
        return "private-pointer"

    def _det_Call(self, inst: Call) -> Optional[str]:
        callee = inst.callee
        if callee in ID_BUILTINS:
            # The synthesizer indexes geometry tuples by the dimension
            # operand at compile time, so it must be an immediate.
            if inst.operands and not isinstance(inst.operands[0], Constant):
                return f"call:{callee}"
            return None
        if callee in INT_BUILTINS:
            for op in inst.operands:
                reason = self.value_reason(op)
                if reason is not None:
                    return reason
            return None
        if callee.startswith("atomic_") or callee.startswith("atom_"):
            return "atomic"
        if callee in _float_builtins():
            return "float"
        return f"call:{callee}"

    def _det_Phi(self, inst: Phi) -> Optional[str]:
        return "phi"

    def _det_PipeRead(self, inst: Instruction) -> Optional[str]:
        # A popped token's value comes from another kernel's schedule:
        # never a pure function of this kernel's launch geometry.
        return f"pipe:{inst.channel.name}"

    def generic_visit(self, inst: Instruction) -> Optional[str]:
        return f"op:{type(inst).__name__}"


def classify_function(fn: Function) -> Classifier:
    """Memoized classifier for *fn* (the judgement only depends on the
    IR, so one classification serves every NDRange and design point)."""
    cached = getattr(fn, "_determinism_classifier", None)
    if cached is None:
        cached = Classifier(fn)
        fn._determinism_classifier = cached  # type: ignore[attr-defined]
    return cached
