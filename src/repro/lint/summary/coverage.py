"""Catalog-wide summary coverage: which bundled kernels are provably
STATIC, and what keeps the rest IRREGULAR.

The golden file (``docs/static_coverage.json``) records the expected
verdict per catalog kernel.  ``check_coverage`` compares a fresh run
against it and reports **regressions** — kernels the golden file claims
STATIC that no longer are (a summary-engine change silently losing
coverage), or kernels that disappeared from the catalog.  New kernels
and new STATIC promotions are reported as improvements, never failures;
``repro coverage --update`` rewrites the golden file after intentional
changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.lint.summary.engine import SUMMARY_ENGINE_VERSION
from repro.lint.summary.model import VERDICT_STATIC

#: repo-relative location of the golden coverage file
GOLDEN_PATH = Path(__file__).resolve().parents[4] / "docs" \
    / "static_coverage.json"


def coverage_report() -> Dict[str, object]:
    """Fresh per-kernel verdicts over the whole workload catalog."""
    from repro.lint.summary.engine import summarize_kernel
    from repro.workloads import registry

    kernels: Dict[str, Dict[str, object]] = {}
    for w in registry.all_workloads():
        summary = summarize_kernel(w.function())
        kernels[w.qualified_name] = {
            "verdict": summary.verdict,
            "reasons": sorted({r.code for r in summary.reasons}),
        }
    # Pipe-program kernels live outside the single-kernel registry
    # (they cannot run standalone), but their summaries are still part
    # of the coverage contract: pipe traffic must classify, not crash.
    from repro.workloads import all_programs
    for program in all_programs():
        if not program.has_pipes:
            continue
        for fn in program.pipe_module().kernels:
            summary = summarize_kernel(fn)
            kernels[f"programs/{program.name}/{fn.name}"] = {
                "verdict": summary.verdict,
                "reasons": sorted({r.code for r in summary.reasons}),
            }
    n_static = sum(1 for k in kernels.values()
                   if k["verdict"] == VERDICT_STATIC)
    return {
        "engine_version": SUMMARY_ENGINE_VERSION,
        "static": n_static,
        "total": len(kernels),
        "kernels": kernels,
    }


def load_golden(path: Optional[Path] = None) -> Optional[Dict]:
    """The golden coverage file's contents (None when absent)."""
    p = Path(path) if path is not None else GOLDEN_PATH
    if not p.exists():
        return None
    return json.loads(p.read_text())


def write_golden(report: Optional[Dict] = None,
                 path: Optional[Path] = None) -> Path:
    """Bless *report* (default: a fresh run) as the golden file."""
    p = Path(path) if path is not None else GOLDEN_PATH
    p.write_text(json.dumps(report or coverage_report(), indent=2,
                            sort_keys=True) + "\n")
    return p


def check_coverage(report: Optional[Dict] = None,
                   golden: Optional[Dict] = None) -> List[str]:
    """Regressions of *report* against *golden* (empty list = pass).

    A regression is a kernel the golden file proves STATIC that the
    current engine no longer does, or a golden kernel missing from the
    catalog.  Promotions (irregular -> static) and brand-new kernels
    pass; run ``repro coverage --update`` to bless them.
    """
    if report is None:
        report = coverage_report()
    if golden is None:
        golden = load_golden()
    if golden is None:
        return ["no golden file at "
                f"{GOLDEN_PATH}: run `repro coverage --update`"]
    problems: List[str] = []
    current = report["kernels"]
    for name, entry in sorted(golden.get("kernels", {}).items()):
        now = current.get(name)
        if now is None:
            problems.append(f"{name}: in golden file but not in catalog")
            continue
        if entry["verdict"] == VERDICT_STATIC \
                and now["verdict"] != VERDICT_STATIC:
            why = ", ".join(now["reasons"]) or "?"
            problems.append(
                f"{name}: was STATIC, now {now['verdict']} ({why})")
    return problems
