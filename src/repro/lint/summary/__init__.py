"""Static access-summary engine (whole-kernel memory-behaviour proofs).

This package promotes the per-instruction affine reasoning of
``repro.lint.affine`` into a whole-kernel judgement: for every memory
access the kernel can perform, either a closed-form **access summary**
(an affine form over work-item ids, scalar arguments and loop
variables, with value bounds), or a proof obligation that failed — an
explicit ``IRREGULAR`` verdict carrying a machine-readable reason
(data-dependent address, data-dependent loop bound, pointer escape,
...).

A kernel whose every branch condition and every traced address is
*deterministic* — computable from the launch geometry and the scalar
arguments alone, never from memory contents — is ``STATIC``: its full
memory trace can be synthesized analytically without interpreting a
single work-item (:class:`repro.interp.synth.TraceSynthesizer`).

See ``docs/STATIC_ANALYSIS.md`` for the lattice, the verdict taxonomy,
and the fallback rules.
"""

from repro.lint.summary.classify import Classifier, classify_function
from repro.lint.summary.engine import (
    SUMMARY_ENGINE_VERSION,
    summarize_kernel,
    summarize_module,
)
from repro.lint.summary.model import (
    AccessSummary,
    IrregularReason,
    KernelSummary,
    LoopSummary,
    PipeSummary,
    REASON_CODES,
    VERDICT_IRREGULAR,
    VERDICT_STATIC,
)

__all__ = [
    "AccessSummary",
    "Classifier",
    "IrregularReason",
    "KernelSummary",
    "LoopSummary",
    "PipeSummary",
    "REASON_CODES",
    "SUMMARY_ENGINE_VERSION",
    "VERDICT_IRREGULAR",
    "VERDICT_STATIC",
    "classify_function",
    "summarize_kernel",
    "summarize_module",
]
