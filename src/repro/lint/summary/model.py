"""Data model of the access-summary engine: verdicts, reasons, and the
per-access / per-loop / per-kernel summary records.

The lattice the engine works over (documented in
``docs/STATIC_ANALYSIS.md``) is three-tiered:

    AFFINE  ⊂  DETERMINISTIC  ⊂  IRREGULAR

- ``affine``: the byte index is a linear form over the id symbols
  (``gid``/``lid``/``grp``/sizes), scalar arguments, and loop
  variables — the closed form the paper's Table 1 reasoning wants;
- ``deterministic``: not affine (integer division, modulo, shifts,
  selects...), but still a pure function of the launch geometry and
  the scalar arguments — the trace synthesizer can evaluate it without
  interpretation;
- ``irregular``: the value depends on memory contents (or on floats,
  atomics, an unsupported call...) — only the interpreter can recover
  the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

VERDICT_STATIC = "static"
VERDICT_IRREGULAR = "irregular"

#: The machine-readable verdict taxonomy.  Every IRREGULAR verdict
#: carries at least one reason drawn from this closed set, so golden
#: lists (and the CI coverage gate) can match on codes, not prose.
REASON_CODES = (
    "data-dependent-branch",     # an `if` condition reads memory/floats
    "data-dependent-loop",       # a loop bound/condition does
    "data-dependent-address",    # a traced address does
    "pointer-escape",            # a pointer's buffer cannot be resolved
    "unsupported-call",          # callee outside the modelled builtins
    "dynamic-local-alloca",      # __local alloca outside the entry block
    "pipe-read",                 # kernel pops a FIFO channel
    "pipe-write",                # kernel pushes a FIFO channel
)


@dataclass(frozen=True)
class IrregularReason:
    """One failed proof obligation."""

    code: str          # one of REASON_CODES
    where: str         # block name or "site <n>"
    detail: str = ""   # leaf cause, e.g. "global-load", "float"

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.code} at {self.where}{tail}"


@dataclass(frozen=True)
class AccessSummary:
    """Closed-form summary of one static load/store site."""

    site: int
    kind: str                    # 'read' | 'write'
    space: str                   # 'global' | 'local'
    buffer: str                  # argument name, or '__local'
    nbytes: int
    tier: str                    # 'affine' | 'deterministic' | 'irregular'
    #: element-index affine form (str) when tier == 'affine'
    index: Optional[str] = None
    #: byte stride between consecutive work-items, when provable
    wi_stride: Optional[int] = None
    #: best-effort [lo, hi] bounds of the element index
    bounds: Tuple[Optional[int], Optional[int]] = (None, None)
    #: why the site is irregular (tier == 'irregular' only)
    reason: str = ""


@dataclass(frozen=True)
class PipeSummary:
    """Static summary of one pipe read/write site.

    ``tokens_per_item`` is the number of channel operations one
    work-item performs at this site, when the enclosing loops have
    statically proven trip counts; ``None`` means the rate depends on
    data (an irregular loop encloses the site) and only co-execution
    can recover it.
    """

    site: int
    kind: str                    # 'read' | 'write'
    channel: str                 # channel name from the module table
    elem_bytes: int
    block: str                   # block holding the site
    tokens_per_item: Optional[int] = None


@dataclass(frozen=True)
class LoopSummary:
    """Trip-count judgement for one source loop."""

    header: str
    line: int
    #: 'static' (count proven at compile time), 'deterministic'
    #: (condition synthesizable, count found numerically), 'irregular'
    bound: str
    trip_count: Optional[int] = None


@dataclass
class KernelSummary:
    """Whole-kernel verdict plus its per-access evidence."""

    name: str
    verdict: str                               # VERDICT_STATIC | _IRREGULAR
    reasons: List[IrregularReason] = field(default_factory=list)
    accesses: List[AccessSummary] = field(default_factory=list)
    loops: List[LoopSummary] = field(default_factory=list)
    pipes: List[PipeSummary] = field(default_factory=list)
    #: content hash over (engine version, canonical IR) — joins the
    #: analysis cache key whenever the static trace path is used
    fingerprint: str = ""
    engine_version: int = 0

    @property
    def is_static(self) -> bool:
        return self.verdict == VERDICT_STATIC

    @property
    def reason_codes(self) -> List[str]:
        seen: List[str] = []
        for r in self.reasons:
            if r.code not in seen:
                seen.append(r.code)
        return seen

    def to_dict(self) -> dict:
        return {
            "kernel": self.name,
            "verdict": self.verdict,
            "reasons": [
                {"code": r.code, "where": r.where, "detail": r.detail}
                for r in self.reasons
            ],
            "accesses": [
                {
                    "site": a.site, "kind": a.kind, "space": a.space,
                    "buffer": a.buffer, "nbytes": a.nbytes,
                    "tier": a.tier, "index": a.index,
                    "wi_stride": a.wi_stride,
                    "bounds": list(a.bounds), "reason": a.reason,
                }
                for a in self.accesses
            ],
            "loops": [
                {"header": l.header, "line": l.line, "bound": l.bound,
                 "trip_count": l.trip_count}
                for l in self.loops
            ],
            "pipes": [
                {"site": p.site, "kind": p.kind, "channel": p.channel,
                 "elem_bytes": p.elem_bytes, "block": p.block,
                 "tokens_per_item": p.tokens_per_item}
                for p in self.pipes
            ],
            "fingerprint": self.fingerprint,
        }
