"""The summary engine: whole-kernel STATIC/IRREGULAR verdicts plus
closed-form access summaries.

``summarize_kernel`` discharges, per kernel, the proof obligations the
trace synthesizer needs:

- every branch condition is deterministic (else the executed path — and
  with it the trace — depends on memory contents);
- every traced (global/local/constant) load, store, and atomic has a
  deterministic address whose buffer can be identified;
- every call is a builtin the execution model knows;
- ``__local`` allocas sit in the entry block (their shared allocation
  order is then program order, which the synthesizer replicates).

When all obligations hold the verdict is ``STATIC`` and each access
site gets an :class:`~repro.lint.summary.model.AccessSummary` — affine
where :class:`~repro.lint.affine.AffineAnalysis` recovers a linear
form, ``deterministic`` otherwise.  Any failure yields ``IRREGULAR``
with machine-readable reasons.

The summary depends on the IR alone — not the NDRange, buffers, or
device — so it is memoized on the function and one analysis serves
every design point of a DSE sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.keys import digest, function_fingerprint
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    CondBranch,
    Load,
    PipeRead,
    PipeWrite,
    Store,
)
from repro.ir.types import AddressSpace, PointerType
from repro.lint.affine import AffineAnalysis
from repro.lint.summary.classify import Classifier, classify_function
from repro.lint.summary.model import (
    AccessSummary,
    IrregularReason,
    KernelSummary,
    LoopSummary,
    PipeSummary,
    VERDICT_IRREGULAR,
    VERDICT_STATIC,
)

#: Bump when verdict or summary semantics change: the fingerprint joins
#: the analysis cache key whenever a synthesized trace is used, so old
#: cache entries become unreachable rather than wrong.
SUMMARY_ENGINE_VERSION = 1

_TRACED_SPACES = (AddressSpace.GLOBAL, AddressSpace.LOCAL,
                  AddressSpace.CONSTANT)


def _known_builtins() -> frozenset:
    from repro.interp.executor import KNOWN_BUILTINS
    return KNOWN_BUILTINS


def summarize_kernel(fn: Function) -> KernelSummary:
    """Memoized whole-kernel summary of *fn*."""
    cached = getattr(fn, "_access_summary", None)
    if cached is None:
        cached = _summarize(fn)
        fn._access_summary = cached  # type: ignore[attr-defined]
    return cached


def summarize_module(module) -> Dict[str, KernelSummary]:
    """Summaries for every kernel in a module, keyed by kernel name."""
    return {k.name: summarize_kernel(k) for k in module.kernels}


def _summarize(fn: Function) -> KernelSummary:
    cls = classify_function(fn)
    aff = AffineAnalysis(fn)
    headers = {m.header for m in getattr(fn, "loop_meta", [])}
    sites = {id(inst): i for i, inst in enumerate(fn.instructions())}
    known = _known_builtins()

    reasons: List[IrregularReason] = []
    accesses: List[AccessSummary] = []
    pipes: List[PipeSummary] = []

    def irregular(code: str, where: str, detail: str) -> None:
        reasons.append(IrregularReason(code, where, detail or ""))

    entry = fn.entry
    for block in fn.reachable_blocks():
        term = block.terminator
        if isinstance(term, CondBranch):
            why = cls.value_reason(term.cond)
            if why is not None:
                # Attribute a loop-controlling condition to its header
                # (the condition may sit in the header or, for do-while
                # loops, in a latch branching back to it).
                succs = {s.name for s in block.successors()}
                if block.name in headers:
                    irregular("data-dependent-loop", block.name, why)
                elif succs & headers:
                    irregular("data-dependent-loop",
                              sorted(succs & headers)[0], why)
                else:
                    irregular("data-dependent-branch", block.name, why)
        for inst in block.instructions:
            if isinstance(inst, Alloca):
                if inst.space == AddressSpace.LOCAL and block is not entry:
                    irregular("dynamic-local-alloca", block.name,
                              inst.var_name)
            elif isinstance(inst, (Load, Store)):
                if inst.space in _TRACED_SPACES:
                    ptr = inst.pointer
                    acc = _summarize_access(inst, ptr, sites, cls, aff)
                    accesses.append(acc)
                    if acc.tier == "irregular":
                        root, _ = cls.pointer_root(ptr)
                        code = ("pointer-escape" if root is None
                                else "data-dependent-address")
                        irregular(code, f"site {acc.site}", acc.reason)
            elif isinstance(inst, (PipeRead, PipeWrite)):
                # A blocking FIFO op couples this kernel's schedule to
                # another kernel's: the trace is not a function of this
                # kernel alone, so the verdict is IRREGULAR and ground
                # truth comes from program co-execution.
                kind = "read" if isinstance(inst, PipeRead) else "write"
                pipes.append(PipeSummary(
                    site=sites.get(id(inst), -1),
                    kind=kind,
                    channel=inst.channel.name,
                    elem_bytes=max(inst.channel.elem_type.bytes, 1),
                    block=block.name,
                    tokens_per_item=_static_site_trips(fn, block),
                ))
                irregular(f"pipe-{kind}", block.name, inst.channel.name)
            elif isinstance(inst, Call):
                name = inst.callee
                if name not in known:
                    irregular("unsupported-call", block.name, name)
                elif name.startswith("atomic_"):
                    accesses.extend(_summarize_atomic(
                        inst, sites, cls, aff, irregular))
    loops = _summarize_loops(fn, reasons)
    verdict = VERDICT_STATIC if not reasons else VERDICT_IRREGULAR
    return KernelSummary(
        name=fn.name,
        verdict=verdict,
        reasons=reasons,
        accesses=accesses,
        loops=loops,
        pipes=pipes,
        fingerprint=digest("summary", SUMMARY_ENGINE_VERSION,
                           function_fingerprint(fn)),
        engine_version=SUMMARY_ENGINE_VERSION,
    )


def _static_site_trips(fn: Function, block) -> Optional[int]:
    """Channel ops one work-item performs at a site in *block*: the
    product of the statically proven trip counts of every loop the
    block sits in, or ``None`` if any enclosing trip count is unknown.
    """
    from repro.lint.cfg import block_by_name, dominators, natural_loop

    metas = getattr(fn, "loop_meta", [])
    if not metas:
        return 1
    dom = dominators(fn)
    trips = 1
    for meta in metas:
        header = block_by_name(fn, meta.header)
        if header is None or id(block) not in natural_loop(fn, header, dom):
            continue
        if meta.static_trip_count is None:
            return None
        trips *= int(meta.static_trip_count)
    return trips


#: symbol vocabulary an affine-tier index may mention (see
#: repro.lint.affine): id symbols, launch geometry, scalar arguments,
#: and loop-variable slots — but no opaque reg:/mem: placeholders.
_AFFINE_PREFIXES = ("lid", "gid", "grp", "lsz", "gsz", "ngrp",
                    "arg:", "var:")


def _affine_index(index) -> bool:
    if index is None:
        return False
    for sym, _ in index.terms:
        if sym == "wdim":
            continue
        if not sym.startswith(_AFFINE_PREFIXES):
            return False
    return True


def _summarize_access(inst, ptr, sites: Dict[int, int],
                      cls: Classifier, aff: AffineAnalysis
                      ) -> AccessSummary:
    if isinstance(inst, Load):
        kind, nbytes = "read", max(inst.type.bytes, 1)
    else:
        kind, nbytes = "write", max(inst.value.type.bytes, 1)
    space = ("local" if inst.space in (AddressSpace.LOCAL,
                                       AddressSpace.CONSTANT)
             else "global")
    root, index = aff.pointer_root(ptr)
    buffer = "__local" if space == "local" else aff.buffer_name(root)
    why = cls.value_reason(ptr)
    if why is not None:
        tier = "irregular"
    elif _affine_index(index):
        tier = "affine"
    else:
        tier = "deterministic"
    stride_elems = aff.wi_stride(index) if tier == "affine" else None
    return AccessSummary(
        site=sites.get(id(inst), -1),
        kind=kind, space=space, buffer=buffer, nbytes=nbytes,
        tier=tier,
        index=str(index) if tier == "affine" else None,
        wi_stride=(None if stride_elems is None
                   else stride_elems * nbytes),
        bounds=aff.expr_bounds(index) if tier != "irregular" else (None, None),
        reason=why or "",
    )


def _summarize_atomic(inst: Call, sites, cls, aff, irregular
                      ) -> List[AccessSummary]:
    """Global atomics trace one read and one write (4 bytes each);
    local atomics are untraced by the execution model."""
    if not inst.operands:
        return []
    ptr = inst.operands[0]
    if not isinstance(ptr.type, PointerType) \
            or ptr.type.space == AddressSpace.LOCAL:
        return []
    site = sites.get(id(inst), -1)
    root, index = aff.pointer_root(ptr)
    why = cls.value_reason(ptr)
    if why is not None:
        code = ("pointer-escape" if cls.pointer_root(ptr)[0] is None
                else "data-dependent-address")
        irregular(code, f"site {site}", why)
        tier = "irregular"
    elif _affine_index(index):
        tier = "affine"
    else:
        tier = "deterministic"
    buffer = aff.buffer_name(root)
    common = dict(
        site=site, space="global", buffer=buffer, nbytes=4, tier=tier,
        index=str(index) if tier == "affine" else None,
        wi_stride=None,
        bounds=aff.expr_bounds(index) if tier != "irregular" else (None, None),
        reason=why or "",
    )
    return [AccessSummary(kind="read", **common),
            AccessSummary(kind="write", **common)]


def _summarize_loops(fn: Function,
                     reasons: List[IrregularReason]) -> List[LoopSummary]:
    irregular_headers = {r.where for r in reasons
                         if r.code == "data-dependent-loop"}
    out: List[LoopSummary] = []
    for meta in getattr(fn, "loop_meta", []):
        if meta.header in irregular_headers:
            bound = "irregular"
            trip: Optional[int] = None
        elif meta.static_trip_count is not None:
            bound = "static"
            trip = int(meta.static_trip_count)
        else:
            bound = "deterministic"
            trip = None
        out.append(LoopSummary(header=meta.header, line=meta.line,
                               bound=bound, trip_count=trip))
    return out
