"""Lint driver: run the registered checks over IR and collect findings.

The entry points mirror the compilation pipeline:

- :func:`lint_function` — checks over one already-compiled kernel;
- :func:`lint_module` — every kernel in a module;
- :func:`lint_source` — compile OpenCL C and lint it, converting
  frontend/verifier failures into ``frontend`` diagnostics instead of
  exceptions, so callers always get a diagnostic list back.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.frontend.lexer import LexerError
from repro.frontend.lowering import LoweringError, compile_opencl
from repro.frontend.parser import ParseError
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verify import IRVerificationError
from repro.lint.affine import AffineAnalysis
from repro.lint.checks_barrier import check_barrier_divergence
from repro.lint.checks_coalesce import check_global_strides
from repro.lint.checks_dead import check_dead_stores, check_unused_args
from repro.lint.checks_memory import check_array_bounds, check_local_races
from repro.lint.checks_pipeline import check_recmii_hazards
from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics

FRONTEND_CHECK_ID = "frontend"


class LintContext:
    """Shared per-function analyses, built once and passed to each check."""

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self.affine = AffineAnalysis(fn)


#: check id -> check function.  Registration order is the documentation
#: order; output order is by source position regardless.
ALL_CHECKS: Dict[str, Callable[[Function, LintContext], List[Diagnostic]]] = {
    "barrier-divergence": check_barrier_divergence,
    "local-race": check_local_races,
    "array-bounds": check_array_bounds,
    "global-stride": check_global_strides,
    "recmii-hazard": check_recmii_hazards,
    "dead-store": check_dead_stores,
    "unused-arg": check_unused_args,
}


def _select(checks: Optional[Iterable[str]]) -> Dict[str, Callable]:
    if checks is None:
        return ALL_CHECKS
    unknown = sorted(set(checks) - set(ALL_CHECKS))
    if unknown:
        raise ValueError(
            f"unknown lint check(s): {', '.join(unknown)}; "
            f"known: {', '.join(ALL_CHECKS)}")
    return {cid: ALL_CHECKS[cid] for cid in ALL_CHECKS if cid in set(checks)}


def lint_function(fn: Function,
                  checks: Optional[Iterable[str]] = None) -> List[Diagnostic]:
    """Run *checks* (default: all) over one compiled kernel function."""
    ctx = LintContext(fn)
    diags: List[Diagnostic] = []
    for check in _select(checks).values():
        diags.extend(check(fn, ctx))
    return sort_diagnostics(diags)


def lint_module(module: Module,
                checks: Optional[Iterable[str]] = None) -> List[Diagnostic]:
    """Lint every kernel in *module*."""
    diags: List[Diagnostic] = []
    for fn in module.kernels:
        diags.extend(lint_function(fn, checks))
    return sort_diagnostics(diags)


def lint_source(source: str, name: str = "kernel",
                checks: Optional[Iterable[str]] = None) -> List[Diagnostic]:
    """Compile OpenCL C *source* and lint it.

    Frontend and verifier failures come back as ``frontend``
    diagnostics rather than raising, so a lint run always yields a
    report.
    """
    try:
        module = compile_opencl(source, name=name)
    except LexerError as exc:
        return [_frontend_diag(str(exc), exc.line, exc.col)]
    except ParseError as exc:
        return [_frontend_diag(str(exc), exc.token.line, exc.token.col)]
    except (LoweringError, IRVerificationError) as exc:
        return [_frontend_diag(str(exc), 0, 0)]
    return lint_module(module, checks)


def _frontend_diag(message: str, line: int, col: int) -> Diagnostic:
    return Diagnostic(check=FRONTEND_CHECK_ID, severity=Severity.ERROR,
                      message=message, line=line, col=col)
