"""NDRange kernel executor.

Executes a lowered kernel over an OpenCL NDRange with work-group and
barrier semantics: within a work-group, every work-item runs until it
hits a barrier (or finishes); the group proceeds to the next phase only
when all items have arrived, matching the OpenCL execution model.

While executing it records the artefacts the FlexCL kernel analysis
needs (paper §3.2): per-loop trip counts and the per-work-item global
memory access trace.

The executor is the profiling hot path, so instruction dispatch is
resolved once at construction: every instruction is compiled into a
closure with its operand lookups, opcode function, type masking, and
trace site id pre-bound, and every basic block becomes a flat op list.
The phase loop then only threads (tag, payload) tuples — no per-step
``isinstance`` chains or dictionary rebuilds.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.interp.memory import (
    Buffer,
    FlatSpace,
    GlobalMemory,
    PointerValue,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Load,
    PipeRead,
    PipeWrite,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, PointerType
from repro.ir.values import Argument, Constant, Register, Value


class ExecutionError(Exception):
    """Raised when a kernel performs an illegal operation at runtime."""


@dataclass(frozen=True)
class MemAccess:
    """One memory access in a work-item's trace."""

    kind: str          # 'read' | 'write'
    addr: int          # byte address in the flat address space
    nbytes: int
    buffer: str        # buffer (argument) name, or '__local'
    space: str = "global"   # 'global' | 'local'
    site: int = -1     # static instruction site id within the kernel


@dataclass
class NDRange:
    """Launch geometry.  Sizes are per dimension, up to 3 dimensions."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    def __post_init__(self) -> None:
        if isinstance(self.global_size, int):
            self.global_size = (self.global_size,)
        if isinstance(self.local_size, int):
            self.local_size = (self.local_size,)
        self.global_size = tuple(self.global_size)
        self.local_size = tuple(self.local_size)
        if len(self.global_size) != len(self.local_size):
            raise ValueError("global/local dimensionality mismatch")
        for g, l in zip(self.global_size, self.local_size):
            if l <= 0 or g <= 0 or g % l != 0:
                raise ValueError(
                    f"global size {g} not a positive multiple of local {l}")

    @property
    def dims(self) -> int:
        return len(self.global_size)

    @property
    def num_work_items(self) -> int:
        return math.prod(self.global_size)

    @property
    def work_group_size(self) -> int:
        return math.prod(self.local_size)

    @property
    def num_groups(self) -> Tuple[int, ...]:
        return tuple(g // l for g, l in
                     zip(self.global_size, self.local_size))

    @property
    def num_work_groups(self) -> int:
        return int(np.prod(self.num_groups))

    def group_ids(self) -> Iterable[Tuple[int, ...]]:
        return np.ndindex(*reversed(self.num_groups))


@dataclass
class LaunchResult:
    """Everything recorded while executing (a subset of) an NDRange."""

    groups_executed: int = 0
    work_items_executed: int = 0
    #: block-name -> execution count, aggregated over profiled work-items
    block_counts: Dict[str, int] = field(default_factory=dict)
    #: per-work-item global access traces (one list per profiled item)
    traces: List[List[MemAccess]] = field(default_factory=list)
    #: name -> average trip count, derived from block counts
    trip_counts: Dict[str, float] = field(default_factory=dict)
    #: count of barriers executed by the first profiled work-item
    barriers_per_item: int = 0


class _WorkItemState:
    """Execution state of one work-item (supports barrier suspension).

    Instances are pooled by the executor and reset between work-groups
    instead of reallocated."""

    __slots__ = ("block", "index", "regs", "private", "done",
                 "barrier_hits", "trace", "lid", "gid", "retry")

    def __init__(self, entry: BasicBlock) -> None:
        self.block = entry
        self.index = 0
        self.regs: Dict[int, object] = {}
        self.private = FlatSpace()
        self.done = False
        self.barrier_hits = 0
        self.trace: List[MemAccess] = []
        self.lid: Tuple[int, ...] = (0,)
        self.gid: Tuple[int, ...] = (0,)
        #: resuming a pipe-blocked instruction: suppress the duplicate
        #: block-entry count when the saved index points at offset 0
        self.retry = False

    def reset(self, entry: BasicBlock, lid: Tuple[int, ...],
              gid: Tuple[int, ...]) -> None:
        self.block = entry
        self.index = 0
        self.regs.clear()
        self.private.reset()
        self.done = False
        self.barrier_hits = 0
        self.trace = []
        self.lid = lid
        self.gid = gid
        self.retry = False


def _mask_int(value: int, bits: int, signed: bool) -> int:
    if bits <= 0 or bits >= 64:
        bits = 64
    value &= (1 << bits) - 1
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_rem(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


_MATH_1 = {
    "sqrt": math.sqrt, "native_sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "native_rsqrt": lambda x: 1.0 / math.sqrt(x),
    "fabs": abs, "floor": math.floor, "ceil": math.ceil,
    "round": lambda x: float(round(x)), "trunc": math.trunc,
    "exp": math.exp, "native_exp": math.exp, "exp2": lambda x: 2.0 ** x,
    "exp10": lambda x: 10.0 ** x,
    "log": math.log, "native_log": math.log, "log2": math.log2,
    "log10": math.log10,
    "sin": math.sin, "native_sin": math.sin,
    "cos": math.cos, "native_cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "sinh": math.sinh, "cosh": math.cosh, "tanh": math.tanh,
    "native_recip": lambda x: 1.0 / x,
    "sign": lambda x: (x > 0) - (x < 0),
}

_MATH_2 = {
    "pow": math.pow, "native_powr": math.pow,
    "fmin": min, "fmax": max, "fmod": math.fmod,
    "atan2": math.atan2, "hypot": math.hypot,
    "native_divide": lambda a, b: a / b,
    "step": lambda edge, x: 0.0 if x < edge else 1.0,
}

_CMP_FNS = {
    "eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
    "le": operator.le, "gt": operator.gt, "ge": operator.ge,
}

#: NDRange geometry builtins.
GEOMETRY_BUILTINS = frozenset({
    "get_local_id", "get_global_id", "get_group_id",
    "get_local_size", "get_global_size", "get_num_groups",
    "get_global_offset", "get_work_dim",
})

#: Floating-point builtins (results are float-valued).
FLOAT_BUILTINS = (frozenset(_MATH_1) | frozenset(_MATH_2)
                  | frozenset({"mad", "fma", "mix"}))

#: Integer-capable arithmetic builtins.
INT_CAPABLE_BUILTINS = frozenset(
    {"clamp", "min", "max", "abs", "mul24", "mad24"})

#: Atomics :meth:`KernelExecutor._exec_atomic` implements.
KNOWN_ATOMICS = frozenset({
    "atomic_add", "atomic_sub", "atomic_inc", "atomic_dec",
    "atomic_min", "atomic_max", "atomic_xchg", "atomic_cmpxchg",
})

#: Every builtin the executor can run.  Calls outside this set compile
#: to a runtime error; the static summary engine flags them as
#: ``unsupported-call`` without executing anything.
KNOWN_BUILTINS = (GEOMETRY_BUILTINS | FLOAT_BUILTINS
                  | INT_CAPABLE_BUILTINS | KNOWN_ATOMICS)


def finalize_trip_counts(fn, block_counts: Dict[str, int],
                         work_items: int) -> Dict[str, float]:
    """Derive average trip counts from block execution counts.

    For a loop with header H and body entry B: per loop entry the header
    runs (N+1) times and the body N, so ``N = count(B) / (count(H) -
    count(B))`` averaged over all entries (do-while loops have count(H)
    == count(B): the body and condition run the same number of times;
    then N is not derivable from these two alone, so we fall back to
    ``count(B) / items``, a per-item average).

    Shared by the profiling executor and the static trace synthesizer so
    both report identical trip counts for identical block counts.
    """
    trip_counts: Dict[str, float] = {}
    items = max(work_items, 1)
    for meta in getattr(fn, "loop_meta", []):
        header = block_counts.get(meta.header, 0)
        body = block_counts.get(meta.body_entry, 0)
        entries = header - body
        if entries > 0:
            trip_counts[meta.header] = body / entries
        elif body > 0:
            trip_counts[meta.header] = body / items
        else:
            trip_counts[meta.header] = 0.0
    return trip_counts


def _int_div(a, b):
    if b == 0:
        raise ExecutionError("integer division by zero")
    return _c_div(int(a), int(b))


def _int_rem(a, b):
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return _c_rem(int(a), int(b))


def _float_div(a, b):
    if b == 0.0:
        return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
    return float(a) / float(b)


def _bin_fn(opcode: str, t) -> Optional[Callable]:
    """Resolve a BinaryOp opcode into an (a, b) -> result callable
    (None when the opcode is unknown)."""
    if opcode == "add":
        return operator.add
    if opcode == "sub":
        return operator.sub
    if opcode == "mul":
        return operator.mul
    if opcode == "div":
        return _int_div
    if opcode == "rem":
        return _int_rem
    if opcode == "and":
        return lambda a, b: int(a) & int(b)
    if opcode == "or":
        return lambda a, b: int(a) | int(b)
    if opcode == "xor":
        return lambda a, b: int(a) ^ int(b)
    if opcode == "shl":
        return lambda a, b: int(a) << (int(b) & 63)
    if opcode == "shr":
        if t.is_signed:
            return lambda a, b: int(a) >> (int(b) & 63)
        bits = t.bits
        return lambda a, b: (int(a) & ((1 << bits) - 1)) >> (int(b) & 63)
    if opcode == "fadd":
        return lambda a, b: float(a) + float(b)
    if opcode == "fsub":
        return lambda a, b: float(a) - float(b)
    if opcode == "fmul":
        return lambda a, b: float(a) * float(b)
    if opcode == "fdiv":
        return _float_div
    if opcode == "frem":
        return lambda a, b: math.fmod(float(a), float(b))
    return None


#: compiled-op tags (first tuple element of each block-code entry)
(_OP_EXEC, _OP_BARRIER, _OP_RETURN, _OP_BR, _OP_CBR,
 _OP_PIPE_READ, _OP_PIPE_WRITE) = range(7)


class KernelExecutor:
    """Executes one kernel function over host buffers.

    Parameters
    ----------
    fn:
        The lowered kernel.
    buffers:
        Maps pointer-argument names to :class:`Buffer` objects.
    scalars:
        Maps value-argument names to Python numbers.
    """

    #: default per-work-item instruction budget (guards runaway loops)
    DEFAULT_MAX_STEPS = 5_000_000

    def __init__(self, fn: Function, buffers: Dict[str, Buffer],
                 scalars: Dict[str, object],
                 max_steps: Optional[int] = None,
                 channels: Optional[Dict[str, object]] = None) -> None:
        self.fn = fn
        self.max_steps = max_steps or self.DEFAULT_MAX_STEPS
        #: channel-name -> ChannelState for program co-execution; when
        #: None (standalone launch) pipe instructions are compile-time
        #: reachable but raise a clear error if actually executed
        self._channels = channels
        self.memory = GlobalMemory()
        self.buffers = buffers
        self.scalars = scalars
        self._block_by_name = {b.name: b for b in fn.blocks}
        for buf in buffers.values():
            self.memory.bind(buf)
        self._arg_values: Dict[int, object] = {}
        for arg in fn.args:
            if isinstance(arg.type, PointerType):
                if arg.name not in buffers:
                    raise ExecutionError(
                        f"no buffer supplied for pointer argument "
                        f"{arg.name!r}")
                self._arg_values[id(arg)] = PointerValue(
                    arg.type.space, buffers[arg.name].base)
            else:
                if arg.name not in scalars:
                    raise ExecutionError(
                        f"no value supplied for scalar argument "
                        f"{arg.name!r}")
                self._arg_values[id(arg)] = scalars[arg.name]
        self._addr_to_buffer: List[Tuple[int, int, str]] = [
            (b.base, b.base + max(b.nbytes, 1), b.name)
            for b in buffers.values()
        ]
        #: stable per-instruction site ids for trace attribution
        self._site_of: Dict[int, int] = {
            id(inst): i for i, inst in enumerate(fn.instructions())
        }
        # Per-group execution environment, rebound by _run_group; the
        # compiled closures read these through self so one compilation
        # serves every group.
        self._ndrange: Optional[NDRange] = None
        self._local_mem = FlatSpace()
        self._local_allocas: Dict[int, int] = {}
        self._state_pool: List[_WorkItemState] = []
        self._lid_cache: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        #: id(block) -> flat list of compiled (tag, ...) ops
        self._code: Dict[int, list] = {
            id(block): self._compile_block(block) for block in fn.blocks
        }

    # -- public API --------------------------------------------------------

    def run(self, ndrange: NDRange, max_groups: Optional[int] = None,
            record: bool = True) -> LaunchResult:
        """Execute the NDRange (optionally only the first *max_groups*
        work-groups, as the paper's profiler does) and collect traces."""
        result = LaunchResult()
        self._ndrange = ndrange
        # The state pool is sized to the largest work-group ever run;
        # trim it so a large launch doesn't pin its states for the
        # lifetime of an executor later driven at smaller sizes.
        del self._state_pool[ndrange.work_group_size:]
        group_list = list(ndrange.group_ids())
        if max_groups is not None:
            group_list = group_list[:max_groups]
        for rev_gid in group_list:
            gid = tuple(reversed(rev_gid))
            self._run_group(gid, ndrange, result, record)
            result.groups_executed += 1
        self._finalize_trip_counts(result)
        return result

    # -- execution ---------------------------------------------------------

    def _local_ids(self, ndrange: NDRange) -> List[Tuple[int, ...]]:
        lids = self._lid_cache.get(ndrange.local_size)
        if lids is None:
            lids = [tuple(reversed(rev_lid)) for rev_lid in
                    np.ndindex(*reversed(ndrange.local_size))]
            self._lid_cache[ndrange.local_size] = lids
        return lids

    def _run_group(self, group_id: Tuple[int, ...], ndrange: NDRange,
                   result: LaunchResult, record: bool) -> None:
        self._local_mem = FlatSpace()
        self._local_allocas = {}
        entry = self.fn.entry
        lids = self._local_ids(ndrange)
        pool = self._state_pool
        while len(pool) < len(lids):
            pool.append(_WorkItemState(entry))
        states = pool[:len(lids)]
        for state, lid in zip(states, lids):
            state.reset(entry, lid, group_id)

        block_counts: Dict[str, int] = {}

        # Phase execution: run every item until barrier/finish, repeat.
        live = list(range(len(states)))
        guard = 0
        while live:
            guard += 1
            if guard > 10_000:
                raise ExecutionError("work-group failed to converge "
                                     "(runaway barrier loop?)")
            arrived: List[int] = []
            for i in live:
                reason = self._run_until_barrier(states[i], block_counts)
                if reason == "barrier":
                    arrived.append(i)
                elif reason != "done":
                    raise ExecutionError(
                        f"kernel {self.fn.name!r} blocked on a pipe "
                        f"({reason}) during a standalone launch; pipe "
                        f"kernels need FIFO co-execution — run the whole "
                        f"program through "
                        f"repro.interp.coexec.ProgramExecutor")
            live = arrived

        if record:
            result.traces.extend(s.trace for s in states)
            for name, count in block_counts.items():
                result.block_counts[name] = (
                    result.block_counts.get(name, 0) + count)
            result.barriers_per_item = max(
                result.barriers_per_item, states[0].barrier_hits)
        result.work_items_executed += len(states)

    def _run_until_barrier(self, state: _WorkItemState,
                           block_counts: Dict[str, int]) -> str:
        if state.done:
            return "done"
        code_of = self._code
        block = state.block
        ops = code_of[id(block)]
        index = state.index
        steps = 0
        max_steps = self.max_steps
        get_count = block_counts.get
        skip_count = state.retry
        state.retry = False
        while True:
            steps += 1
            if steps > max_steps:
                raise ExecutionError("work-item exceeded step limit "
                                     "(infinite loop?)")
            if index == 0:
                if skip_count:
                    skip_count = False
                else:
                    name = block.name
                    block_counts[name] = get_count(name, 0) + 1
            if index >= len(ops):
                raise ExecutionError(f"fell off the end of {block.name}")
            op = ops[index]
            index += 1
            tag = op[0]
            if tag == _OP_EXEC:
                op[1](state)
            elif tag == _OP_BR:
                block = op[1]
                ops = code_of[id(block)]
                index = 0
            elif tag == _OP_CBR:
                block = op[2] if op[1](state) else op[3]
                ops = code_of[id(block)]
                index = 0
            elif tag == _OP_BARRIER:
                state.barrier_hits += 1
                state.block = block
                state.index = index
                return "barrier"
            elif tag == _OP_PIPE_READ:
                chan = op[1]
                queue = chan.queue
                if queue:
                    state.regs[op[2]] = queue.popleft()
                    chan.reads += 1
                else:
                    chan.stalls_empty += 1
                    state.block = block
                    state.index = index - 1   # retry this read on resume
                    state.retry = True
                    return "pipe-empty"
            elif tag == _OP_PIPE_WRITE:
                chan = op[1]
                queue = chan.queue
                if len(queue) < chan.depth:
                    queue.append(op[2](state))
                    chan.writes += 1
                    if len(queue) > chan.max_occupancy:
                        chan.max_occupancy = len(queue)
                else:
                    chan.stalls_full += 1
                    state.block = block
                    state.index = index - 1   # retry this write on resume
                    state.retry = True
                    return "pipe-full"
            else:   # _OP_RETURN
                state.done = True
                return "done"

    # -- instruction compilation --------------------------------------------

    def _compile_block(self, block: BasicBlock) -> list:
        ops = []
        for inst in block.instructions:
            if isinstance(inst, Barrier):
                ops.append((_OP_BARRIER,))
            elif isinstance(inst, Return):
                ops.append((_OP_RETURN,))
            elif isinstance(inst, Branch):
                ops.append((_OP_BR, inst.target))
            elif isinstance(inst, CondBranch):
                ops.append((_OP_CBR, self._getter(inst.cond),
                            inst.then_block, inst.else_block))
            elif isinstance(inst, PipeRead):
                ops.append(self._compile_pipe(inst))
            elif isinstance(inst, PipeWrite):
                ops.append(self._compile_pipe(inst))
            else:
                ops.append((_OP_EXEC, self._compile(inst)))
        return ops

    def _compile_pipe(self, inst) -> tuple:
        name = inst.channel.name
        if self._channels is None:
            return (_OP_EXEC, self._raiser(
                f"kernel {self.fn.name!r} uses pipe {name!r}: pipe "
                f"kernels cannot run standalone — co-execute the whole "
                f"program with repro.interp.coexec.ProgramExecutor"))
        chan = self._channels.get(name)
        if chan is None:
            return (_OP_EXEC, self._raiser(
                f"no channel state supplied for pipe {name!r}"))
        if isinstance(inst, PipeRead):
            return (_OP_PIPE_READ, chan, id(inst.result))
        return (_OP_PIPE_WRITE, chan, self._getter(inst.value))

    def _getter(self, v: Value) -> Callable[[_WorkItemState], object]:
        """Pre-resolve one operand into a ``state -> value`` callable."""
        if isinstance(v, Constant):
            value = v.value
            return lambda state: value
        if isinstance(v, Argument):
            value = self._arg_values[id(v)]
            return lambda state: value
        if isinstance(v, Register):
            key = id(v)

            def get_register(state, _key=key, _v=v):
                try:
                    return state.regs[_key]
                except KeyError:
                    raise ExecutionError(
                        f"use of undefined register {_v}") from None
            return get_register
        raise ExecutionError(f"cannot evaluate {v!r}")

    def _value(self, state: _WorkItemState, v: Value):
        """Evaluate one operand (slow path kept for introspection)."""
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, Argument):
            return self._arg_values[id(v)]
        if isinstance(v, Register):
            if id(v) not in state.regs:
                raise ExecutionError(f"use of undefined register {v}")
            return state.regs[id(v)]
        raise ExecutionError(f"cannot evaluate {v!r}")

    @staticmethod
    def _raiser(message: str) -> Callable[[_WorkItemState], None]:
        """A compiled op that fails at execution time (not at
        compilation), matching the interpreter's old error timing."""
        def step(state):
            raise ExecutionError(message)
        return step

    def _compile(self, inst) -> Callable[[_WorkItemState], None]:
        if isinstance(inst, Alloca):
            return self._compile_alloca(inst)
        if isinstance(inst, BinaryOp):
            return self._compile_binop(inst)
        if isinstance(inst, CompareOp):
            return self._compile_compare(inst)
        if isinstance(inst, Cast):
            return self._compile_cast(inst)
        if isinstance(inst, Select):
            return self._compile_select(inst)
        if isinstance(inst, Load):
            return self._compile_load(inst)
        if isinstance(inst, Store):
            return self._compile_store(inst)
        if isinstance(inst, GetElementPtr):
            return self._compile_gep(inst)
        if isinstance(inst, Call):
            return self._compile_call(inst)
        return self._raiser(f"cannot execute {inst!r}")

    def _compile_alloca(self, inst: Alloca) -> Callable:
        nbytes = max(inst.allocated.bytes, 1)
        rid = id(inst.result)
        space = inst.space
        if space == AddressSpace.LOCAL:
            # Local allocas are shared: allocate once per work-group.
            key = id(inst)

            def step(state):
                allocas = self._local_allocas
                addr = allocas.get(key)
                if addr is None:
                    addr = self._local_mem.allocate(nbytes)
                    allocas[key] = addr
                state.regs[rid] = PointerValue(space, addr)
        else:
            def step(state):
                state.regs[rid] = PointerValue(
                    space, state.private.allocate(nbytes))
        return step

    def _compile_binop(self, inst: BinaryOp) -> Callable:
        get_a = self._getter(inst.lhs)
        get_b = self._getter(inst.rhs)
        fn = _bin_fn(inst.opcode, inst.type)
        if fn is None:
            return self._raiser(f"unknown binop {inst.opcode}")
        t = inst.type
        rid = id(inst.result)
        if t.is_integer:
            bits, signed = t.bits, t.is_signed

            def step(state):
                r = fn(get_a(state), get_b(state))
                if not isinstance(r, float):
                    r = _mask_int(int(r), bits, signed)
                state.regs[rid] = r
        else:
            def step(state):
                state.regs[rid] = fn(get_a(state), get_b(state))
        return step

    def _compile_compare(self, inst: CompareOp) -> Callable:
        fn = _CMP_FNS.get(inst.pred)
        if fn is None:
            return self._raiser(f"unknown compare {inst.pred!r}")
        get_a = self._getter(inst.lhs)
        get_b = self._getter(inst.rhs)
        rid = id(inst.result)

        def step(state):
            state.regs[rid] = 1 if fn(get_a(state), get_b(state)) else 0
        return step

    def _compile_cast(self, inst: Cast) -> Callable:
        get_v = self._getter(inst.value)
        rid = id(inst.result)
        kind = inst.kind
        t = inst.type
        if kind == "ptrcast":
            def step(state):
                state.regs[rid] = get_v(state)
        elif kind == "bitcast":
            # Same-width integer reinterpretation (int <-> uint):
            # re-mask under the target's signedness.  Bit-level float
            # punning is outside the supported subset.
            if t.is_integer:
                bits, signed = t.bits, t.is_signed

                def step(state):
                    v = get_v(state)
                    state.regs[rid] = (v if isinstance(v, float)
                                       else _mask_int(int(v), bits, signed))
            else:
                def step(state):
                    state.regs[rid] = get_v(state)
        elif kind in ("sitofp", "uitofp"):
            def step(state):
                state.regs[rid] = float(get_v(state))
        elif kind in ("fptosi", "fptoui", "trunc", "zext", "sext"):
            bits, signed = t.bits, t.is_signed

            def step(state):
                state.regs[rid] = _mask_int(int(get_v(state)), bits, signed)
        elif kind in ("fpext", "fptrunc"):
            if t.bits == 32:
                def step(state):
                    state.regs[rid] = float(np.float32(get_v(state)))
            else:
                def step(state):
                    state.regs[rid] = float(get_v(state))
        else:
            return self._raiser(f"unknown cast {kind}")
        return step

    def _compile_select(self, inst: Select) -> Callable:
        get_c, get_a, get_b = (self._getter(o) for o in inst.operands)
        rid = id(inst.result)

        def step(state):
            cond, a, b = get_c(state), get_a(state), get_b(state)
            state.regs[rid] = a if cond else b
        return step

    def _compile_gep(self, inst: GetElementPtr) -> Callable:
        get_base = self._getter(inst.base)
        get_index = self._getter(inst.index)
        elem = inst.base.type.pointee  # type: ignore[union-attr]
        if isinstance(elem, ArrayType):
            elem = elem.element
        scale = max(elem.bytes, 1)
        rid = id(inst.result)

        def step(state):
            state.regs[rid] = get_base(state).offset(
                int(get_index(state)) * scale)
        return step

    def _buffer_name(self, addr: int) -> str:
        for lo, hi, name in self._addr_to_buffer:
            if lo <= addr < hi:
                return name
        return "?"

    def _compile_load(self, inst: Load) -> Callable:
        get_ptr = self._getter(inst.pointer)
        nbytes = max(inst.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        rid = id(inst.result)
        memory = self.memory

        def step(state):
            ptr = get_ptr(state)
            space = ptr.space
            if space == AddressSpace.PRIVATE:
                state.regs[rid] = state.private.load(ptr.addr)
            elif space == AddressSpace.LOCAL \
                    or space == AddressSpace.CONSTANT:
                state.trace.append(MemAccess(
                    "read", ptr.addr, nbytes, "__local",
                    space="local", site=site))
                state.regs[rid] = self._local_mem.load(ptr.addr, default=0)
            else:
                value = memory.load(ptr.addr, nbytes)
                state.trace.append(MemAccess(
                    "read", ptr.addr, nbytes,
                    self._buffer_name(ptr.addr), site=site))
                state.regs[rid] = value
        return step

    def _compile_store(self, inst: Store) -> Callable:
        get_ptr = self._getter(inst.pointer)
        get_value = self._getter(inst.value)
        nbytes = max(inst.value.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        memory = self.memory

        def step(state):
            ptr = get_ptr(state)
            value = get_value(state)
            space = ptr.space
            if space == AddressSpace.PRIVATE:
                state.private.store(ptr.addr, value)
            elif space == AddressSpace.LOCAL \
                    or space == AddressSpace.CONSTANT:
                state.trace.append(MemAccess(
                    "write", ptr.addr, nbytes, "__local",
                    space="local", site=site))
                self._local_mem.store(ptr.addr, value)
            else:
                memory.store(ptr.addr, nbytes, value)
                state.trace.append(MemAccess(
                    "write", ptr.addr, nbytes,
                    self._buffer_name(ptr.addr), site=site))
        return step

    def _compile_call(self, inst: Call) -> Callable:
        name = inst.callee
        getters = [self._getter(a) for a in inst.operands]
        value_fn = self._compile_builtin(name, inst, getters)
        if value_fn is None:
            return self._raiser(f"unknown builtin {name!r}")
        if inst.result is None:
            def step(state):
                value_fn(state)
        else:
            rid = id(inst.result)

            def step(state):
                state.regs[rid] = value_fn(state)
        return step

    def _compile_builtin(self, name: str, inst: Call,
                         getters: List[Callable]) -> Optional[Callable]:
        """Resolve one builtin call into a ``state -> value`` closure
        (None when the builtin is unknown)."""
        if name == "get_local_id":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                lid = state.lid
                return lid[d] if d < len(lid) else 0
        elif name == "get_group_id":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                gid = state.gid
                return gid[d] if d < len(gid) else 0
        elif name == "get_global_id":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                nd = self._ndrange
                if d >= nd.dims:
                    return 0
                return state.gid[d] * nd.local_size[d] + state.lid[d]
        elif name == "get_global_size":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                nd = self._ndrange
                return nd.global_size[d] if d < nd.dims else 1
        elif name == "get_local_size":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                nd = self._ndrange
                return nd.local_size[d] if d < nd.dims else 1
        elif name == "get_num_groups":
            get_d = getters[0]

            def value_fn(state):
                d = int(get_d(state))
                nd = self._ndrange
                return nd.num_groups[d] if d < nd.dims else 1
        elif name == "get_global_offset":
            def value_fn(state):
                return 0
        elif name == "get_work_dim":
            def value_fn(state):
                return self._ndrange.dims
        elif name in _MATH_1:
            fn = _MATH_1[name]
            get_x = getters[0]

            def value_fn(state):
                return fn(float(get_x(state)))
        elif name in _MATH_2:
            fn = _MATH_2[name]
            get_x, get_y = getters[0], getters[1]

            def value_fn(state):
                return fn(float(get_x(state)), float(get_y(state)))
        elif name in ("mad", "fma"):
            get_x, get_y, get_z = getters

            def value_fn(state):
                return (float(get_x(state)) * float(get_y(state))
                        + float(get_z(state)))
        elif name == "clamp":
            get_x, get_lo, get_hi = getters

            def value_fn(state):
                return min(max(get_x(state), get_lo(state)),
                           get_hi(state))
        elif name == "mix":
            get_x, get_y, get_t = getters

            def value_fn(state):
                x = get_x(state)
                return x + (get_y(state) - x) * get_t(state)
        elif name == "min":
            get_x, get_y = getters

            def value_fn(state):
                return min(get_x(state), get_y(state))
        elif name == "max":
            get_x, get_y = getters

            def value_fn(state):
                return max(get_x(state), get_y(state))
        elif name == "abs":
            get_x = getters[0]

            def value_fn(state):
                return abs(get_x(state))
        elif name == "mul24":
            get_x, get_y = getters

            def value_fn(state):
                return _mask_int(int(get_x(state)) * int(get_y(state)),
                                 32, True)
        elif name == "mad24":
            get_x, get_y, get_z = getters

            def value_fn(state):
                return _mask_int(
                    int(get_x(state)) * int(get_y(state))
                    + int(get_z(state)), 32, True)
        elif name.startswith("atomic_"):
            def value_fn(state):
                args = [g(state) for g in getters]
                return self._exec_atomic(name, inst, args, state)
        else:
            return None
        return value_fn

    def _exec_atomic(self, name: str, inst: Call, args,
                     state: _WorkItemState):
        ptr: PointerValue = args[0]
        nbytes = 4
        site = self._site_of.get(id(inst), -1)
        trace = state.trace
        if ptr.space == AddressSpace.LOCAL:
            old = self._local_mem.load(ptr.addr, default=0)
        else:
            old = self.memory.load(ptr.addr, nbytes)
            trace.append(MemAccess("read", ptr.addr, nbytes,
                                   self._buffer_name(ptr.addr), site=site))
        if name == "atomic_add":
            new = old + args[1]
        elif name == "atomic_sub":
            new = old - args[1]
        elif name == "atomic_inc":
            new = old + 1
        elif name == "atomic_dec":
            new = old - 1
        elif name == "atomic_min":
            new = min(old, args[1])
        elif name == "atomic_max":
            new = max(old, args[1])
        elif name == "atomic_xchg":
            new = args[1]
        elif name == "atomic_cmpxchg":
            new = args[2] if old == args[1] else old
        else:
            raise ExecutionError(f"unknown atomic {name!r}")
        if ptr.space == AddressSpace.LOCAL:
            self._local_mem.store(ptr.addr, new)
        else:
            self.memory.store(ptr.addr, nbytes, new)
            trace.append(MemAccess("write", ptr.addr, nbytes,
                                   self._buffer_name(ptr.addr), site=site))
        return old

    # -- trip counts --------------------------------------------------------

    def _finalize_trip_counts(self, result: LaunchResult) -> None:
        result.trip_counts.update(finalize_trip_counts(
            self.fn, result.block_counts, result.work_items_executed))
