"""NDRange kernel executor.

Executes a lowered kernel over an OpenCL NDRange with work-group and
barrier semantics: within a work-group, every work-item runs until it
hits a barrier (or finishes); the group proceeds to the next phase only
when all items have arrived, matching the OpenCL execution model.

While executing it records the artefacts the FlexCL kernel analysis
needs (paper §3.2): per-loop trip counts and the per-work-item global
memory access trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.interp.memory import (
    Buffer,
    FlatSpace,
    GlobalMemory,
    PointerValue,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, PointerType, Type
from repro.ir.values import Argument, Constant, Register, Value


class ExecutionError(Exception):
    """Raised when a kernel performs an illegal operation at runtime."""


@dataclass(frozen=True)
class MemAccess:
    """One memory access in a work-item's trace."""

    kind: str          # 'read' | 'write'
    addr: int          # byte address in the flat address space
    nbytes: int
    buffer: str        # buffer (argument) name, or '__local'
    space: str = "global"   # 'global' | 'local'
    site: int = -1     # static instruction site id within the kernel


@dataclass
class NDRange:
    """Launch geometry.  Sizes are per dimension, up to 3 dimensions."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    def __post_init__(self) -> None:
        if isinstance(self.global_size, int):
            self.global_size = (self.global_size,)
        if isinstance(self.local_size, int):
            self.local_size = (self.local_size,)
        self.global_size = tuple(self.global_size)
        self.local_size = tuple(self.local_size)
        if len(self.global_size) != len(self.local_size):
            raise ValueError("global/local dimensionality mismatch")
        for g, l in zip(self.global_size, self.local_size):
            if l <= 0 or g <= 0 or g % l != 0:
                raise ValueError(
                    f"global size {g} not a positive multiple of local {l}")

    @property
    def dims(self) -> int:
        return len(self.global_size)

    @property
    def num_work_items(self) -> int:
        return int(np.prod(self.global_size))

    @property
    def work_group_size(self) -> int:
        return int(np.prod(self.local_size))

    @property
    def num_groups(self) -> Tuple[int, ...]:
        return tuple(g // l for g, l in
                     zip(self.global_size, self.local_size))

    @property
    def num_work_groups(self) -> int:
        return int(np.prod(self.num_groups))

    def group_ids(self) -> Iterable[Tuple[int, ...]]:
        return np.ndindex(*reversed(self.num_groups))


@dataclass
class LaunchResult:
    """Everything recorded while executing (a subset of) an NDRange."""

    groups_executed: int = 0
    work_items_executed: int = 0
    #: block-name -> execution count, aggregated over profiled work-items
    block_counts: Dict[str, int] = field(default_factory=dict)
    #: per-work-item global access traces (one list per profiled item)
    traces: List[List[MemAccess]] = field(default_factory=list)
    #: name -> average trip count, derived from block counts
    trip_counts: Dict[str, float] = field(default_factory=dict)
    #: count of barriers executed by the first profiled work-item
    barriers_per_item: int = 0


class _WorkItemState:
    """Execution state of one work-item (supports barrier suspension)."""

    __slots__ = ("block", "index", "regs", "private", "done", "barrier_hits")

    def __init__(self, entry: BasicBlock) -> None:
        self.block = entry
        self.index = 0
        self.regs: Dict[int, object] = {}
        self.private = FlatSpace()
        self.done = False
        self.barrier_hits = 0


def _mask_int(value: int, bits: int, signed: bool) -> int:
    if bits <= 0 or bits >= 64:
        bits = 64
    value &= (1 << bits) - 1
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_rem(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


_MATH_1 = {
    "sqrt": math.sqrt, "native_sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "native_rsqrt": lambda x: 1.0 / math.sqrt(x),
    "fabs": abs, "floor": math.floor, "ceil": math.ceil,
    "round": lambda x: float(round(x)), "trunc": math.trunc,
    "exp": math.exp, "native_exp": math.exp, "exp2": lambda x: 2.0 ** x,
    "exp10": lambda x: 10.0 ** x,
    "log": math.log, "native_log": math.log, "log2": math.log2,
    "log10": math.log10,
    "sin": math.sin, "native_sin": math.sin,
    "cos": math.cos, "native_cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "sinh": math.sinh, "cosh": math.cosh, "tanh": math.tanh,
    "native_recip": lambda x: 1.0 / x,
    "sign": lambda x: (x > 0) - (x < 0),
}

_MATH_2 = {
    "pow": math.pow, "native_powr": math.pow,
    "fmin": min, "fmax": max, "fmod": math.fmod,
    "atan2": math.atan2, "hypot": math.hypot,
    "native_divide": lambda a, b: a / b,
    "step": lambda edge, x: 0.0 if x < edge else 1.0,
}


class KernelExecutor:
    """Executes one kernel function over host buffers.

    Parameters
    ----------
    fn:
        The lowered kernel.
    buffers:
        Maps pointer-argument names to :class:`Buffer` objects.
    scalars:
        Maps value-argument names to Python numbers.
    """

    #: default per-work-item instruction budget (guards runaway loops)
    DEFAULT_MAX_STEPS = 5_000_000

    def __init__(self, fn: Function, buffers: Dict[str, Buffer],
                 scalars: Dict[str, object],
                 max_steps: Optional[int] = None) -> None:
        self.fn = fn
        self.max_steps = max_steps or self.DEFAULT_MAX_STEPS
        self.memory = GlobalMemory()
        self.buffers = buffers
        self.scalars = scalars
        self._block_by_name = {b.name: b for b in fn.blocks}
        for buf in buffers.values():
            self.memory.bind(buf)
        self._arg_values: Dict[int, object] = {}
        for arg in fn.args:
            if isinstance(arg.type, PointerType):
                if arg.name not in buffers:
                    raise ExecutionError(
                        f"no buffer supplied for pointer argument "
                        f"{arg.name!r}")
                self._arg_values[id(arg)] = PointerValue(
                    arg.type.space, buffers[arg.name].base)
            else:
                if arg.name not in scalars:
                    raise ExecutionError(
                        f"no value supplied for scalar argument "
                        f"{arg.name!r}")
                self._arg_values[id(arg)] = scalars[arg.name]
        self._addr_to_buffer: List[Tuple[int, int, str]] = [
            (b.base, b.base + max(b.nbytes, 1), b.name)
            for b in buffers.values()
        ]
        #: stable per-instruction site ids for trace attribution
        self._site_of: Dict[int, int] = {
            id(inst): i for i, inst in enumerate(fn.instructions())
        }

    # -- public API --------------------------------------------------------

    def run(self, ndrange: NDRange, max_groups: Optional[int] = None,
            record: bool = True) -> LaunchResult:
        """Execute the NDRange (optionally only the first *max_groups*
        work-groups, as the paper's profiler does) and collect traces."""
        result = LaunchResult()
        group_list = list(ndrange.group_ids())
        if max_groups is not None:
            group_list = group_list[:max_groups]
        for rev_gid in group_list:
            gid = tuple(reversed(rev_gid))
            self._run_group(gid, ndrange, result, record)
            result.groups_executed += 1
        self._finalize_trip_counts(result)
        return result

    # -- execution ---------------------------------------------------------

    def _run_group(self, group_id: Tuple[int, ...], ndrange: NDRange,
                   result: LaunchResult, record: bool) -> None:
        local_mem = FlatSpace()
        local_allocas: Dict[int, int] = {}   # alloca inst id -> base addr
        states: List[_WorkItemState] = []
        contexts: List[Dict[str, Tuple[int, ...]]] = []

        for rev_lid in np.ndindex(*reversed(ndrange.local_size)):
            lid = tuple(reversed(rev_lid))
            states.append(_WorkItemState(self.fn.entry))
            contexts.append({"local_id": lid, "group_id": group_id})

        traces: List[List[MemAccess]] = [[] for _ in states]
        block_counts: Dict[str, int] = {}

        # Phase execution: run every item until barrier/finish, repeat.
        live = list(range(len(states)))
        guard = 0
        while live:
            guard += 1
            if guard > 10_000:
                raise ExecutionError("work-group failed to converge "
                                     "(runaway barrier loop?)")
            arrived: List[int] = []
            for i in live:
                reason = self._run_until_barrier(
                    states[i], contexts[i], ndrange, local_mem,
                    local_allocas, traces[i], block_counts)
                if reason == "barrier":
                    arrived.append(i)
            live = arrived

        if record:
            result.traces.extend(traces)
            for name, count in block_counts.items():
                result.block_counts[name] = (
                    result.block_counts.get(name, 0) + count)
            result.barriers_per_item = max(
                result.barriers_per_item, states[0].barrier_hits)
        result.work_items_executed += len(states)

    def _run_until_barrier(self, state: _WorkItemState, context,
                           ndrange: NDRange, local_mem: FlatSpace,
                           local_allocas: Dict[int, int],
                           trace: List[MemAccess],
                           block_counts: Dict[str, int]) -> str:
        if state.done:
            return "done"
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise ExecutionError("work-item exceeded step limit "
                                     "(infinite loop?)")
            block = state.block
            if state.index == 0:
                block_counts[block.name] = block_counts.get(block.name, 0) + 1
            if state.index >= len(block.instructions):
                raise ExecutionError(f"fell off the end of {block.name}")
            inst = block.instructions[state.index]
            state.index += 1

            if isinstance(inst, Barrier):
                state.barrier_hits += 1
                return "barrier"
            if isinstance(inst, Return):
                state.done = True
                return "done"
            if isinstance(inst, Branch):
                state.block = inst.target
                state.index = 0
                continue
            if isinstance(inst, CondBranch):
                cond = self._value(state, inst.cond)
                state.block = inst.then_block if cond else inst.else_block
                state.index = 0
                continue
            self._execute(inst, state, context, ndrange, local_mem,
                          local_allocas, trace)

    # -- instruction semantics ----------------------------------------------

    def _value(self, state: _WorkItemState, v: Value):
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, Argument):
            return self._arg_values[id(v)]
        if isinstance(v, Register):
            if id(v) not in state.regs:
                raise ExecutionError(f"use of undefined register {v}")
            return state.regs[id(v)]
        raise ExecutionError(f"cannot evaluate {v!r}")

    def _execute(self, inst: Instruction, state: _WorkItemState, context,
                 ndrange: NDRange, local_mem: FlatSpace,
                 local_allocas: Dict[int, int],
                 trace: List[MemAccess]) -> None:
        if isinstance(inst, Alloca):
            self._exec_alloca(inst, state, local_mem, local_allocas)
        elif isinstance(inst, BinaryOp):
            state.regs[id(inst.result)] = self._exec_binop(inst, state)
        elif isinstance(inst, CompareOp):
            lhs = self._value(state, inst.lhs)
            rhs = self._value(state, inst.rhs)
            state.regs[id(inst.result)] = self._exec_compare(inst.pred,
                                                             lhs, rhs)
        elif isinstance(inst, Cast):
            state.regs[id(inst.result)] = self._exec_cast(inst, state)
        elif isinstance(inst, Select):
            cond, a, b = (self._value(state, o) for o in inst.operands)
            state.regs[id(inst.result)] = a if cond else b
        elif isinstance(inst, Load):
            state.regs[id(inst.result)] = self._exec_load(
                inst, state, local_mem, trace)
        elif isinstance(inst, Store):
            self._exec_store(inst, state, local_mem, trace)
        elif isinstance(inst, GetElementPtr):
            base = self._value(state, inst.base)
            index = self._value(state, inst.index)
            elem: Type = inst.base.type.pointee  # type: ignore[union-attr]
            if isinstance(elem, ArrayType):
                elem = elem.element
            state.regs[id(inst.result)] = base.offset(
                int(index) * max(elem.bytes, 1))
        elif isinstance(inst, Call):
            value = self._exec_call(inst, state, context, ndrange,
                                    local_mem, trace)
            if inst.result is not None:
                state.regs[id(inst.result)] = value
        else:
            raise ExecutionError(f"cannot execute {inst!r}")

    def _exec_alloca(self, inst: Alloca, state: _WorkItemState,
                     local_mem: FlatSpace,
                     local_allocas: Dict[int, int]) -> None:
        nbytes = max(inst.allocated.bytes, 1)
        if inst.space == AddressSpace.LOCAL:
            # Local allocas are shared: allocate once per work-group.
            if id(inst) not in local_allocas:
                local_allocas[id(inst)] = local_mem.allocate(nbytes)
            addr = local_allocas[id(inst)]
        else:
            addr = state.private.allocate(nbytes)
        state.regs[id(inst.result)] = PointerValue(inst.space, addr)

    def _exec_binop(self, inst: BinaryOp, state: _WorkItemState):
        a = self._value(state, inst.lhs)
        b = self._value(state, inst.rhs)
        op = inst.opcode
        # Pointer arithmetic only arrives via gep, so operands are numbers.
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "mul":
            r = a * b
        elif op == "div":
            if b == 0:
                raise ExecutionError("integer division by zero")
            r = _c_div(int(a), int(b))
        elif op == "rem":
            if b == 0:
                raise ExecutionError("integer remainder by zero")
            r = _c_rem(int(a), int(b))
        elif op == "and":
            r = int(a) & int(b)
        elif op == "or":
            r = int(a) | int(b)
        elif op == "xor":
            r = int(a) ^ int(b)
        elif op == "shl":
            r = int(a) << (int(b) & 63)
        elif op == "shr":
            if inst.type.is_signed:
                r = int(a) >> (int(b) & 63)
            else:
                bits = inst.type.bits
                r = (int(a) & ((1 << bits) - 1)) >> (int(b) & 63)
        elif op == "fadd":
            r = float(a) + float(b)
        elif op == "fsub":
            r = float(a) - float(b)
        elif op == "fmul":
            r = float(a) * float(b)
        elif op == "fdiv":
            if b == 0.0:
                r = math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
            else:
                r = float(a) / float(b)
        elif op == "frem":
            r = math.fmod(float(a), float(b))
        else:
            raise ExecutionError(f"unknown binop {op}")
        t = inst.type
        if t.is_integer and not isinstance(r, float):
            r = _mask_int(int(r), t.bits, t.is_signed)
        return r

    @staticmethod
    def _exec_compare(pred: str, lhs, rhs) -> int:
        table = {
            "eq": lhs == rhs, "ne": lhs != rhs, "lt": lhs < rhs,
            "le": lhs <= rhs, "gt": lhs > rhs, "ge": lhs >= rhs,
        }
        return 1 if table[pred] else 0

    def _exec_cast(self, inst: Cast, state: _WorkItemState):
        v = self._value(state, inst.value)
        kind = inst.kind
        t = inst.type
        if kind in ("ptrcast",):
            return v
        if kind == "bitcast":
            # Same-width integer reinterpretation (int <-> uint):
            # re-mask under the target's signedness.  Bit-level float
            # punning is outside the supported subset.
            if t.is_integer and not isinstance(v, float):
                return _mask_int(int(v), t.bits, t.is_signed)
            return v
        if kind in ("sitofp", "uitofp"):
            return float(v)
        if kind in ("fptosi", "fptoui"):
            return _mask_int(int(v), t.bits, t.is_signed)
        if kind in ("fpext", "fptrunc"):
            if t.bits == 32:
                return float(np.float32(v))
            return float(v)
        if kind in ("trunc", "zext", "sext"):
            return _mask_int(int(v), t.bits, t.is_signed)
        raise ExecutionError(f"unknown cast {kind}")

    def _buffer_name(self, addr: int) -> str:
        for lo, hi, name in self._addr_to_buffer:
            if lo <= addr < hi:
                return name
        return "?"

    def _exec_load(self, inst: Load, state: _WorkItemState,
                   local_mem: FlatSpace, trace: List[MemAccess]):
        ptr = self._value(state, inst.pointer)
        nbytes = max(inst.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        if ptr.space == AddressSpace.PRIVATE:
            return state.private.load(ptr.addr)
        if ptr.space in (AddressSpace.LOCAL, AddressSpace.CONSTANT):
            trace.append(MemAccess("read", ptr.addr, nbytes, "__local",
                                   space="local", site=site))
            return local_mem.load(ptr.addr, default=0)
        value = self.memory.load(ptr.addr, nbytes)
        trace.append(MemAccess("read", ptr.addr, nbytes,
                               self._buffer_name(ptr.addr), site=site))
        return value

    def _exec_store(self, inst: Store, state: _WorkItemState,
                    local_mem: FlatSpace, trace: List[MemAccess]) -> None:
        ptr = self._value(state, inst.pointer)
        value = self._value(state, inst.value)
        nbytes = max(inst.value.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        if ptr.space == AddressSpace.PRIVATE:
            state.private.store(ptr.addr, value)
            return
        if ptr.space in (AddressSpace.LOCAL, AddressSpace.CONSTANT):
            trace.append(MemAccess("write", ptr.addr, nbytes, "__local",
                                   space="local", site=site))
            local_mem.store(ptr.addr, value)
            return
        self.memory.store(ptr.addr, nbytes, value)
        trace.append(MemAccess("write", ptr.addr, nbytes,
                               self._buffer_name(ptr.addr), site=site))

    def _exec_call(self, inst: Call, state: _WorkItemState, context,
                   ndrange: NDRange, local_mem: FlatSpace,
                   trace: List[MemAccess]):
        name = inst.callee
        args = [self._value(state, a) for a in inst.operands]
        lid = context["local_id"]
        gid = context["group_id"]
        if name == "get_local_id":
            d = int(args[0])
            return lid[d] if d < len(lid) else 0
        if name == "get_group_id":
            d = int(args[0])
            return gid[d] if d < len(gid) else 0
        if name == "get_global_id":
            d = int(args[0])
            if d >= ndrange.dims:
                return 0
            return gid[d] * ndrange.local_size[d] + lid[d]
        if name == "get_global_size":
            d = int(args[0])
            return ndrange.global_size[d] if d < ndrange.dims else 1
        if name == "get_local_size":
            d = int(args[0])
            return ndrange.local_size[d] if d < ndrange.dims else 1
        if name == "get_num_groups":
            d = int(args[0])
            return ndrange.num_groups[d] if d < ndrange.dims else 1
        if name == "get_global_offset":
            return 0
        if name == "get_work_dim":
            return ndrange.dims
        if name in _MATH_1:
            return _MATH_1[name](float(args[0]))
        if name in _MATH_2:
            return _MATH_2[name](float(args[0]), float(args[1]))
        if name in ("mad", "fma"):
            return float(args[0]) * float(args[1]) + float(args[2])
        if name == "clamp":
            return min(max(args[0], args[1]), args[2])
        if name == "mix":
            return args[0] + (args[1] - args[0]) * args[2]
        if name == "min":
            return min(args[0], args[1])
        if name == "max":
            return max(args[0], args[1])
        if name == "abs":
            return abs(args[0])
        if name in ("mul24",):
            return _mask_int(int(args[0]) * int(args[1]), 32, True)
        if name in ("mad24",):
            return _mask_int(int(args[0]) * int(args[1]) + int(args[2]),
                             32, True)
        if name.startswith("atomic_"):
            return self._exec_atomic(name, inst, args, local_mem, trace)
        raise ExecutionError(f"unknown builtin {name!r}")

    def _exec_atomic(self, name: str, inst: Call, args, local_mem: FlatSpace,
                     trace: List[MemAccess]):
        ptr: PointerValue = args[0]
        nbytes = 4
        site = self._site_of.get(id(inst), -1)
        if ptr.space == AddressSpace.LOCAL:
            old = local_mem.load(ptr.addr, default=0)
        else:
            old = self.memory.load(ptr.addr, nbytes)
            trace.append(MemAccess("read", ptr.addr, nbytes,
                                   self._buffer_name(ptr.addr), site=site))
        if name == "atomic_add":
            new = old + args[1]
        elif name == "atomic_sub":
            new = old - args[1]
        elif name == "atomic_inc":
            new = old + 1
        elif name == "atomic_dec":
            new = old - 1
        elif name == "atomic_min":
            new = min(old, args[1])
        elif name == "atomic_max":
            new = max(old, args[1])
        elif name == "atomic_xchg":
            new = args[1]
        elif name == "atomic_cmpxchg":
            new = args[2] if old == args[1] else old
        else:
            raise ExecutionError(f"unknown atomic {name!r}")
        if ptr.space == AddressSpace.LOCAL:
            local_mem.store(ptr.addr, new)
        else:
            self.memory.store(ptr.addr, nbytes, new)
            trace.append(MemAccess("write", ptr.addr, nbytes,
                                   self._buffer_name(ptr.addr), site=site))
        return old

    # -- trip counts --------------------------------------------------------

    def _finalize_trip_counts(self, result: LaunchResult) -> None:
        """Derive average trip counts from block execution counts.

        For a loop with header H and body entry B: per loop entry the
        header runs (N+1) times and the body N, so
        ``N = count(B) / (count(H) - count(B))`` averaged over all
        entries (do-while loops have count(H) == count(B): the body and
        condition run the same number of times; then N = count(B) /
        entries is not derivable from these two alone, so we fall back
        to count(B) / items, a per-item average).
        """
        loop_meta = getattr(self.fn, "loop_meta", [])
        items = max(result.work_items_executed, 1)
        for meta in loop_meta:
            header = result.block_counts.get(meta.header, 0)
            body = result.block_counts.get(meta.body_entry, 0)
            entries = header - body
            if entries > 0:
                result.trip_counts[meta.header] = body / entries
            elif body > 0:
                result.trip_counts[meta.header] = body / items
            else:
                result.trip_counts[meta.header] = 0.0
