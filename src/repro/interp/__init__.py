"""IR interpreter: NDRange execution, functional checks, dynamic profiling.

The paper's kernel analysis executes "a few work-groups" of each kernel to
collect loop trip counts and the global-memory access trace when static
analysis fails.  This package provides that executor: it runs kernels on
host buffers with full OpenCL NDRange / work-group / barrier semantics and
records per-work-item global access traces and per-loop trip counts.
"""

from repro.interp.memory import Buffer, GlobalMemory, PointerValue
from repro.interp.executor import (
    ExecutionError,
    KernelExecutor,
    LaunchResult,
    MemAccess,
    NDRange,
)
from repro.interp.coexec import (
    ChannelState,
    CoExecutionResult,
    ProgramExecutor,
    StageSpec,
)
from repro.interp.vexec import VectorizationError, VectorizedExecutor

__all__ = [
    "Buffer",
    "ChannelState",
    "CoExecutionResult",
    "ExecutionError",
    "GlobalMemory",
    "KernelExecutor",
    "LaunchResult",
    "MemAccess",
    "NDRange",
    "PointerValue",
    "ProgramExecutor",
    "StageSpec",
    "VectorizationError",
    "VectorizedExecutor",
]
