"""Lane-vectorized kernel interpreter (SIMT-style masked execution).

The scalar :class:`~repro.interp.executor.KernelExecutor` pays a Python
dispatch per work-item per instruction — the dominant residual cold
cost for the data-dependent kernels the static synthesizer cannot
cover.  :class:`VectorizedExecutor` executes one whole work-group at a
time as numpy *lane vectors*: every register is a full-lane ``int64``
or ``float64`` array, loads gather and stores scatter against the
buffer arrays for exactly the active lanes, and divergent control flow
becomes an active-lane mask instead of a per-item interpreter loop.

Unlike :class:`~repro.interp.synth.TraceSynthesizer` (which never
reads memory and skips float arithmetic), this interpreter evaluates
*everything* — buffer contents, float math, data-dependent branches
and loop trips — so it covers the kernels the access-summary engine
classifies IRREGULAR.

Scheduling reuses the synthesizer's lane-PC scheme: each lane carries
the index of its current block in a fixed DFS-preorder block ordering;
each step executes the minimum-index block for the lanes parked on it.
Divergent lanes run blocks in separate steps and naturally reconverge
at the immediate post-dominator (the lowest-index block both paths
reach); loop-exit lanes wait at the higher-index exit block until the
looping lanes catch up.  Barriers use park-and-release: a lane hitting
a barrier parks; when no lane is runnable, every non-retired lane must
be parked at the *same* barrier (full-mask convergence over live
lanes, retirement counts as convergence exactly like the scalar
phase machinery) — parked lanes split across different barrier sites
raise :class:`VectorizationError`.

Bit-identity with the scalar executor (proven by the 67-kernel
differential sweep in ``tests/test_vexec_sweep.py``):

- integer semantics are the synthesizer's proven ``int64``-image
  arithmetic (``_mask_val``/``_u64``); float add/sub/mul/div are IEEE
  double in both engines; transcendental builtins evaluate per-lane
  through the *same* ``math``-module functions the scalar executor
  uses, so there is no libm-vs-Python drift;
- work-groups run sequentially in launch order, so inter-group
  memory effects (group g's stores feeding group g+1's loads) match
  the scalar executor exactly;
- within a barrier phase the scalar executor is item-sequential while
  this interpreter is lockstep.  For race-free kernels (OpenCL makes
  intra-phase cross-item conflicts undefined behavior) the two
  schedules are indistinguishable; the defined exception — atomics —
  is guarded: an atomic step executes per-lane in item order, and any
  same-phase reordering that could change observed values (overlapping
  atomic sites, plain accesses to atomically-touched addresses) raises
  :class:`VectorizationError`.

Traces are emitted directly in packed columnar form
(:class:`~repro.analysis.packed.PackedGroup`) — no per-access
``MemAccess`` objects exist on the hot path.

Failure contract: anything outside the vectorizable subset raises
:class:`VectorizationError`; genuine runtime faults raise the scalar
executor's own error types (:class:`ExecutionError`, ``IndexError``,
``ValueError``, ...).  On *any* exception ``run`` restores the bound
buffers to their pre-launch contents before re-raising, so the caller
can fall back to scalar interpretation and reproduce the canonical
behavior — values, traces, and error messages — from pristine inputs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.interp.executor import (
    ExecutionError,
    GEOMETRY_BUILTINS,
    KNOWN_ATOMICS,
    LaunchResult,
    NDRange,
    finalize_trip_counts,
)
from repro.interp.memory import Buffer, GlobalMemory
from repro.interp.synth import (
    _i64,
    _is_u64,
    _mask_scalar,
    _mask_val,
    _u64,
    promote_slots,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Load,
    PipeRead,
    PipeWrite,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, PointerType
from repro.ir.values import Argument, Constant, Register, Value

#: bump to invalidate persistently cached analyses produced by this
#: engine (mirrors SUMMARY_ENGINE_VERSION for synthesized entries)
VEXEC_ENGINE_VERSION = 1


class VectorizationError(Exception):
    """The kernel (or this launch) left the vectorizable subset."""


#: runtime address-space codes (match repro.interp.synth)
_PRIV, _GLOB, _LOC, _CONST = 0, 1, 2, 3

_SPACE_CODE = {
    AddressSpace.PRIVATE: _PRIV,
    AddressSpace.GLOBAL: _GLOB,
    AddressSpace.LOCAL: _LOC,
    AddressSpace.CONSTANT: _CONST,
}

#: packed-trace codes (repro.analysis.packed)
_PK_READ, _PK_WRITE = 0, 1
_PK_GLOBAL, _PK_LOCAL = 0, 1

#: atomics whose unobserved effects commute (any interleaving yields
#: the same final memory)
_COMMUTATIVE_ATOMICS = frozenset({
    "atomic_add", "atomic_sub", "atomic_inc", "atomic_dec",
    "atomic_min", "atomic_max",
})

#: transcendental builtins evaluated per-lane through the math module
#: (guarantees bit-identity with the scalar executor's results)
_LANEWISE_1 = {
    "exp": math.exp, "native_exp": math.exp,
    "exp2": lambda x: 2.0 ** x, "exp10": lambda x: 10.0 ** x,
    "log": math.log, "native_log": math.log,
    "log2": math.log2, "log10": math.log10,
    "sin": math.sin, "native_sin": math.sin,
    "cos": math.cos, "native_cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "sinh": math.sinh, "cosh": math.cosh, "tanh": math.tanh,
}

_LANEWISE_2 = {
    "pow": math.pow, "native_powr": math.pow,
    "atan2": math.atan2, "hypot": math.hypot,
}


class _VSegment:
    """A run of instructions with no internal barrier.  ``cost`` counts
    every instruction in the run (the scalar step budget counts skipped
    ops too); ``barrier`` marks a run ending at a barrier."""

    __slots__ = ("ops", "cost", "barrier")

    def __init__(self) -> None:
        self.ops: List[Callable] = []
        self.cost = 0
        self.barrier = False


class _VBlock:
    __slots__ = ("name", "segments", "term")

    def __init__(self, name: str) -> None:
        self.name = name
        self.segments: List[_VSegment] = []
        self.term: Optional[Tuple] = None


class VectorizedExecutor:
    """Executes one kernel over host buffers, one work-group of lanes
    at a time.  Parameters mirror :class:`KernelExecutor`: the lowered
    function, buffers by pointer-argument name, scalars by name.

    Construction compiles the kernel (and raises
    :class:`VectorizationError` for pipe kernels or IR outside the
    supported subset); :meth:`run` executes an NDRange prefix and
    returns the scalar executor's :class:`LaunchResult`, with traces
    already packed columnar.
    """

    DEFAULT_MAX_STEPS = 5_000_000
    MAX_PHASES = 10_000

    def __init__(self, fn: Function, buffers: Dict[str, Buffer],
                 scalars: Dict[str, object],
                 max_steps: Optional[int] = None) -> None:
        self.fn = fn
        self.max_steps = max_steps or self.DEFAULT_MAX_STEPS
        for inst in fn.instructions():
            if isinstance(inst, (PipeRead, PipeWrite)):
                raise VectorizationError(
                    f"kernel {fn.name!r} uses pipes: pipe kernels need "
                    f"FIFO co-execution, not lane vectorization")

        # Bind buffers exactly as the executor does (same GlobalMemory
        # allocator, same insertion order => identical base addresses).
        self.memory = GlobalMemory()
        self.buffers = buffers
        for buf in buffers.values():
            self.memory.bind(buf)
        blist = list(buffers.values())
        self._bufs = blist
        self._bases = np.array([b.base for b in blist], np.int64)
        self._spans = np.array([max(b.nbytes, 1) for b in blist], np.int64)
        self._raw = np.array([b.nbytes for b in blist], np.int64)
        self._elem = np.array([b.elem_size for b in blist], np.int64)
        self._flat = [b.data.reshape(-1) for b in blist]
        self._buf_names: Tuple[str, ...] = tuple(b.name for b in blist)
        self._local_buf_index = len(self._buf_names)
        self._gl_hot: Optional[Tuple[int, int, int, int]] = None

        self._arg_addr: Dict[int, Tuple[int, int]] = {}
        self._arg_scalar: Dict[int, object] = {}
        for arg in fn.args:
            if isinstance(arg.type, PointerType):
                if arg.name not in buffers:
                    raise ExecutionError(
                        f"no buffer supplied for pointer argument "
                        f"{arg.name!r}")
                self._arg_addr[id(arg)] = (
                    buffers[arg.name].base, _SPACE_CODE[arg.type.space])
            else:
                if arg.name not in scalars:
                    raise ExecutionError(
                        f"no value supplied for scalar argument "
                        f"{arg.name!r}")
                v = scalars[arg.name]
                self._arg_scalar[id(arg)] = (
                    float(v) if arg.type.is_float else int(v))

        self._site_of: Dict[int, int] = {
            id(inst): i for i, inst in enumerate(fn.instructions())}
        #: register ids read by at least one instruction (atomics whose
        #: old value is never observed admit commutative reordering)
        self._used_regs = {
            id(v) for inst in fn.instructions() for v in inst.operands
            if isinstance(v, Register)}

        blocks = list(fn.reachable_blocks())
        self._blocks = blocks
        self._order = {id(b): i for i, b in enumerate(blocks)}
        self._done = len(blocks)

        self._fwd, self._skip, self._promoted = promote_slots(blocks)

        # Worst-case local arena: every local alloca 8-aligned past 64.
        cap = 64
        for inst in fn.instructions():
            if isinstance(inst, Alloca) and inst.space == AddressSpace.LOCAL:
                cap += max(inst.allocated.bytes, 1) + 8
        self._local_cap = cap

        # Per-launch / per-group state, rebound by run()/_run_group.
        self._nlanes = 0
        self._nd: Optional[NDRange] = None
        self._cur_lid: List[np.ndarray] = []
        self._cur_gid: Tuple[int, ...] = ()
        self._cur_ggid: List[np.ndarray] = []
        self.regs_i: Dict[int, np.ndarray] = {}
        self.regs_f: Dict[int, np.ndarray] = {}
        self.rspace: Dict[int, object] = {}
        self._priv: Dict[int, list] = {}
        self._pslots: Dict[int, list] = {}
        self._priv_next: Optional[np.ndarray] = None
        self._local_i: Optional[np.ndarray] = None
        self._local_f: Optional[np.ndarray] = None
        self._local_next = 64
        self._local_allocas: Dict[int, int] = {}
        self._events: List[Tuple] = []
        self._record = True
        #: global/local element addresses touched by atomics this phase
        self._atomic_all: set = set()
        #: subset whose interleaving is observable (used old value or
        #: non-commutative op): no other atomic may overlap them
        self._atomic_strict: set = set()
        self._lid_cache: Dict[Tuple[int, ...], List[np.ndarray]] = {}

        self._code: List[_VBlock] = [self._compile_block(b) for b in blocks]

    # -- run ---------------------------------------------------------------

    def run(self, ndrange: NDRange, max_groups: Optional[int] = None,
            record: bool = True) -> LaunchResult:
        """Execute the NDRange (optionally only the first *max_groups*
        work-groups) and collect packed traces.  On any exception the
        buffers are restored to their pre-launch contents."""
        from repro.analysis.packed import PackedTraces

        result = LaunchResult()
        self._nd = ndrange
        self._record = record
        wg = ndrange.work_group_size
        group_list = list(ndrange.group_ids())
        if max_groups is not None:
            group_list = group_list[:max_groups]
        gids = [tuple(reversed(rev)) for rev in group_list]
        snapshots = [b.data.copy() for b in self._bufs]
        packed = []
        try:
            for gid in gids:
                packed.append(self._run_group(gid, ndrange, result))
                result.groups_executed += 1
        except BaseException:
            for buf, snap in zip(self._bufs, snapshots):
                np.copyto(buf.data, snap)
            raise
        result.traces = PackedTraces([g for g in packed if g is not None]
                                     if record else [], wg)
        result.trip_counts.update(finalize_trip_counts(
            self.fn, result.block_counts, result.work_items_executed))
        return result

    def _local_id_arrays(self, ndrange: NDRange) -> List[np.ndarray]:
        arrays = self._lid_cache.get(ndrange.local_size)
        if arrays is None:
            lids = [tuple(reversed(rev)) for rev in
                    np.ndindex(*reversed(ndrange.local_size))]
            arrays = [np.array([t[d] for t in lids], np.int64)
                      for d in range(ndrange.dims)]
            self._lid_cache[ndrange.local_size] = arrays
        return arrays

    def _run_group(self, gid: Tuple[int, ...], ndrange: NDRange,
                   result: LaunchResult):
        n = ndrange.work_group_size
        self._nlanes = n
        dims = ndrange.dims
        self._cur_lid = self._local_id_arrays(ndrange)
        self._cur_gid = gid
        self._cur_ggid = [gid[d] * ndrange.local_size[d] + self._cur_lid[d]
                          for d in range(dims)]
        self.regs_i = {}
        self.regs_f = {}
        self.rspace = {}
        self._priv = {}
        self._pslots = {}
        self._priv_next = np.full(n, 64, np.int64)
        self._local_i = np.zeros(self._local_cap, np.int64)
        self._local_f = np.zeros(self._local_cap, np.float64)
        self._local_next = 64
        self._local_allocas = {}
        self._events = []
        self._gl_hot = None
        self._atomic_all = set()
        self._atomic_strict = set()

        lane_block = np.zeros(n, np.int64)
        lane_seg = np.zeros(n, np.int64)
        parked = np.zeros(n, bool)
        barrier_hits = np.zeros(n, np.int64)
        steps = np.zeros(n, np.int64)
        done = self._done
        phases = 0
        max_steps = self.max_steps
        counts: Dict[str, int] = {}

        while True:
            runnable = (lane_block < done) & ~parked
            if not runnable.any():
                if not parked.any():
                    break
                pb = lane_block[parked]
                ps = lane_seg[parked]
                if int(pb.min()) != int(pb.max()) \
                        or int(ps.min()) != int(ps.max()):
                    raise VectorizationError(
                        "barrier reached under divergence: live lanes "
                        "parked at different barrier sites")
                phases += 1
                if phases > self.MAX_PHASES:
                    raise ExecutionError("work-group failed to converge "
                                         "(runaway barrier loop?)")
                steps[parked] = 0
                parked[:] = False
                self._atomic_all.clear()
                self._atomic_strict.clear()
                continue
            cur = int(lane_block[runnable].min())
            on_block = runnable & (lane_block == cur)
            curseg = int(lane_seg[on_block].min())
            idx = np.flatnonzero(on_block & (lane_seg == curseg))
            code = self._code[cur]
            if curseg == 0:
                counts[code.name] = counts.get(code.name, 0) + len(idx)
            segments = code.segments
            s = curseg
            parked_here = False
            while s < len(segments):
                seg = segments[s]
                for op in seg.ops:
                    op(idx)
                if seg.barrier:
                    barrier_hits[idx] += 1
                    parked[idx] = True
                    lane_seg[idx] = s + 1
                    parked_here = True
                    break
                steps[idx] += seg.cost
                if int(steps[idx].max()) > max_steps:
                    raise ExecutionError("work-item exceeded step limit "
                                         "(infinite loop?)")
                s += 1
            if parked_here:
                continue
            term = code.term
            lane_seg[idx] = 0
            if term[0] == "ret":
                lane_block[idx] = done
            elif term[0] == "br":
                lane_block[idx] = term[1]
            else:  # cbr
                c = np.asarray(term[1](idx))
                lane_block[idx] = np.where(c != 0, term[2], term[3])

        result.work_items_executed += n
        if not self._record:
            return None
        for name, count in counts.items():
            result.block_counts[name] = (
                result.block_counts.get(name, 0) + count)
        result.barriers_per_item = max(result.barriers_per_item,
                                       int(barrier_hits[0]))
        return self._pack_group(n)

    def _pack_group(self, wg: int):
        from repro.analysis.packed import PackedGroup

        events = self._events
        total = sum(len(ev[5]) for ev in events)
        site = np.empty(total, np.int32)
        kind = np.empty(total, np.uint8)
        nbytes = np.empty(total, np.int32)
        space = np.empty(total, np.uint8)
        buf = np.empty(total, np.int16)
        lane = np.empty(total, np.int32)
        addr = np.empty(total, np.int64)
        pos = 0
        for s, k, nb, sp, b, lanes, addrs in events:
            m = len(lanes)
            end = pos + m
            site[pos:end] = s
            kind[pos:end] = k
            nbytes[pos:end] = nb
            space[pos:end] = sp
            buf[pos:end] = b
            lane[pos:end] = lanes
            addr[pos:end] = addrs
            pos = end
        # Stable sort by lane: per-lane program order is preserved.
        order = np.argsort(lane, kind="stable")
        names = self._buf_names + ("__local",)
        return PackedGroup(site[order], kind[order], nbytes[order],
                           space[order], buf[order], lane[order],
                           addr[order], names, wg)

    # -- operand access ----------------------------------------------------

    def _resolve(self, v: Value) -> Value:
        hops = 0
        while isinstance(v, Register) and id(v) in self._fwd:
            v = self._fwd[id(v)]
            hops += 1
            if hops > len(self._fwd):
                raise VectorizationError("forwarding cycle")
        return v

    @staticmethod
    def _is_float_value(v: Value) -> bool:
        return bool(getattr(v.type, "is_float", False))

    def _getter(self, v: Value) -> Callable:
        """Pre-resolve one operand into an ``idx -> values`` callable
        (python scalar for uniform values, array slice otherwise)."""
        v = self._resolve(v)
        if isinstance(v, Constant):
            value = (float(v.value) if self._is_float_value(v)
                     else int(v.value))
            return lambda idx: value
        if isinstance(v, Argument):
            if id(v) in self._arg_addr:
                base = self._arg_addr[id(v)][0]
                return lambda idx: base
            value = self._arg_scalar[id(v)]
            return lambda idx: value
        if isinstance(v, Register):
            rid = id(v)
            regs = self.regs_f if self._is_float_value(v) else None

            def get_register(idx, _v=v):
                bank = regs if regs is not None else self.regs_i
                arr = (self.regs_f if bank is None else bank).get(rid)
                if arr is None:
                    raise ExecutionError(
                        f"use of undefined register {_v}")
                return arr[idx]

            if self._is_float_value(v):
                def get_register(idx, _v=v):  # noqa: F811
                    arr = self.regs_f.get(rid)
                    if arr is None:
                        raise ExecutionError(
                            f"use of undefined register {_v}")
                    return arr[idx]
            else:
                def get_register(idx, _v=v):  # noqa: F811
                    arr = self.regs_i.get(rid)
                    if arr is None:
                        raise ExecutionError(
                            f"use of undefined register {_v}")
                    return arr[idx]
            return get_register
        raise VectorizationError(f"cannot evaluate {v!r}")

    def _fgetter(self, v: Value) -> Callable:
        """A getter coerced to float64 (scalar executor: float(x))."""
        g = self._getter(v)
        if self._is_float_value(self._resolve(v)):
            return g
        if _is_u64(self._resolve(v).type):
            return lambda idx: _u64(np.asarray(g(idx))).astype(np.float64)

        def get_float(idx):
            val = g(idx)
            if isinstance(val, (int, float)):
                return float(val)
            return np.asarray(val, np.float64)
        return get_float

    def _space_getter(self, v: Value) -> Callable:
        v = self._resolve(v)
        if isinstance(v, Argument) and id(v) in self._arg_addr:
            code = self._arg_addr[id(v)][1]
            return lambda idx: code
        if isinstance(v, Register):
            rid = id(v)

            def get_space(idx):
                s = self.rspace.get(rid)
                if s is None:
                    raise VectorizationError("pointer with unknown space")
                return s[idx] if isinstance(s, np.ndarray) else s
            return get_space
        raise VectorizationError(f"no address space for {v!r}")

    def _setter(self, result: Register) -> Callable:
        rid = id(result)
        if self._is_float_value(result):
            def set_register(idx, val):
                arr = self.regs_f.get(rid)
                if arr is None:
                    arr = np.zeros(self._nlanes, np.float64)
                    self.regs_f[rid] = arr
                arr[idx] = val
        else:
            def set_register(idx, val):
                arr = self.regs_i.get(rid)
                if arr is None:
                    arr = np.zeros(self._nlanes, np.int64)
                    self.regs_i[rid] = arr
                arr[idx] = val
        return set_register

    def _set_space(self, rid: int, idx, val) -> None:
        cur = self.rspace.get(rid)
        scalar = not isinstance(val, np.ndarray)
        if scalar and not isinstance(cur, np.ndarray) \
                and (cur is None or cur == val):
            self.rspace[rid] = int(val)
            return
        if not isinstance(cur, np.ndarray):
            arr = np.full(self._nlanes, -1 if cur is None else int(cur),
                          np.int64)
        else:
            arr = cur
        arr[idx] = val
        self.rspace[rid] = arr

    def _split(self, idx, sp, addr):
        """Partition lanes by runtime address space: yields
        ``(code, lanes, addrs)``."""
        if not isinstance(sp, np.ndarray):
            yield int(sp), idx, addr
            return
        for code in np.unique(sp):
            sel = sp == code
            a = addr[sel] if isinstance(addr, np.ndarray) else addr
            yield int(code), idx[sel], a

    # -- memory helpers ----------------------------------------------------

    def _emit(self, site, kind, nbytes, space, buf, lanes, addrs) -> None:
        if not self._record:
            return
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0:
            a = np.full(len(lanes), int(a), np.int64)
        self._events.append((site, kind, nbytes, space, buf, lanes, a))

    def _global_locate(self, addrs, nbytes: int):
        """Bounds/alignment-check global addresses; returns
        ``(buffer index | index array, addr array)``.  Failures raise
        the scalar executor's own ``IndexError``."""
        a = np.asarray(addrs, np.int64)
        scalar = a.ndim == 0
        hot = self._gl_hot
        if hot is not None:
            hb, base, end, elem = hot
            ok = ((a >= base) & (a + nbytes <= end)
                  & ((a - base) % elem == 0))
            if bool(np.all(ok)):
                return hb, a
        bi = np.searchsorted(self._bases, a, side="right") - 1
        bic = np.maximum(bi, 0)
        off = a - self._bases[bic]
        ok = ((bi >= 0) & (off < self._spans[bic])
              & (off % self._elem[bic] == 0)
              & (off + nbytes <= self._raw[bic]))
        if not bool(np.all(ok)):
            bad = int(np.atleast_1d(a)[np.flatnonzero(~np.atleast_1d(ok))[0]])
            # Reproduces the executor's exact IndexError message.
            self.memory.load(bad, nbytes)
            raise IndexError(f"global address 0x{bad:x} rejected")
        if scalar:
            b = int(bi)
        else:
            lo, hi = int(bi.min()), int(bi.max())
            if lo != hi:
                return bi.astype(np.int16), a
            b = lo
        self._gl_hot = (b, int(self._bases[b]),
                        int(self._bases[b] + self._raw[b]),
                        int(self._elem[b]))
        return b, a

    def _guard_plain_global(self, addrs) -> None:
        """A plain access to an address an atomic touched this phase
        would observe the lockstep (not item-sequential) interleaving."""
        if not self._atomic_all:
            return
        for a in np.atleast_1d(np.asarray(addrs, np.int64)).tolist():
            if ("g", a) in self._atomic_all:
                raise VectorizationError(
                    "plain global access overlaps a same-phase atomic")

    def _global_gather(self, bi, a, lanes, is_float):
        if isinstance(bi, np.ndarray):
            out = np.zeros(len(lanes),
                           np.float64 if is_float else np.int64)
            for b in np.unique(bi):
                sel = bi == b
                out[sel] = self._gather_one(int(b), a[sel], is_float)
            return out
        return self._gather_one(int(bi), a, is_float)

    def _gather_one(self, b: int, a, is_float: bool):
        flat = self._flat[b]
        e = (np.asarray(a, np.int64) - int(self._bases[b])) \
            // int(self._elem[b])
        vals = flat[e]
        if is_float:
            return vals.astype(np.float64, copy=False) \
                if vals.dtype != np.float64 else vals
        if vals.dtype == np.uint64:
            return vals.view(np.int64)
        if vals.dtype.kind == "f":
            raise VectorizationError(
                "float buffer value loaded through an integer type")
        return vals.astype(np.int64, copy=False)

    def _global_scatter(self, bi, a, vals) -> None:
        if isinstance(bi, np.ndarray):
            va = np.asarray(vals)
            for b in np.unique(bi):
                sel = bi == b
                v = va[sel] if va.ndim else va
                self._scatter_one(int(b), a[sel], v)
            return
        self._scatter_one(int(bi), a, vals)

    def _scatter_one(self, b: int, a, vals) -> None:
        flat = self._flat[b]
        e = (np.asarray(a, np.int64) - int(self._bases[b])) \
            // int(self._elem[b])
        va = np.asarray(vals)
        if va.dtype.kind == "i" and flat.dtype == np.uint64:
            va = va.view(np.uint64) if va.dtype == np.int64 \
                else va.astype(np.uint64)
        # Duplicate element indices: numpy fancy assignment keeps the
        # last occurrence — ascending lane order, matching the scalar
        # executor where higher work-items store later in the phase.
        flat[e] = va

    def _local_gather(self, a, lanes, is_float: bool):
        arr = self._local_f if is_float else self._local_i
        aa = np.asarray(a, np.int64)
        if aa.ndim == 0:
            aa = np.full(len(lanes), int(aa), np.int64)
        ok = (aa >= 0) & (aa < self._local_cap)
        if bool(np.all(ok)):
            return arr[aa]
        # Out-of-arena local/constant reads mirror the scalar
        # executor's FlatSpace default: never-stored addresses read 0.
        out = np.zeros(len(aa), arr.dtype)
        out[ok] = arr[aa[ok]]
        return out

    def _local_scatter(self, a, lanes, vals, is_float: bool) -> None:
        arr = self._local_f if is_float else self._local_i
        aa = np.asarray(a, np.int64)
        if aa.ndim == 0:
            aa = np.full(len(lanes), int(aa), np.int64)
        if not bool(np.all((aa >= 0) & (aa < self._local_cap))):
            raise VectorizationError("local store outside the local arena")
        arr[aa] = vals

    # -- private slots -----------------------------------------------------

    def _priv_entry(self, addr: int) -> list:
        ent = self._priv.get(addr)
        if ent is None:
            ent = [None, None, np.zeros(self._nlanes, bool), None]
            self._priv[addr] = ent
        return ent

    def _priv_store(self, lanes, addrs, vals, spc, is_float) -> None:
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0 or a.min() == a.max():
            addr = int(a) if a.ndim == 0 else int(a[0])
            self._priv_store_at(addr, lanes, vals, spc, is_float)
            return
        for addr in np.unique(a):
            sel = a == addr
            v = vals[sel] if isinstance(vals, np.ndarray) else vals
            s = spc[sel] if isinstance(spc, np.ndarray) else spc
            self._priv_store_at(int(addr), lanes[sel], v, s, is_float)

    def _priv_store_at(self, addr, lanes, vals, spc, is_float) -> None:
        ent = self._priv_entry(addr)
        slot = 1 if is_float else 0
        arr = ent[slot]
        if arr is None:
            arr = np.zeros(self._nlanes,
                           np.float64 if is_float else np.int64)
            ent[slot] = arr
        arr[lanes] = vals
        ent[2][lanes] = True
        if spc is not None:
            if ent[3] is None:
                ent[3] = np.full(self._nlanes, -1, np.int64)
            ent[3][lanes] = spc

    def _priv_load(self, lanes, addrs, set_value, rid_space,
                   is_float) -> None:
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0 or a.min() == a.max():
            self._priv_load_at(int(a) if a.ndim == 0 else int(a[0]),
                               lanes, set_value, rid_space, is_float)
            return
        for addr in np.unique(a):
            sel = a == addr
            self._priv_load_at(int(addr), lanes[sel], set_value,
                               rid_space, is_float)

    def _priv_load_at(self, addr, lanes, set_value, rid_space,
                      is_float) -> None:
        ent = self._priv.get(addr)
        if ent is None or not bool(ent[2][lanes].all()):
            raise IndexError(f"read of uninitialised address 0x{addr:x}")
        vals = self._slot_values(ent, lanes, is_float)
        set_value(lanes, vals)
        if rid_space is not None:
            if ent[3] is None:
                raise VectorizationError(
                    "non-pointer value loaded as pointer")
            self._set_space(rid_space, lanes, ent[3][lanes])

    @staticmethod
    def _slot_values(ent, lanes, is_float):
        iv, fv = ent[0], ent[1]
        if is_float:
            if fv is not None:
                return fv[lanes]
            if iv is not None:
                # Scalar executor keeps the stored int in a float-typed
                # register; the numeric value is identical.
                return iv[lanes].astype(np.float64)
        else:
            if iv is not None:
                return iv[lanes]
            if fv is not None:
                raise VectorizationError(
                    "float value loaded through an integer slot")
        raise IndexError("read of uninitialised address 0x0")

    # -- compilation -------------------------------------------------------

    def _compile_block(self, block: BasicBlock) -> _VBlock:
        code = _VBlock(block.name)
        seg = _VSegment()
        for inst in block.instructions:
            if isinstance(inst, Barrier):
                seg.cost += 1
                seg.barrier = True
                code.segments.append(seg)
                seg = _VSegment()
                continue
            if isinstance(inst, Return):
                seg.cost += 1
                code.term = ("ret",)
                break
            if isinstance(inst, Branch):
                seg.cost += 1
                target = self._order.get(id(inst.target))
                if target is None:
                    raise VectorizationError("branch to unreachable block")
                code.term = ("br", target)
                break
            if isinstance(inst, CondBranch):
                seg.cost += 1
                then_i = self._order.get(id(inst.then_block))
                else_i = self._order.get(id(inst.else_block))
                if then_i is None or else_i is None:
                    raise VectorizationError("branch to unreachable block")
                code.term = ("cbr", self._getter(inst.cond),
                             then_i, else_i)
                break
            seg.cost += 1
            op = self._compile(inst)
            if op is not None:
                seg.ops.append(op)
        if code.term is None:
            raise VectorizationError(f"no terminator in {block.name}")
        code.segments.append(seg)
        return code

    def _compile(self, inst) -> Optional[Callable]:
        if id(inst) in self._skip:
            return None
        if isinstance(inst, Alloca):
            return self._c_alloca(inst)
        if isinstance(inst, BinaryOp):
            return self._c_binop(inst)
        if isinstance(inst, CompareOp):
            return self._c_compare(inst)
        if isinstance(inst, Cast):
            return self._c_cast(inst)
        if isinstance(inst, Select):
            return self._c_select(inst)
        if isinstance(inst, Load):
            return self._c_load(inst)
        if isinstance(inst, Store):
            return self._c_store(inst)
        if isinstance(inst, GetElementPtr):
            return self._c_gep(inst)
        if isinstance(inst, Call):
            return self._c_call(inst)
        raise VectorizationError(f"cannot vectorize {inst!r}")

    def _c_alloca(self, inst: Alloca) -> Callable:
        nbytes = max(inst.allocated.bytes, 1)
        rid = id(inst.result)
        if inst.space != AddressSpace.LOCAL and rid in self._promoted:
            def op(idx):
                ent = self._pslots.get(rid)
                if ent is not None:
                    ent[2][idx] = False
                    ent[4] = False
            return op
        set_ = self._setter(inst.result)
        if inst.space == AddressSpace.LOCAL:
            key = id(inst)

            def op(idx):
                addr = self._local_allocas.get(key)
                if addr is None:
                    nxt = -(-self._local_next // 8) * 8
                    addr = nxt
                    self._local_next = nxt + nbytes
                    self._local_allocas[key] = addr
                set_(idx, addr)
                self._set_space(rid, idx, _LOC)
        else:
            def op(idx):
                nxt = self._priv_next
                aligned = -(-nxt[idx] // 8) * 8
                set_(idx, aligned)
                nxt[idx] = aligned + nbytes
                self._set_space(rid, idx, _PRIV)
        return op

    # -- arithmetic --------------------------------------------------------

    def _c_binop(self, inst: BinaryOp) -> Callable:
        t = inst.type
        set_ = self._setter(inst.result)
        opcode = inst.opcode
        if t.is_integer:
            ga, gb = self._getter(inst.lhs), self._getter(inst.rhs)
            return self._c_int_binop(opcode, t, ga, gb, set_)
        ga, gb = self._fgetter(inst.lhs), self._fgetter(inst.rhs)
        if opcode == "fadd":
            def op(idx):
                set_(idx, np.asarray(ga(idx)) + gb(idx))
        elif opcode == "fsub":
            def op(idx):
                set_(idx, np.asarray(ga(idx)) - gb(idx))
        elif opcode == "fmul":
            def op(idx):
                set_(idx, np.asarray(ga(idx)) * gb(idx))
        elif opcode == "fdiv":
            def op(idx):
                a = np.asarray(ga(idx), np.float64)
                b = np.asarray(gb(idx), np.float64)
                a, b = np.broadcast_arrays(a, b)
                zero = b == 0.0
                with np.errstate(all="ignore"):
                    if not zero.any():
                        set_(idx, a / b)
                        return
                    # The scalar executor's _float_div: the sign of the
                    # *numerator* decides (b == -0.0 still yields +inf
                    # for a > 0).
                    safe = a / np.where(zero, 1.0, b)
                    r = np.where(
                        zero,
                        np.where(a > 0, math.inf,
                                 np.where(a < 0, -math.inf, math.nan)),
                        safe)
                set_(idx, r)
        elif opcode == "frem":
            def op(idx):
                a = np.asarray(ga(idx), np.float64)
                b = np.asarray(gb(idx), np.float64)
                a, b = np.broadcast_arrays(a, b)
                if bool(np.isfinite(a).all()) and not bool((b == 0).any()):
                    with np.errstate(all="ignore"):
                        set_(idx, np.fmod(a, b))
                    return
                set_(idx, np.array(
                    [math.fmod(x, y)
                     for x, y in zip(a.tolist(), b.tolist())], np.float64))
        else:
            raise VectorizationError(f"unknown binop {opcode!r}")
        return op

    def _c_int_binop(self, opcode, t, ga, gb, set_) -> Callable:
        bits, signed = t.bits, t.is_signed
        u64 = _is_u64(t)
        if opcode in ("add", "sub", "mul", "and", "or", "xor"):
            import operator as _op
            fn = {"add": _op.add, "sub": _op.sub, "mul": _op.mul,
                  "and": _op.and_, "or": _op.or_, "xor": _op.xor}[opcode]

            def op(idx):
                set_(idx, _mask_val(fn(np.asarray(ga(idx)),
                                       np.asarray(gb(idx))),
                                    bits, signed))
        elif opcode in ("div", "rem"):
            want_rem = opcode == "rem"

            def op(idx):
                a, b = np.asarray(ga(idx)), np.asarray(gb(idx))
                if bool(np.any(b == 0)):
                    raise ExecutionError(
                        "integer remainder by zero" if want_rem
                        else "integer division by zero")
                if u64:
                    au, bu = _u64(a), _u64(b)
                    q = au // bu
                    r = _i64(au - q * bu) if want_rem else _i64(q)
                else:
                    q = np.abs(a) // np.abs(b)
                    q = np.where((a >= 0) == (b >= 0), q, -q)
                    r = a - q * b if want_rem else q
                set_(idx, _mask_val(r, bits, signed))
        elif opcode == "shl":
            def op(idx):
                r = np.asarray(ga(idx)) << (np.asarray(gb(idx)) & 63)
                set_(idx, _mask_val(r, bits, signed))
        elif opcode == "shr":
            if signed:
                def op(idx):
                    r = np.asarray(ga(idx)) >> (np.asarray(gb(idx)) & 63)
                    set_(idx, _mask_val(r, bits, signed))
            else:
                vbits = bits if 0 < bits < 64 else 64

                def op(idx):
                    a = np.asarray(ga(idx))
                    sh = np.asarray(gb(idx)) & 63
                    if vbits >= 64:
                        r = _i64(_u64(a) >> _u64(sh))
                    else:
                        r = (a & ((1 << vbits) - 1)) >> sh
                    set_(idx, _mask_val(r, bits, signed))
        else:
            raise VectorizationError(f"unknown binop {opcode!r}")
        return op

    def _c_compare(self, inst: CompareOp) -> Callable:
        import operator as _op
        fn = {"eq": _op.eq, "ne": _op.ne, "lt": _op.lt,
              "le": _op.le, "gt": _op.gt, "ge": _op.ge}.get(inst.pred)
        if fn is None:
            raise VectorizationError(f"unknown compare {inst.pred!r}")
        ga, gb = self._getter(inst.lhs), self._getter(inst.rhs)
        set_ = self._setter(inst.result)
        u64 = _is_u64(inst.lhs.type) or _is_u64(inst.rhs.type)

        def op(idx):
            a, b = ga(idx), gb(idx)
            if u64:
                a, b = _u64(np.asarray(a)), _u64(np.asarray(b))
            set_(idx, np.asarray(fn(a, b), np.int64))
        return op

    def _c_cast(self, inst: Cast) -> Callable:
        set_ = self._setter(inst.result)
        rid = id(inst.result)
        kind = inst.kind
        t = inst.type
        src = self._resolve(inst.value)
        src_float = self._is_float_value(src)
        is_ptr = isinstance(t, PointerType)
        if kind == "ptrcast" or (kind == "bitcast" and is_ptr):
            get_v = self._getter(inst.value)
            gsp = (self._space_getter(inst.value)
                   if isinstance(src.type, PointerType) else None)

            def op(idx):
                set_(idx, get_v(idx))
                if gsp is not None:
                    self._set_space(rid, idx, gsp(idx))
        elif kind == "bitcast":
            if t.is_integer:
                if src_float:
                    # Scalar executor passes floats through an integer
                    # bitcast unmasked — a float-typed value in an
                    # int register is outside our typed lanes.
                    raise VectorizationError(
                        "float value through integer bitcast")
                get_v = self._getter(inst.value)
                bits, signed = t.bits, t.is_signed

                def op(idx):
                    set_(idx, _mask_val(np.asarray(get_v(idx)),
                                        bits, signed))
            else:
                get_v = self._fgetter(inst.value)

                def op(idx):
                    set_(idx, get_v(idx))
        elif kind in ("sitofp", "uitofp"):
            get_v = self._getter(inst.value)
            vu64 = _is_u64(src.type)

            def op(idx):
                v = np.asarray(get_v(idx))
                if vu64:
                    v = _u64(v)
                set_(idx, v.astype(np.float64))
        elif kind in ("fptosi", "fptoui", "trunc", "zext", "sext"):
            bits, signed = t.bits, t.is_signed
            if src_float:
                get_v = self._fgetter(inst.value)

                def op(idx):
                    v = np.asarray(get_v(idx), np.float64)
                    finite = np.isfinite(v)
                    if bool(finite.all()) \
                            and bool((np.abs(v) < 2.0 ** 62).all()):
                        r = v.astype(np.int64)
                    else:
                        # int(x) on NaN/inf raises exactly as the
                        # scalar executor's int() conversion does.
                        r = np.array([int(x) if math.isfinite(x)
                                      else int(x)
                                      for x in v.tolist()], np.int64)
                    set_(idx, _mask_val(r, bits, signed))
            else:
                get_v = self._getter(inst.value)

                def op(idx):
                    set_(idx, _mask_val(np.asarray(get_v(idx)),
                                        bits, signed))
        elif kind in ("fpext", "fptrunc"):
            get_v = self._fgetter(inst.value)
            if t.bits == 32:
                def op(idx):
                    v = np.asarray(get_v(idx), np.float64)
                    set_(idx, v.astype(np.float32).astype(np.float64))
            else:
                def op(idx):
                    set_(idx, get_v(idx))
        else:
            raise VectorizationError(f"unknown cast {kind!r}")
        return op

    def _c_select(self, inst: Select) -> Callable:
        gc = self._getter(inst.operands[0])
        is_float = self._is_float_value(inst.result) \
            if inst.result is not None else False
        if is_float:
            ga = self._fgetter(inst.operands[1])
            gb = self._fgetter(inst.operands[2])
        else:
            ga = self._getter(inst.operands[1])
            gb = self._getter(inst.operands[2])
        set_ = self._setter(inst.result)
        rid = id(inst.result)
        if isinstance(inst.operands[1].type, PointerType):
            sa = self._space_getter(inst.operands[1])
            sb = self._space_getter(inst.operands[2])
        else:
            sa = sb = None

        def op(idx):
            c = np.asarray(gc(idx)) != 0
            set_(idx, np.where(c, ga(idx), gb(idx)))
            if sa is not None:
                a, b = sa(idx), sb(idx)
                if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) \
                        or a != b:
                    self._set_space(rid, idx, np.where(c, a, b))
                else:
                    self._set_space(rid, idx, a)
        return op

    def _c_gep(self, inst: GetElementPtr) -> Callable:
        get_base = self._getter(inst.base)
        get_index = self._getter(inst.index)
        gsp = self._space_getter(inst.base)
        elem = inst.base.type.pointee  # type: ignore[union-attr]
        if isinstance(elem, ArrayType):
            elem = elem.element
        scale = max(elem.bytes, 1)
        set_ = self._setter(inst.result)
        rid = id(inst.result)

        def op(idx):
            set_(idx, np.asarray(get_base(idx))
                 + np.asarray(get_index(idx)) * scale)
            self._set_space(rid, idx, gsp(idx))
        return op

    # -- memory ------------------------------------------------------------

    def _c_load(self, inst: Load) -> Callable:
        if isinstance(inst.pointer, Register) \
                and id(inst.pointer) in self._promoted:
            return self._c_promoted_load(inst)
        gp = self._getter(inst.pointer)
        gsp = self._space_getter(inst.pointer)
        nbytes = max(inst.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        is_float = inst.type.is_float
        set_ = self._setter(inst.result)
        rid_space = (id(inst.result)
                     if isinstance(inst.type, PointerType) else None)

        def op(idx):
            addr = gp(idx)
            for code, lanes, a in self._split(idx, gsp(idx), addr):
                if code == _PRIV:
                    self._priv_load(lanes, a, set_, rid_space, is_float)
                elif code in (_LOC, _CONST):
                    self._emit(site, _PK_READ, nbytes, _PK_LOCAL,
                               self._local_buf_index, lanes, a)
                    set_(lanes, self._local_gather(a, lanes, is_float))
                else:
                    self._guard_plain_global(a)
                    bi, aa = self._global_locate(a, nbytes)
                    self._emit(site, _PK_READ, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
                    set_(lanes, self._global_gather(bi, aa, lanes,
                                                    is_float))
        return op

    def _c_store(self, inst: Store) -> Callable:
        if isinstance(inst.pointer, Register) \
                and id(inst.pointer) in self._promoted:
            return self._c_promoted_store(inst)
        gp = self._getter(inst.pointer)
        gsp = self._space_getter(inst.pointer)
        nbytes = max(inst.value.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        is_float = self._is_float_value(self._resolve(inst.value))
        gv = self._getter(inst.value)
        vsp = (self._space_getter(inst.value)
               if isinstance(self._resolve(inst.value).type, PointerType)
               else None)

        def op(idx):
            addr = gp(idx)
            vals = gv(idx)
            for code, lanes, a in self._split(idx, gsp(idx), addr):
                sel = None
                if len(lanes) != len(idx):
                    sel = np.isin(idx, lanes)
                v = vals[sel] if (sel is not None
                                  and isinstance(vals, np.ndarray)) else vals
                if code == _PRIV:
                    s = vsp(idx) if vsp is not None else None
                    if sel is not None and isinstance(s, np.ndarray):
                        s = s[sel]
                    self._priv_store(lanes, a, v, s, is_float)
                elif code in (_LOC, _CONST):
                    self._emit(site, _PK_WRITE, nbytes, _PK_LOCAL,
                               self._local_buf_index, lanes, a)
                    self._local_scatter(a, lanes, v, is_float)
                else:
                    self._guard_plain_global(a)
                    bi, aa = self._global_locate(a, nbytes)
                    self._emit(site, _PK_WRITE, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
                    self._global_scatter(bi, aa, v)
        return op

    def _c_promoted_load(self, inst: Load) -> Callable:
        sid = id(inst.pointer)
        set_ = self._setter(inst.result)
        is_float = inst.type.is_float
        rid_space = (id(inst.result)
                     if isinstance(inst.type, PointerType) else None)

        def op(idx):
            ent = self._pslots.get(sid)
            if ent is None or not (ent[4] or bool(ent[2][idx].all())):
                raise IndexError("read of uninitialised address 0x40")
            set_(idx, self._slot_values(ent, idx, is_float))
            if rid_space is not None:
                if ent[3] is None:
                    raise VectorizationError(
                        "non-pointer value loaded as pointer")
                self._set_space(rid_space, idx, ent[3][idx])
        return op

    def _c_promoted_store(self, inst: Store) -> Callable:
        sid = id(inst.pointer)
        is_float = self._is_float_value(self._resolve(inst.value))
        gv = self._getter(inst.value)
        vsp = (self._space_getter(inst.value)
               if isinstance(self._resolve(inst.value).type, PointerType)
               else None)
        slot = 1 if is_float else 0

        def op(idx):
            ent = self._pslots.get(sid)
            if ent is None:
                ent = [None, None, np.zeros(self._nlanes, bool),
                       None, False]
                self._pslots[sid] = ent
            arr = ent[slot]
            if arr is None:
                arr = np.zeros(self._nlanes,
                               np.float64 if is_float else np.int64)
                ent[slot] = arr
            arr[idx] = gv(idx)
            if not ent[4]:
                ent[2][idx] = True
                if len(idx) == self._nlanes:
                    ent[4] = True
            if vsp is not None:
                if ent[3] is None:
                    ent[3] = np.full(self._nlanes, -1, np.int64)
                ent[3][idx] = vsp(idx)
        return op

    # -- calls -------------------------------------------------------------

    def _c_call(self, inst: Call) -> Optional[Callable]:
        name = inst.callee
        if name in KNOWN_ATOMICS:
            return self._c_atomic(inst)
        if name in GEOMETRY_BUILTINS:
            if inst.result is None:
                return None
            d = 0
            if inst.operands:
                o = self._resolve(inst.operands[0])
                if isinstance(o, Constant):
                    d = int(o.value)
                else:
                    return self._c_geometry_dyn(name, inst)
            return self._c_geometry(name, d, self._setter(inst.result))
        return self._c_math(name, inst)

    def _c_geometry(self, name: str, d: int, set_) -> Callable:
        if name == "get_local_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._cur_lid[d][idx] if d < nd.dims else 0)
        elif name == "get_group_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._cur_gid[d] if d < nd.dims else 0)
        elif name == "get_global_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._cur_ggid[d][idx] if d < nd.dims else 0)
        elif name == "get_global_size":
            def op(idx):
                nd = self._nd
                set_(idx, nd.global_size[d] if d < nd.dims else 1)
        elif name == "get_local_size":
            def op(idx):
                nd = self._nd
                set_(idx, nd.local_size[d] if d < nd.dims else 1)
        elif name == "get_num_groups":
            def op(idx):
                nd = self._nd
                set_(idx, nd.num_groups[d] if d < nd.dims else 1)
        elif name == "get_global_offset":
            def op(idx):
                set_(idx, 0)
        elif name == "get_work_dim":
            def op(idx):
                set_(idx, self._nd.dims)
        else:
            raise VectorizationError(f"unknown geometry builtin {name!r}")
        return op

    def _c_geometry_dyn(self, name: str, inst: Call) -> Callable:
        """Geometry builtin with a runtime dimension operand: evaluate
        per unique dimension value."""
        gd = self._getter(inst.operands[0])
        set_ = self._setter(inst.result)
        per_dim = [self._c_geometry(name, d, set_) for d in range(3)]

        def op(idx):
            d = np.asarray(gd(idx))
            if d.ndim == 0:
                per_dim[min(int(d), 2)](idx)
                return
            for dv in np.unique(d):
                per_dim[min(int(dv), 2)](idx[d == dv])
        return op

    def _lanewise(self, fn, idx, *vals):
        n = len(idx)
        cols = []
        for v in vals:
            a = np.asarray(v, np.float64)
            if a.ndim == 0:
                a = np.full(n, float(a), np.float64)
            cols.append(a.astype(np.float64, copy=False))
        return np.array([fn(*t) for t in
                         zip(*(c.tolist() for c in cols))], np.float64)

    def _c_math(self, name: str, inst: Call) -> Optional[Callable]:
        """Float and integer-capable math builtins.  Vectorized paths
        are used only where numpy provably matches the scalar
        executor's Python arithmetic bit-for-bit; transcendentals run
        per-lane through the same ``math`` functions."""
        if inst.result is None:
            # A known builtin whose result is discarded has no
            # observable effect (traces only come from memory ops).
            return None
        set_ = self._setter(inst.result)
        res_float = self._is_float_value(inst.result)

        if name in _LANEWISE_1:
            fn = _LANEWISE_1[name]
            gx = self._fgetter(inst.operands[0])

            def op(idx):
                set_(idx, self._lanewise(fn, idx, gx(idx)))
            return op
        if name in _LANEWISE_2:
            fn = _LANEWISE_2[name]
            gx = self._fgetter(inst.operands[0])
            gy = self._fgetter(inst.operands[1])

            def op(idx):
                set_(idx, self._lanewise(fn, idx, gx(idx), gy(idx)))
            return op

        if name in ("sqrt", "native_sqrt", "rsqrt", "native_rsqrt"):
            gx = self._fgetter(inst.operands[0])
            recip = name in ("rsqrt", "native_rsqrt")

            def op(idx):
                v = np.asarray(gx(idx), np.float64)
                if bool((v < 0).any()):
                    raise ValueError("math domain error")
                r = np.sqrt(v)
                if recip:
                    if bool((r == 0).any()):
                        raise ZeroDivisionError("float division by zero")
                    r = 1.0 / r
                set_(idx, r)
            return op
        if name == "fabs":
            gx = self._fgetter(inst.operands[0])

            def op(idx):
                set_(idx, np.abs(np.asarray(gx(idx), np.float64)))
            return op
        if name in ("floor", "ceil", "trunc", "round"):
            gx = self._fgetter(inst.operands[0])
            vec = {"floor": np.floor, "ceil": np.ceil,
                   "trunc": np.trunc, "round": np.rint}[name]
            ref = {"floor": math.floor, "ceil": math.ceil,
                   "trunc": math.trunc,
                   "round": lambda x: float(round(x))}[name]

            def op(idx):
                v = np.asarray(gx(idx), np.float64)
                if bool(np.isfinite(v).all()):
                    set_(idx, vec(v))
                else:
                    # math.floor/ceil/trunc/round raise on inf/NaN
                    # exactly like the scalar executor.
                    set_(idx, self._lanewise(ref, idx, v))
            return op
        if name == "native_recip":
            gx = self._fgetter(inst.operands[0])

            def op(idx):
                v = np.asarray(gx(idx), np.float64)
                if bool((v == 0).any()):
                    raise ZeroDivisionError("float division by zero")
                set_(idx, 1.0 / v)
            return op
        if name == "sign":
            gx = self._fgetter(inst.operands[0])

            def op(idx):
                v = np.asarray(gx(idx), np.float64)
                set_(idx, (v > 0).astype(np.float64)
                     - (v < 0).astype(np.float64))
            return op
        if name in ("fmin", "fmax"):
            ga = self._fgetter(inst.operands[0])
            gb = self._fgetter(inst.operands[1])
            is_min = name == "fmin"

            def op(idx):
                a = np.asarray(ga(idx), np.float64)
                b = np.asarray(gb(idx), np.float64)
                # Python min(a, b) returns b only when b < a — NaN
                # behavior matches np.where, not np.fmin.
                set_(idx, np.where(b < a, b, a) if is_min
                     else np.where(b > a, b, a))
            return op
        if name == "fmod":
            ga = self._fgetter(inst.operands[0])
            gb = self._fgetter(inst.operands[1])

            def op(idx):
                a = np.asarray(ga(idx), np.float64)
                b = np.asarray(gb(idx), np.float64)
                a, b = np.broadcast_arrays(a, b)
                if bool(np.isfinite(a).all()) and not bool((b == 0).any()):
                    with np.errstate(all="ignore"):
                        set_(idx, np.fmod(a, b))
                else:
                    set_(idx, self._lanewise(math.fmod, idx, a, b))
            return op
        if name == "native_divide":
            ga = self._fgetter(inst.operands[0])
            gb = self._fgetter(inst.operands[1])

            def op(idx):
                a = np.asarray(ga(idx), np.float64)
                b = np.asarray(gb(idx), np.float64)
                if bool((b == 0).any()):
                    raise ZeroDivisionError("float division by zero")
                set_(idx, a / b)
            return op
        if name == "step":
            ge = self._fgetter(inst.operands[0])
            gx = self._fgetter(inst.operands[1])

            def op(idx):
                e = np.asarray(ge(idx), np.float64)
                x = np.asarray(gx(idx), np.float64)
                set_(idx, np.where(x < e, 0.0, 1.0))
            return op
        if name in ("mad", "fma"):
            gx = self._fgetter(inst.operands[0])
            gy = self._fgetter(inst.operands[1])
            gz = self._fgetter(inst.operands[2])

            def op(idx):
                # Unfused multiply-add, matching the scalar executor.
                set_(idx, np.asarray(gx(idx), np.float64) * gy(idx)
                     + gz(idx))
            return op
        if name == "mix":
            gx = self._fgetter(inst.operands[0])
            gy = self._fgetter(inst.operands[1])
            gt = self._fgetter(inst.operands[2])

            def op(idx):
                x = np.asarray(gx(idx), np.float64)
                set_(idx, x + (np.asarray(gy(idx), np.float64) - x)
                     * gt(idx))
            return op

        # Integer-capable builtins (min/max/abs/clamp/mul24/mad24):
        # typed by the result.  np.where(b > a, b, a) reproduces
        # Python's max for both ints and floats (incl. NaN ordering).
        if name in ("min", "max"):
            get = self._fgetter if res_float else self._getter
            ga, gb = get(inst.operands[0]), get(inst.operands[1])
            is_min = name == "min"

            def op(idx):
                a, b = np.asarray(ga(idx)), np.asarray(gb(idx))
                set_(idx, np.where(b < a, b, a) if is_min
                     else np.where(b > a, b, a))
            return op
        if name == "abs":
            get = self._fgetter if res_float else self._getter
            ga = get(inst.operands[0])

            def op(idx):
                set_(idx, np.abs(np.asarray(ga(idx))))
            return op
        if name == "clamp":
            get = self._fgetter if res_float else self._getter
            gx, glo, ghi = (get(o) for o in inst.operands)

            def op(idx):
                x = np.asarray(gx(idx))
                lo = np.asarray(glo(idx))
                hi = np.asarray(ghi(idx))
                t = np.where(lo > x, lo, x)        # max(x, lo)
                set_(idx, np.where(hi < t, hi, t))  # min(., hi)
            return op
        if name == "mul24":
            ga = self._getter(inst.operands[0])
            gb = self._getter(inst.operands[1])

            def op(idx):
                set_(idx, _mask_val(np.asarray(ga(idx))
                                    * np.asarray(gb(idx)), 32, True))
            return op
        if name == "mad24":
            ga = self._getter(inst.operands[0])
            gb = self._getter(inst.operands[1])
            gc = self._getter(inst.operands[2])

            def op(idx):
                set_(idx, _mask_val(np.asarray(ga(idx))
                                    * np.asarray(gb(idx))
                                    + np.asarray(gc(idx)), 32, True))
            return op
        raise VectorizationError(f"unknown builtin {name!r}")

    # -- atomics -----------------------------------------------------------

    def _c_atomic(self, inst: Call) -> Callable:
        name = inst.callee
        if not inst.operands:
            raise VectorizationError("atomic with no operands")
        gp = self._getter(inst.operands[0])
        gsp = self._space_getter(inst.operands[0])
        arg_getters = [self._getter(o) for o in inst.operands[1:]]
        site = self._site_of.get(id(inst), -1)
        nbytes = 4
        result = inst.result
        set_ = self._setter(result) if result is not None else None
        res_float = (self._is_float_value(result)
                     if result is not None else False)
        observed = result is not None and id(result) in self._used_regs
        strict = observed or name not in _COMMUTATIVE_ATOMICS

        def op(idx):
            addr = gp(idx)
            args = [np.asarray(g(idx)) for g in arg_getters]
            for code, lanes, a in self._split(idx, gsp(idx), addr):
                sel = None
                if len(lanes) != len(idx):
                    sel = np.isin(idx, lanes)
                lane_args = [ar[sel] if (sel is not None and ar.ndim)
                             else ar for ar in args]
                if code == _LOC:
                    self._atomic_lanes(name, "l", None, a, lanes,
                                       lane_args, set_, res_float,
                                       strict, site, emit=False)
                else:
                    bi, aa = self._global_locate(a, nbytes)
                    self._emit(site, _PK_READ, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
                    self._atomic_lanes(name, "g", bi, aa, lanes,
                                       lane_args, set_, res_float,
                                       strict, site, emit=False)
                    self._emit(site, _PK_WRITE, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
        return op

    def _atomic_lanes(self, name, tag, bi, addrs, lanes, args, set_,
                      res_float, strict, site, emit) -> None:
        a = np.atleast_1d(np.asarray(addrs, np.int64))
        if a.shape[0] == 1 and len(lanes) > 1:
            a = np.full(len(lanes), int(a[0]), np.int64)
        keys = [(tag, int(x)) for x in a.tolist()]
        if strict:
            # An observed (or non-commutative) atomic is ordered: any
            # same-phase overlap with another atomic step would expose
            # the lockstep schedule.
            if any(k in self._atomic_all for k in keys):
                raise VectorizationError(
                    "same-phase atomic address reuse with an observed "
                    "or non-commutative atomic")
            self._atomic_strict.update(keys)
        elif any(k in self._atomic_strict for k in keys):
            raise VectorizationError(
                "same-phase atomic address reuse with an observed "
                "or non-commutative atomic")
        self._atomic_all.update(keys)

        olds = []
        # Per-lane in ascending lane (= work-item) order: within one
        # step this matches the scalar executor's phase order.
        for k in range(len(lanes)):
            if tag == "l":
                addr = int(a[k])
                if not 0 <= addr < self._local_cap:
                    raise VectorizationError(
                        "local atomic outside the local arena")
                old = int(self._local_i[addr])
                new = self._atomic_new(name, old, args, k)
                self._local_i[addr] = new
                olds.append(old)
            else:
                b = int(bi[k]) if isinstance(bi, np.ndarray) else int(bi)
                flat = self._flat[b]
                e = (int(a[k]) - int(self._bases[b])) \
                    // int(self._elem[b])
                old = flat[e].item()
                new = self._atomic_new(name, old, args, k)
                flat[e] = new
                olds.append(old)
        if set_ is not None:
            if res_float:
                set_(lanes, np.array([float(v) for v in olds],
                                     np.float64))
            else:
                set_(lanes, np.array(
                    [_mask_scalar(int(v), 64, True) for v in olds],
                    np.int64))

    @staticmethod
    def _atomic_new(name, old, args, k):
        def arg(i):
            v = args[i]
            x = v[k] if isinstance(v, np.ndarray) and v.ndim else v
            return x.item() if isinstance(x, np.generic) else x

        if name == "atomic_add":
            return old + arg(0)
        if name == "atomic_sub":
            return old - arg(0)
        if name == "atomic_inc":
            return old + 1
        if name == "atomic_dec":
            return old - 1
        if name == "atomic_min":
            return min(old, arg(0))
        if name == "atomic_max":
            return max(old, arg(0))
        if name == "atomic_xchg":
            return arg(0)
        if name == "atomic_cmpxchg":
            return arg(1) if old == arg(0) else old
        raise ExecutionError(f"unknown atomic {name!r}")
