"""Runtime memory spaces for the interpreter.

Pointers at runtime are :class:`PointerValue` — an address space tag plus
a byte address.  Global memory is a set of named :class:`Buffer` objects
backed by numpy arrays and laid out in one flat byte-addressed space, so
the recorded traces carry realistic addresses for the DRAM model's
byte-interleaved bank mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.ir.types import AddressSpace, Type

#: Buffers are aligned to this many bytes in the flat global space,
#: mirroring the 4KB page alignment OpenCL runtimes use.
BUFFER_ALIGNMENT = 4096


@dataclass(frozen=True)
class PointerValue:
    """A runtime pointer: (address space, byte address)."""

    space: AddressSpace
    addr: int

    def offset(self, byte_delta: int) -> "PointerValue":
        return PointerValue(self.space, self.addr + byte_delta)

    def __repr__(self) -> str:
        return f"<{self.space}+0x{self.addr:x}>"


_DTYPE_FOR = {
    ("float", 32): np.float32,
    ("float", 64): np.float64,
    ("int", 8): np.int8,
    ("int", 16): np.int16,
    ("int", 32): np.int32,
    ("int", 64): np.int64,
    ("uint", 8): np.uint8,
    ("uint", 16): np.uint16,
    ("uint", 32): np.uint32,
    ("uint", 64): np.uint64,
}


def dtype_for_type(t: Type) -> np.dtype:
    """The numpy dtype backing an IR scalar type."""
    kind = "float" if t.is_float else ("int" if t.is_signed else "uint")
    bits = max(t.bits, 8)
    return np.dtype(_DTYPE_FOR[(kind, bits)])


class Buffer:
    """A global-memory buffer visible to a kernel argument."""

    def __init__(self, name: str, data: np.ndarray) -> None:
        self.name = name
        self.data = np.ascontiguousarray(data)
        self.base: int = -1          # assigned by GlobalMemory.bind

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def elem_size(self) -> int:
        return int(self.data.itemsize)

    def __repr__(self) -> str:
        return (f"<Buffer {self.name} {self.data.dtype}x{self.data.size} "
                f"@0x{self.base:x}>")


class GlobalMemory:
    """The flat global address space: buffers placed at aligned bases."""

    def __init__(self) -> None:
        self._buffers: List[Buffer] = []
        self._next_base = BUFFER_ALIGNMENT  # keep address 0 invalid

    def bind(self, buffer: Buffer) -> Buffer:
        buffer.base = self._next_base
        size = max(buffer.nbytes, 1)
        aligned = -(-size // BUFFER_ALIGNMENT) * BUFFER_ALIGNMENT
        self._next_base += aligned
        self._buffers.append(buffer)
        return buffer

    def find(self, addr: int) -> Tuple[Buffer, int]:
        """Resolve a byte address to (buffer, byte offset)."""
        for buf in self._buffers:
            if buf.base <= addr < buf.base + max(buf.nbytes, 1):
                return buf, addr - buf.base
        raise IndexError(f"global address 0x{addr:x} is out of bounds "
                         f"of every buffer")

    def load(self, addr: int, nbytes: int):
        buf, off = self.find(addr)
        if off % buf.elem_size != 0 or off + nbytes > buf.nbytes:
            raise IndexError(
                f"misaligned/overrun access at 0x{addr:x} in {buf.name}")
        value = buf.data.flat[off // buf.elem_size]
        return value.item()

    def store(self, addr: int, nbytes: int, value) -> None:
        buf, off = self.find(addr)
        if off % buf.elem_size != 0 or off + nbytes > buf.nbytes:
            raise IndexError(
                f"misaligned/overrun access at 0x{addr:x} in {buf.name}")
        buf.data.flat[off // buf.elem_size] = value

    @property
    def buffers(self) -> List[Buffer]:
        return list(self._buffers)


class FlatSpace:
    """A simple byte-addressed space for local or private storage.

    Values are kept per element address (the lowering only ever reads an
    address with the same element type it wrote, so no byte packing is
    needed).
    """

    def __init__(self) -> None:
        self._values: Dict[int, object] = {}
        self._next = 64  # keep 0 invalid

    def reset(self) -> None:
        """Forget every value and allocation (cheaper than a new
        instance when the executor reuses work-item state)."""
        self._values.clear()
        self._next = 64

    def allocate(self, nbytes: int, align: int = 8) -> int:
        self._next = -(-self._next // align) * align
        addr = self._next
        self._next += max(nbytes, 1)
        return addr

    def load(self, addr: int, default=None):
        if addr not in self._values:
            if default is None:
                raise IndexError(f"read of uninitialised address 0x{addr:x}")
            return default
        return self._values[addr]

    def store(self, addr: int, value) -> None:
        self._values[addr] = value

    def contains(self, addr: int) -> bool:
        return addr in self._values
