"""FIFO-aware co-execution of multi-kernel programs.

Kernels connected by pipes cannot be interpreted one at a time: a
blocking ``pipe.read`` only makes progress if the producer kernel is
simultaneously live.  :class:`ProgramExecutor` runs every stage of a
program concurrently under a deterministic round-robin scheduler —
each scheduling turn, every runnable work-item of every stage executes
until it blocks (pipe full/empty, work-group barrier) or finishes.

This is the ground truth for the analytical channel model
(:mod:`repro.model.channel`): the per-channel stall counters recorded
here (one stall event per blocked scheduling turn) are what the closed
forms predict.  Stall accounting:

- ``stalls_full``: turns a writer spent blocked because the FIFO held
  ``depth`` elements;
- ``stalls_empty``: turns a reader spent blocked on an empty FIFO;
- ``max_occupancy``: high-water mark of the FIFO, for depth sizing.

Buffers are private to each stage here; data flows between stages
through the channels.  (The buffer-through-DRAM realization needs no
co-execution — its stages are launched sequentially.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interp.executor import (
    ExecutionError,
    KernelExecutor,
    LaunchResult,
    NDRange,
    _WorkItemState,
)
from repro.interp.memory import Buffer, FlatSpace
from repro.ir.function import Function
from repro.ir.module import Channel, Module


class ChannelState:
    """Runtime state of one FIFO channel during co-execution."""

    __slots__ = ("channel", "depth", "queue", "reads", "writes",
                 "stalls_empty", "stalls_full", "max_occupancy")

    def __init__(self, channel: Channel, depth: Optional[int] = None) -> None:
        self.channel = channel
        self.depth = max(1, depth if depth is not None else channel.depth)
        self.queue: deque = deque()
        self.reads = 0
        self.writes = 0
        self.stalls_empty = 0
        self.stalls_full = 0
        self.max_occupancy = 0

    def __repr__(self) -> str:
        return (f"<ChannelState {self.channel.name} depth={self.depth} "
                f"occ={len(self.queue)} r={self.reads} w={self.writes} "
                f"stalls={self.stalls_empty}e/{self.stalls_full}f>")


@dataclass
class StageSpec:
    """One kernel launch inside a program co-execution."""

    fn: Function
    ndrange: NDRange
    buffers: Dict[str, Buffer] = field(default_factory=dict)
    scalars: Dict[str, object] = field(default_factory=dict)


@dataclass
class CoExecutionResult:
    """Everything recorded by one program co-execution."""

    #: per-stage launch results, in stage order (keyed by kernel name)
    launches: Dict[str, LaunchResult]
    #: per-channel runtime state with final stall counters
    channels: Dict[str, ChannelState]
    #: scheduling turns the round-robin driver needed
    turns: int


class _StageDriver:
    """Drives one stage's work-groups through blocking-aware execution."""

    def __init__(self, executor: KernelExecutor, ndrange: NDRange) -> None:
        self.ex = executor
        self.ndrange = ndrange
        executor._ndrange = ndrange
        self.groups = [tuple(reversed(g)) for g in ndrange.group_ids()]
        self.group_idx = -1
        self.result = LaunchResult()
        self.states: List[_WorkItemState] = []
        self.status: List[str] = []
        self.block_counts: Dict[str, int] = {}
        self.done = False
        self._next_group()

    def _next_group(self) -> None:
        self.group_idx += 1
        if self.group_idx >= len(self.groups):
            self.done = True
            self.ex._finalize_trip_counts(self.result)
            return
        ex = self.ex
        ex._local_mem = FlatSpace()
        ex._local_allocas = {}
        entry = ex.fn.entry
        lids = ex._local_ids(self.ndrange)
        pool = ex._state_pool
        while len(pool) < len(lids):
            pool.append(_WorkItemState(entry))
        self.states = pool[:len(lids)]
        gid = self.groups[self.group_idx]
        for state, lid in zip(self.states, lids):
            state.reset(entry, lid, gid)
        self.status = ["run"] * len(self.states)
        self.block_counts = {}

    def barrier_arrivals(self) -> int:
        return sum(s.barrier_hits for s in self.states)

    def step(self) -> None:
        """One scheduling turn: run every runnable item until it blocks."""
        if self.done:
            return
        ex = self.ex
        for i, state in enumerate(self.states):
            st = self.status[i]
            if st in ("done", "barrier"):
                continue
            self.status[i] = ex._run_until_barrier(state, self.block_counts)
        live = [s for s in self.status if s != "done"]
        if live and all(s == "barrier" for s in live):
            # Whole group arrived: release the barrier.
            self.status = ["run" if s == "barrier" else s
                           for s in self.status]
        if not live:
            self._finish_group()

    def _finish_group(self) -> None:
        result = self.result
        result.traces.extend(s.trace for s in self.states)
        for name, count in self.block_counts.items():
            result.block_counts[name] = (
                result.block_counts.get(name, 0) + count)
        if self.states:
            result.barriers_per_item = max(
                result.barriers_per_item, self.states[0].barrier_hits)
        result.work_items_executed += len(self.states)
        result.groups_executed += 1
        self._next_group()


class ProgramExecutor:
    """Co-executes the kernels of one module under FIFO semantics.

    Parameters
    ----------
    module:
        The compiled module whose channel table connects the stages.
    stages:
        The launches to co-execute, in stage order.  The scheduler's
        round-robin order follows this list, which makes the recorded
        stall counts deterministic.
    depths:
        Optional per-channel depth overrides (the DSE explores FIFO
        depths without recompiling).
    """

    def __init__(self, module: Module, stages: List[StageSpec],
                 depths: Optional[Dict[str, int]] = None,
                 max_steps: Optional[int] = None) -> None:
        if not stages:
            raise ExecutionError("program has no stages")
        depths = depths or {}
        self.module = module
        self.channels: Dict[str, ChannelState] = {
            c.name: ChannelState(c, depths.get(c.name))
            for c in module.channels
        }
        self._drivers: List[_StageDriver] = []
        self._names: List[str] = []
        for spec in stages:
            executor = KernelExecutor(
                spec.fn, spec.buffers, spec.scalars,
                max_steps=max_steps, channels=self.channels)
            self._drivers.append(_StageDriver(executor, spec.ndrange))
            self._names.append(spec.fn.name)

    def run(self) -> CoExecutionResult:
        drivers = self._drivers
        turns = 0
        while not all(d.done for d in drivers):
            before = self._signature()
            for d in drivers:
                d.step()
            turns += 1
            if self._signature() == before:
                raise ExecutionError(
                    "program co-execution deadlocked: "
                    + self._deadlock_detail())
        return CoExecutionResult(
            launches={name: d.result
                      for name, d in zip(self._names, drivers)},
            channels=dict(self.channels),
            turns=turns)

    def _signature(self) -> tuple:
        """Progress signature: unchanged across a full turn == deadlock.

        Stall counters are deliberately excluded — a blocked item bumps
        them every turn without making progress.
        """
        chans = tuple((c.reads, c.writes)
                      for c in self.channels.values())
        stage = tuple((d.group_idx,
                       sum(1 for s in d.status if s == "done"),
                       d.barrier_arrivals())
                      for d in self._drivers)
        return (chans, stage)

    def _deadlock_detail(self) -> str:
        parts = []
        for name, d in zip(self._names, self._drivers):
            if d.done:
                continue
            blocked = {s: d.status.count(s)
                       for s in set(d.status) if s != "done"}
            parts.append(f"{name}: {blocked}")
        for c in self.channels.values():
            parts.append(f"channel {c.channel.name}: "
                         f"{len(c.queue)}/{c.depth} occupied")
        return "; ".join(parts)
