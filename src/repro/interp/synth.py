"""Static trace synthesizer: analytic per-work-group memory traces.

When the access-summary engine (``repro.lint.summary``) proves a kernel
``STATIC`` — every branch condition, traced address, and callee is a
pure function of launch geometry and scalar arguments — the memory
trace can be *synthesized* without interpreting the kernel: no buffer
contents are ever read, float arithmetic is never evaluated, and whole
work-groups execute as vectorized numpy operations over lane arrays.

The synthesizer replicates the observable outputs of
:class:`~repro.interp.executor.KernelExecutor` exactly:

- per-work-item trace events, in per-lane program order (emitted as
  :class:`~repro.analysis.packed.PackedTraces`);
- ``block_counts`` (one count per fresh block entry, aggregated over
  lanes), ``trip_counts`` (shared ``finalize_trip_counts``),
  ``barriers_per_item``, and the group/item tallies of
  :class:`~repro.interp.executor.LaunchResult`.

Execution model: all profiled work-groups run together, one lane per
(group, work-item) pair.  Per-lane "program counters" hold the index
of the lane's current block in a fixed block ordering; each step picks
the minimum index, executes that block for exactly the lanes parked on
it (compact gather/scatter on full-lane ``int64`` register arrays),
and lets the terminator advance the lanes.  Divergent lanes simply
execute blocks in separate steps — per-lane traces and block counts
are schedule-independent, and groups never share private or register
state, so merging them is unobservable (local-memory allocas resolve
to the same addresses in every group, exactly as the executor's
per-group allocator does).

Barriers need no phase machinery here: without memory values they only
increment the per-lane barrier counter (and reset the per-phase step
budget), which is all the executor's outputs observe.

Anything outside the synthesizable subset — out-of-bounds or misaligned
global accesses, division by zero, uninitialised private reads, step or
phase budget overruns, unexpected IR — raises :class:`SynthesisError`;
the caller falls back to interpretation, which then reproduces the
executor's own error behavior.
"""

from __future__ import annotations

import operator as _op
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.interp.executor import (
    GEOMETRY_BUILTINS,
    INT_CAPABLE_BUILTINS,
    KNOWN_ATOMICS,
    LaunchResult,
    NDRange,
    finalize_trip_counts,
)
from repro.interp.memory import Buffer, GlobalMemory
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Barrier,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    CondBranch,
    GetElementPtr,
    Load,
    Return,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, PointerType
from repro.ir.values import Argument, Constant, Register, Value
from repro.lint.summary.classify import classify_function


class SynthesisError(Exception):
    """The kernel (or this launch) left the synthesizable subset."""


#: runtime address-space codes (kept distinct from packed-trace codes)
_PRIV, _GLOB, _LOC, _CONST = 0, 1, 2, 3

_SPACE_CODE = {
    AddressSpace.PRIVATE: _PRIV,
    AddressSpace.GLOBAL: _GLOB,
    AddressSpace.LOCAL: _LOC,
    AddressSpace.CONSTANT: _CONST,
}

#: packed-trace codes (repro.analysis.packed)
_PK_READ, _PK_WRITE = 0, 1
_PK_GLOBAL, _PK_LOCAL = 0, 1

_M64 = (1 << 64) - 1


def _mask_scalar(value: int, bits: int, signed: bool) -> int:
    value &= (1 << bits) - 1
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _mask_val(r, bits: int, signed: bool):
    """Fold a raw op result into the executor's masked integer domain.

    Storage is ``int64`` (the 64-bit two's-complement image), so for
    64-bit types the wrapped bits are already right; narrower types get
    the executor's ``_mask_int`` semantics, vectorized."""
    if bits <= 0 or bits >= 64:
        if isinstance(r, np.ndarray):
            return r
        return _mask_scalar(int(r), 64, True)
    m = (1 << bits) - 1
    r = r & m
    if signed:
        h = 1 << (bits - 1)
        if isinstance(r, np.ndarray):
            return np.where(r >= h, r - (h << 1), r)
        if r >= h:
            r -= h << 1
    return r


def _u64(x):
    """View an int64 value as its unsigned-64 interpretation."""
    if isinstance(x, np.ndarray):
        return x.view(np.uint64) if x.dtype == np.int64 \
            else x.astype(np.uint64)
    return np.uint64(int(x) & _M64)


def _i64(x):
    """Back from unsigned-64 to the int64 storage image."""
    return np.asarray(x, dtype=np.uint64).view(np.int64)


def _is_u64(t) -> bool:
    return bool(getattr(t, "is_integer", False)) and not t.is_signed \
        and t.bits >= 64


def promote_slots(blocks) -> Tuple[Dict[int, Value], set, set]:
    """mem2reg-lite over the Clang-O0-shaped lowering (shared by the
    static synthesizer and the lane-vectorized interpreter).

    Every source variable lives in a private entry-block stack slot
    accessed only by direct loads and stores; the generic path pays
    address computation, runtime space dispatch and a per-address
    dictionary for each of them.  A slot whose register is never used
    outside ``Load.pointer``/``Store.pointer`` positions cannot alias
    anything, so:

    - **single-store entry slots** whose store sits in the entry block
      before every entry-block load forward the stored value straight
      into the loads' operand getters — the alloca, the store and the
      loads compile to nothing (the entry block runs first for all
      lanes, so the value is defined wherever a load was);
    - **other slots** (loop counters, inner-scope variables) are
      *promoted*: loads and stores hit a per-slot value/init array keyed
      by slot identity, skipping the address machinery entirely.  The
      alloca compiles to an init-mask reset for the executing lanes, so
      re-executing a non-entry alloca gives the executor's fresh-slot
      semantics (a load before the activation's first store still
      faults).

    Private traffic is untraced, so the executor's observable outputs
    are unchanged.  Returns ``(fwd, skip, promoted)``: forwarded load
    results (register id -> forwarded Value), instruction ids that
    compile to nothing, and promoted slot register ids.
    """
    fwd: Dict[int, Value] = {}
    skip: set = set()
    promoted: set = set()
    if not blocks:
        return fwd, skip, promoted
    slots: Dict[int, dict] = {}
    for bi, block in enumerate(blocks):
        for inst in block.instructions:
            if isinstance(inst, Alloca) and inst.result is not None \
                    and inst.space != AddressSpace.LOCAL:
                slots[id(inst.result)] = {
                    "alloca": inst, "alloca_block": bi, "loads": [],
                    "store": None, "stores": 0, "escaped": False}
    if not slots:
        return fwd, skip, promoted
    for bi, block in enumerate(blocks):
        for pos, inst in enumerate(block.instructions):
            for oi, v in enumerate(inst.operands):
                info = slots.get(id(v))
                if info is None:
                    continue
                if isinstance(inst, Load) and oi == 0:
                    info["loads"].append((bi, pos, inst))
                elif isinstance(inst, Store) and oi == 1:
                    # Store operands are [value, pointer]; a slot
                    # register in value position escapes.
                    info["stores"] += 1
                    info["store"] = (bi, pos, inst)
                else:
                    info["escaped"] = True
    for rid, info in slots.items():
        if info["escaped"]:
            continue
        if info["stores"] == 1 and info["alloca_block"] == 0:
            sb, sp, store = info["store"]
            if sb == 0 and all(lb != 0 or lp > sp
                               for lb, lp, _ in info["loads"]):
                skip.add(id(info["alloca"]))
                skip.add(id(store))
                for _, _, load in info["loads"]:
                    fwd[id(load.result)] = store.value
                    skip.add(id(load))
                continue
        promoted.add(rid)
    return fwd, skip, promoted


class _Segment:
    """A run of instructions with no internal barrier.

    ``cost`` counts *every* instruction in the run (the executor's step
    budget counts skipped float ops too); ``ops`` holds only the
    compiled ones.  ``barrier`` marks a segment that ends at a barrier
    instruction (included in ``cost``)."""

    __slots__ = ("ops", "cost", "barrier")

    def __init__(self) -> None:
        self.ops: List[Callable] = []
        self.cost = 0
        self.barrier = False


class _BlockCode:
    __slots__ = ("name", "segments", "term")

    def __init__(self, name: str) -> None:
        self.name = name
        self.segments: List[_Segment] = []
        self.term: Optional[Tuple] = None


class TraceSynthesizer:
    """Synthesizes launch artefacts for one STATIC kernel.

    Parameters mirror :class:`KernelExecutor`: the lowered function,
    host buffers by pointer-argument name, scalar arguments by name.
    Construction compiles the kernel; construction or :meth:`run` raise
    :class:`SynthesisError` whenever exact replication of the
    interpreter cannot be guaranteed.
    """

    DEFAULT_MAX_STEPS = 5_000_000
    MAX_PHASES = 10_000

    def __init__(self, fn: Function, buffers: Dict[str, Buffer],
                 scalars: Dict[str, object],
                 max_steps: Optional[int] = None) -> None:
        self.fn = fn
        self.max_steps = max_steps or self.DEFAULT_MAX_STEPS
        self._cls = classify_function(fn)
        # Bind buffers exactly as the executor does (same GlobalMemory
        # allocator, same insertion order => identical base addresses).
        self.memory = GlobalMemory()
        for buf in buffers.values():
            self.memory.bind(buf)
        blist = list(buffers.values())
        self._bases = np.array([b.base for b in blist], np.int64)
        self._spans = np.array([max(b.nbytes, 1) for b in blist], np.int64)
        self._raw = np.array([b.nbytes for b in blist], np.int64)
        self._elem = np.array([b.elem_size for b in blist], np.int64)
        self._buf_names: Tuple[str, ...] = tuple(b.name for b in blist)
        self._local_buf_index = len(self._buf_names)
        self._gl_hot: Optional[Tuple[int, int, int, int]] = None

        self._arg_addr: Dict[int, Tuple[int, int]] = {}
        self._arg_scalar: Dict[int, int] = {}
        for arg in fn.args:
            if isinstance(arg.type, PointerType):
                if arg.name not in buffers:
                    raise SynthesisError(
                        f"no buffer for pointer argument {arg.name!r}")
                self._arg_addr[id(arg)] = (
                    buffers[arg.name].base, _SPACE_CODE[arg.type.space])
            else:
                if arg.name not in scalars:
                    raise SynthesisError(
                        f"no value for scalar argument {arg.name!r}")
                v = scalars[arg.name]
                if not arg.type.is_float:
                    self._arg_scalar[id(arg)] = int(v)

        self._site_of: Dict[int, int] = {
            id(inst): i for i, inst in enumerate(fn.instructions())}

        # Fixed block ordering for the lane program counters (any total
        # order with entry first is correct; DFS preorder keeps loop
        # bodies close to their headers).
        blocks = list(fn.reachable_blocks())
        self._blocks = blocks
        self._order = {id(b): i for i, b in enumerate(blocks)}
        self._done = len(blocks)

        # mem2reg-lite over the Clang-O0-shaped lowering (see
        # _promote_slots): forwarded load results, instructions that
        # compile to nothing, and promoted scalar slots.
        self._fwd: Dict[int, Value] = {}
        self._skip: set = set()
        self._promoted: set = set()
        self._promote_slots()

        # Per-launch state, rebound by run()/_run_lanes.
        self._wg = 0
        self._nlanes = 0
        self._nd: Optional[NDRange] = None
        self._lid: List[np.ndarray] = []
        self._ggid: List[np.ndarray] = []
        self._gid_arr: List[np.ndarray] = []
        self.regs: Dict[int, np.ndarray] = {}
        self.rspace: Dict[int, object] = {}
        self._priv: Dict[int, list] = {}
        self._pslots: Dict[int, list] = {}
        self._priv_next: Optional[np.ndarray] = None
        self._local_next = 64
        self._local_allocas: Dict[int, int] = {}
        self._events: List[Tuple] = []
        self._lid_cache: Dict[Tuple[int, ...], List[np.ndarray]] = {}

        self._code: List[_BlockCode] = [
            self._compile_block(b) for b in blocks]

    # -- run ---------------------------------------------------------------

    def run(self, ndrange: NDRange, max_groups: Optional[int] = None,
            record: bool = True) -> LaunchResult:
        from repro.analysis.packed import PackedTraces

        result = LaunchResult()
        self._nd = ndrange
        wg = ndrange.work_group_size
        self._wg = wg
        group_list = list(ndrange.group_ids())
        if max_groups is not None:
            group_list = group_list[:max_groups]
        gids = [tuple(reversed(rev)) for rev in group_list]
        n_groups = len(gids)
        result.groups_executed = n_groups
        result.work_items_executed = n_groups * wg
        if n_groups == 0:
            result.traces = PackedTraces([], wg)
            return result
        # One lane per (group, work-item): groups share no state, so
        # running them merged amortizes every vectorized op over the
        # whole profile instead of one work-group.
        self._nlanes = n_groups * wg
        base_lid = self._local_id_arrays(ndrange)
        dims = ndrange.dims
        self._lid = [np.tile(base_lid[d], n_groups) for d in range(dims)]
        self._gid_arr = [
            np.repeat(np.array([g[d] for g in gids], np.int64), wg)
            for d in range(dims)]
        self._ggid = [self._gid_arr[d] * ndrange.local_size[d]
                      + self._lid[d] for d in range(dims)]
        counts, group_hits = self._run_lanes()
        if record:
            result.block_counts.update(counts)
            result.barriers_per_item = max(group_hits)
            result.traces = PackedTraces(self._finish_groups(n_groups),
                                         wg)
        else:
            result.traces = PackedTraces([], wg)
        result.trip_counts.update(finalize_trip_counts(
            self.fn, result.block_counts, result.work_items_executed))
        return result

    def _local_id_arrays(self, ndrange: NDRange) -> List[np.ndarray]:
        arrays = self._lid_cache.get(ndrange.local_size)
        if arrays is None:
            lids = [tuple(reversed(rev)) for rev in
                    np.ndindex(*reversed(ndrange.local_size))]
            arrays = [np.array([t[d] for t in lids], np.int64)
                      for d in range(ndrange.dims)]
            self._lid_cache[ndrange.local_size] = arrays
        return arrays

    def _run_lanes(self):
        n = self._nlanes
        self.regs = {}
        self.rspace = {}
        self._priv = {}
        self._pslots = {}
        self._priv_next = np.full(n, 64, np.int64)
        self._local_next = 64
        self._local_allocas = {}
        self._events = []
        barrier_hits = np.zeros(n, np.int64)
        steps = np.zeros(n, np.int64)
        lane_block = np.zeros(n, np.int64)
        done = self._done
        counts: Dict[str, int] = {}
        max_steps = self.max_steps

        while True:
            cur = int(lane_block.min())
            if cur == done:
                break
            idx = np.flatnonzero(lane_block == cur)
            code = self._code[cur]
            counts[code.name] = counts.get(code.name, 0) + len(idx)
            for seg in code.segments:
                for op in seg.ops:
                    op(idx)
                if seg.barrier:
                    barrier_hits[idx] += 1
                    steps[idx] = 0
                    if int(barrier_hits[idx].max()) > self.MAX_PHASES:
                        raise SynthesisError("barrier phase budget "
                                             "exceeded")
                else:
                    steps[idx] += seg.cost
                    if int(steps[idx].max()) > max_steps:
                        raise SynthesisError("step budget exceeded")
            term = code.term
            if term[0] == "ret":
                lane_block[idx] = done
            elif term[0] == "br":
                lane_block[idx] = term[1]
            else:  # cbr
                c = term[1](idx)
                lane_block[idx] = np.where(
                    np.asarray(c) != 0, term[2], term[3])
        # Lane 0 of each group mirrors the executor's per-group count.
        return counts, [int(h) for h in barrier_hits[::self._wg]]

    def _finish_groups(self, n_groups: int):
        from repro.analysis.packed import PackedGroup

        events = self._events
        total = sum(len(ev[5]) for ev in events)
        site = np.empty(total, np.int32)
        kind = np.empty(total, np.uint8)
        nbytes = np.empty(total, np.int32)
        space = np.empty(total, np.uint8)
        buf = np.empty(total, np.int16)
        lane = np.empty(total, np.int64)
        addr = np.empty(total, np.int64)
        pos = 0
        for s, k, nb, sp, b, lanes, addrs in events:
            n = len(lanes)
            end = pos + n
            site[pos:end] = s
            kind[pos:end] = k
            nbytes[pos:end] = nb
            space[pos:end] = sp
            buf[pos:end] = b
            lane[pos:end] = lanes
            addr[pos:end] = addrs
            pos = end
        # Stable sort by absolute lane: per-lane program order is
        # preserved and groups become contiguous runs.
        order = np.argsort(lane, kind="stable")
        site, kind, nbytes, space, buf, lane, addr = (
            site[order], kind[order], nbytes[order], space[order],
            buf[order], lane[order], addr[order])
        names = self._buf_names + ("__local",)
        wg = self._wg
        cuts = np.searchsorted(lane, np.arange(n_groups + 1) * wg)
        groups = []
        for g in range(n_groups):
            lo, hi = cuts[g], cuts[g + 1]
            groups.append(PackedGroup(
                site[lo:hi], kind[lo:hi], nbytes[lo:hi], space[lo:hi],
                buf[lo:hi], (lane[lo:hi] - g * wg).astype(np.int32),
                addr[lo:hi], names, wg))
        return groups

    # -- slot promotion ----------------------------------------------------

    def _promote_slots(self) -> None:
        """See :func:`promote_slots` (shared with ``interp.vexec``)."""
        fwd, skip, promoted = promote_slots(self._blocks)
        self._fwd.update(fwd)
        self._skip |= skip
        self._promoted |= promoted

    def _resolve(self, v: Value) -> Value:
        hops = 0
        while isinstance(v, Register) and id(v) in self._fwd:
            v = self._fwd[id(v)]
            hops += 1
            if hops > len(self._fwd):
                raise SynthesisError("forwarding cycle")
        return v

    # -- operand access ----------------------------------------------------

    def _getter(self, v: Value) -> Callable:
        v = self._resolve(v)
        if isinstance(v, Constant):
            if v.type.is_float:
                raise SynthesisError("float constant requested")
            value = int(v.value)
            return lambda idx: value
        if isinstance(v, Argument):
            if id(v) in self._arg_addr:
                base = self._arg_addr[id(v)][0]
                return lambda idx: base
            if id(v) in self._arg_scalar:
                value = self._arg_scalar[id(v)]
                return lambda idx: value
            raise SynthesisError(f"argument {v!r} not synthesizable")
        if isinstance(v, Register):
            rid = id(v)

            def get_register(idx):
                arr = self.regs.get(rid)
                if arr is None:
                    raise SynthesisError("use of undefined register")
                return arr[idx]
            return get_register
        raise SynthesisError(f"cannot evaluate {v!r}")

    def _space_getter(self, v: Value) -> Callable:
        v = self._resolve(v)
        if isinstance(v, Argument) and id(v) in self._arg_addr:
            code = self._arg_addr[id(v)][1]
            return lambda idx: code
        if isinstance(v, Register):
            rid = id(v)

            def get_space(idx):
                s = self.rspace.get(rid)
                if s is None:
                    raise SynthesisError("pointer with unknown space")
                return s[idx] if isinstance(s, np.ndarray) else s
            return get_space
        raise SynthesisError(f"no address space for {v!r}")

    def _setter(self, result: Register) -> Callable:
        rid = id(result)
        wg_of = self

        def set_register(idx, val):
            arr = wg_of.regs.get(rid)
            if arr is None:
                arr = np.zeros(wg_of._nlanes, np.int64)
                wg_of.regs[rid] = arr
            arr[idx] = val
        return set_register

    def _set_space(self, rid: int, idx, val) -> None:
        cur = self.rspace.get(rid)
        scalar = not isinstance(val, np.ndarray)
        if scalar and not isinstance(cur, np.ndarray) \
                and (cur is None or cur == val):
            self.rspace[rid] = int(val)
            return
        if not isinstance(cur, np.ndarray):
            arr = np.full(self._nlanes, -1 if cur is None else int(cur),
                          np.int64)
        else:
            arr = cur
        arr[idx] = val
        self.rspace[rid] = arr

    def _split(self, idx, sp, addr):
        """Partition lanes by runtime address space: yields
        ``(code, lanes, addrs)`` with absolute lane indices."""
        if not isinstance(sp, np.ndarray):
            yield int(sp), idx, addr
            return
        for code in np.unique(sp):
            sel = sp == code
            a = addr[sel] if isinstance(addr, np.ndarray) else addr
            yield int(code), idx[sel], a

    # -- memory helpers ----------------------------------------------------

    def _emit(self, site, kind, nbytes, space, buf, lanes, addrs) -> None:
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0:
            a = np.full(len(lanes), int(a), np.int64)
        self._events.append((site, kind, nbytes, space, buf, lanes, a))

    def _global_locate(self, addrs, nbytes: int):
        """Bounds/alignment-check global addresses exactly as
        ``GlobalMemory.load``/``store`` do; returns (buffer idx, addrs)."""
        a = np.asarray(addrs, np.int64)
        scalar = a.ndim == 0
        hot = self._gl_hot
        if hot is not None:
            # One-entry cache: consecutive calls overwhelmingly stay in
            # the buffer the previous call resolved.
            hb, base, end, elem = hot
            ok = ((a >= base) & (a + nbytes <= end)
                  & ((a - base) % elem == 0))
            if bool(np.all(ok)):
                return hb, a
        bi = np.searchsorted(self._bases, a, side="right") - 1
        bic = np.maximum(bi, 0)
        off = a - self._bases[bic]
        ok = ((bi >= 0) & (off < self._spans[bic])
              & (off % self._elem[bic] == 0)
              & (off + nbytes <= self._raw[bic]))
        if not bool(np.all(ok)):
            raise SynthesisError(
                "out-of-bounds or misaligned global access")
        if scalar:
            b = int(bi)
        else:
            lo, hi = int(bi.min()), int(bi.max())
            if lo != hi:
                return bi.astype(np.int16), a
            b = lo
        self._gl_hot = (b, int(self._bases[b]),
                        int(self._bases[b] + self._raw[b]),
                        int(self._elem[b]))
        return b, a

    def _priv_entry(self, addr: int) -> list:
        ent = self._priv.get(addr)
        if ent is None:
            ent = [np.zeros(self._nlanes, np.int64),
                   np.zeros(self._nlanes, bool), None]
            self._priv[addr] = ent
        return ent

    def _priv_store(self, lanes, addrs, vals, spc) -> None:
        if isinstance(addrs, (int, np.integer)):
            self._priv_store_at(int(addrs), lanes, vals, spc)
            return
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0 or a.min() == a.max():
            addr = int(a) if a.ndim == 0 else int(a[0])
            self._priv_store_at(addr, lanes, vals, spc)
            return
        for addr in np.unique(a):
            sel = a == addr
            v = vals[sel] if isinstance(vals, np.ndarray) else vals
            s = spc[sel] if isinstance(spc, np.ndarray) else spc
            self._priv_store_at(int(addr), lanes[sel], v, s)

    def _priv_store_at(self, addr, lanes, vals, spc) -> None:
        ent = self._priv_entry(addr)
        ent[0][lanes] = vals
        ent[1][lanes] = True
        if spc is not None:
            if ent[2] is None:
                ent[2] = np.full(self._nlanes, -1, np.int64)
            ent[2][lanes] = spc

    def _priv_load(self, lanes, addrs, set_value, rid_space) -> None:
        if isinstance(addrs, (int, np.integer)):
            self._priv_load_at(int(addrs), lanes, set_value, rid_space)
            return
        a = np.asarray(addrs, np.int64)
        if a.ndim == 0 or a.min() == a.max():
            self._priv_load_at(int(a) if a.ndim == 0 else int(a[0]),
                               lanes, set_value, rid_space)
            return
        for addr in np.unique(a):
            sel = a == addr
            self._priv_load_at(int(addr), lanes[sel], set_value,
                               rid_space)

    def _priv_load_at(self, addr, lanes, set_value, rid_space) -> None:
        ent = self._priv.get(addr)
        if ent is None or not bool(ent[1][lanes].all()):
            raise SynthesisError("read of uninitialised private memory")
        set_value(lanes, ent[0][lanes])
        if rid_space is not None:
            if ent[2] is None:
                raise SynthesisError("non-pointer value loaded as pointer")
            self._set_space(rid_space, lanes, ent[2][lanes])

    # -- compilation -------------------------------------------------------

    def _compile_block(self, block: BasicBlock) -> _BlockCode:
        code = _BlockCode(block.name)
        seg = _Segment()
        for inst in block.instructions:
            if isinstance(inst, Barrier):
                seg.cost += 1
                seg.barrier = True
                code.segments.append(seg)
                seg = _Segment()
                continue
            if isinstance(inst, Return):
                seg.cost += 1
                code.term = ("ret",)
                break
            if isinstance(inst, Branch):
                seg.cost += 1
                target = self._order.get(id(inst.target))
                if target is None:
                    raise SynthesisError("branch to unreachable block")
                code.term = ("br", target)
                break
            if isinstance(inst, CondBranch):
                seg.cost += 1
                then_i = self._order.get(id(inst.then_block))
                else_i = self._order.get(id(inst.else_block))
                if then_i is None or else_i is None:
                    raise SynthesisError("branch to unreachable block")
                if self._cls.value_reason(inst.cond) is not None:
                    raise SynthesisError("data-dependent branch")
                code.term = ("cbr", self._getter(inst.cond),
                             then_i, else_i)
                break
            seg.cost += 1
            op = self._compile(inst)
            if op is not None:
                seg.ops.append(op)
        if code.term is None:
            raise SynthesisError(f"no terminator in {block.name}")
        code.segments.append(seg)
        return code

    def _compile(self, inst) -> Optional[Callable]:
        if id(inst) in self._skip:
            return None
        if isinstance(inst, Alloca):
            return self._c_alloca(inst)
        if isinstance(inst, Load):
            return self._c_load(inst)
        if isinstance(inst, Store):
            return self._c_store(inst)
        if isinstance(inst, Call):
            return self._c_call(inst)
        # Pure compute: compile only when the result is deterministic
        # (skipped results are float/memory values no compiled op and
        # no trace event ever reads).
        det = (inst.result is not None
               and self._cls.value_reason(inst.result) is None)
        if not det:
            if isinstance(inst, (BinaryOp, CompareOp, Cast, Select,
                                 GetElementPtr)):
                return None
            raise SynthesisError(f"cannot synthesize {inst!r}")
        if isinstance(inst, BinaryOp):
            return self._c_binop(inst)
        if isinstance(inst, CompareOp):
            return self._c_compare(inst)
        if isinstance(inst, Cast):
            return self._c_cast(inst)
        if isinstance(inst, Select):
            return self._c_select(inst)
        if isinstance(inst, GetElementPtr):
            return self._c_gep(inst)
        raise SynthesisError(f"cannot synthesize {inst!r}")

    def _c_alloca(self, inst: Alloca) -> Callable:
        nbytes = max(inst.allocated.bytes, 1)
        rid = id(inst.result)
        if inst.space != AddressSpace.LOCAL and rid in self._promoted:
            # Promoted slot: no address is ever needed; re-execution
            # only invalidates the executing lanes' current values
            # (the executor hands them a fresh, uninitialised slot).
            def op(idx):
                ent = self._pslots.get(rid)
                if ent is not None:
                    ent[1][idx] = False
                    ent[3] = False
            return op
        set_ = self._setter(inst.result)
        if inst.space == AddressSpace.LOCAL:
            key = id(inst)

            def op(idx):
                addr = self._local_allocas.get(key)
                if addr is None:
                    nxt = -(-self._local_next // 8) * 8
                    addr = nxt
                    self._local_next = nxt + nbytes
                    self._local_allocas[key] = addr
                set_(idx, addr)
                self._set_space(rid, idx, _LOC)
        else:
            def op(idx):
                nxt = self._priv_next
                aligned = -(-nxt[idx] // 8) * 8
                set_(idx, aligned)
                nxt[idx] = aligned + nbytes
                self._set_space(rid, idx, _PRIV)
        return op

    def _c_binop(self, inst: BinaryOp) -> Callable:
        ga, gb = self._getter(inst.lhs), self._getter(inst.rhs)
        set_ = self._setter(inst.result)
        t = inst.type
        if not t.is_integer:
            raise SynthesisError("non-integer binop judged deterministic")
        bits, signed = t.bits, t.is_signed
        opcode = inst.opcode
        u64 = _is_u64(t)

        if opcode in ("add", "sub", "mul", "and", "or", "xor"):
            fn = {"add": _op.add, "sub": _op.sub, "mul": _op.mul,
                  "and": _op.and_, "or": _op.or_,
                  "xor": _op.xor}[opcode]

            def op(idx):
                set_(idx, _mask_val(fn(ga(idx), gb(idx)), bits, signed))
        elif opcode in ("div", "rem"):
            want_rem = opcode == "rem"

            def op(idx):
                a, b = ga(idx), gb(idx)
                if bool(np.any(np.asarray(b) == 0)):
                    raise SynthesisError("integer division by zero")
                if u64:
                    au, bu = _u64(np.asarray(a)), _u64(np.asarray(b))
                    q = au // bu
                    r = _i64(au - q * bu) if want_rem else _i64(q)
                else:
                    aa, bb = np.asarray(a), np.asarray(b)
                    q = np.abs(aa) // np.abs(bb)
                    q = np.where((aa >= 0) == (bb >= 0), q, -q)
                    r = aa - q * bb if want_rem else q
                set_(idx, _mask_val(r, bits, signed))
        elif opcode == "shl":
            def op(idx):
                r = np.asarray(ga(idx)) << (np.asarray(gb(idx)) & 63)
                set_(idx, _mask_val(r, bits, signed))
        elif opcode == "shr":
            if signed:
                def op(idx):
                    r = np.asarray(ga(idx)) >> (np.asarray(gb(idx)) & 63)
                    set_(idx, _mask_val(r, bits, signed))
            else:
                vbits = bits if 0 < bits < 64 else 64

                def op(idx):
                    a = np.asarray(ga(idx))
                    sh = np.asarray(gb(idx)) & 63
                    if vbits >= 64:
                        r = _i64(_u64(a) >> _u64(sh))
                    else:
                        r = (a & ((1 << vbits) - 1)) >> sh
                    set_(idx, _mask_val(r, bits, signed))
        else:
            raise SynthesisError(f"unknown binop {inst.opcode!r}")
        return op

    def _c_compare(self, inst: CompareOp) -> Callable:
        fn = {"eq": _op.eq, "ne": _op.ne, "lt": _op.lt,
              "le": _op.le, "gt": _op.gt, "ge": _op.ge}.get(inst.pred)
        if fn is None:
            raise SynthesisError(f"unknown compare {inst.pred!r}")
        ga, gb = self._getter(inst.lhs), self._getter(inst.rhs)
        set_ = self._setter(inst.result)
        u64 = _is_u64(inst.lhs.type) or _is_u64(inst.rhs.type)

        def op(idx):
            a, b = ga(idx), gb(idx)
            if u64:
                a, b = _u64(np.asarray(a)), _u64(np.asarray(b))
            set_(idx, np.asarray(fn(a, b), np.int64))
        return op

    def _c_cast(self, inst: Cast) -> Callable:
        get_v = self._getter(inst.value)
        set_ = self._setter(inst.result)
        rid = id(inst.result)
        kind = inst.kind
        t = inst.type
        is_ptr = isinstance(t, PointerType)
        if kind in ("ptrcast", "bitcast") and (is_ptr or not t.is_integer):
            gsp = (self._space_getter(inst.value)
                   if isinstance(inst.value.type, PointerType) else None)

            def op(idx):
                set_(idx, get_v(idx))
                if gsp is not None:
                    self._set_space(rid, idx, gsp(idx))
        elif kind in ("bitcast", "trunc", "zext", "sext"):
            bits, signed = t.bits, t.is_signed

            def op(idx):
                set_(idx, _mask_val(np.asarray(get_v(idx)), bits, signed))
        else:
            # sitofp/fptosi/fpext/... produce or consume floats; their
            # results are never deterministic, so reaching here means a
            # classifier/compiler disagreement.
            raise SynthesisError(f"cannot synthesize cast {kind!r}")
        return op

    def _c_select(self, inst: Select) -> Callable:
        gc, ga, gb = (self._getter(o) for o in inst.operands)
        set_ = self._setter(inst.result)
        rid = id(inst.result)
        if isinstance(inst.operands[1].type, PointerType):
            sa = self._space_getter(inst.operands[1])
            sb = self._space_getter(inst.operands[2])
        else:
            sa = sb = None

        def op(idx):
            c = np.asarray(gc(idx)) != 0
            set_(idx, np.where(c, ga(idx), gb(idx)))
            if sa is not None:
                a, b = sa(idx), sb(idx)
                if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) \
                        or a != b:
                    self._set_space(rid, idx, np.where(c, a, b))
                else:
                    self._set_space(rid, idx, a)
        return op

    def _c_gep(self, inst: GetElementPtr) -> Callable:
        get_base = self._getter(inst.base)
        get_index = self._getter(inst.index)
        gsp = self._space_getter(inst.base)
        elem = inst.base.type.pointee
        if isinstance(elem, ArrayType):
            elem = elem.element
        scale = max(elem.bytes, 1)
        set_ = self._setter(inst.result)
        rid = id(inst.result)

        def op(idx):
            set_(idx, np.asarray(get_base(idx))
                 + np.asarray(get_index(idx)) * scale)
            self._set_space(rid, idx, gsp(idx))
        return op

    def _c_load(self, inst: Load) -> Optional[Callable]:
        static_space = inst.pointer.type.space \
            if isinstance(inst.pointer.type, PointerType) else None
        det = (inst.result is not None
               and self._cls.value_reason(inst.result) is None)
        if static_space == AddressSpace.PRIVATE and not det:
            # Untraced and its value is never needed downstream.
            return None
        if isinstance(inst.pointer, Register) \
                and id(inst.pointer) in self._promoted:
            return self._c_promoted_load(inst)
        gp = self._getter(inst.pointer)
        gsp = self._space_getter(inst.pointer)
        nbytes = max(inst.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        set_ = self._setter(inst.result) if det else None
        rid_space = (id(inst.result)
                     if det and isinstance(inst.type, PointerType)
                     else None)

        def op(idx):
            addr = gp(idx)
            for code, lanes, a in self._split(idx, gsp(idx), addr):
                if code == _PRIV:
                    if set_ is not None:
                        self._priv_load(lanes, a, set_, rid_space)
                elif code in (_LOC, _CONST):
                    self._emit(site, _PK_READ, nbytes, _PK_LOCAL,
                               self._local_buf_index, lanes, a)
                else:
                    if set_ is not None:
                        raise SynthesisError(
                            "deterministic load from global memory")
                    bi, aa = self._global_locate(a, nbytes)
                    self._emit(site, _PK_READ, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
        return op

    def _c_store(self, inst: Store) -> Optional[Callable]:
        value_det = self._cls.value_reason(inst.value) is None
        static_space = inst.pointer.type.space \
            if isinstance(inst.pointer.type, PointerType) else None
        if static_space == AddressSpace.PRIVATE and not value_det:
            return None
        if isinstance(inst.pointer, Register) \
                and id(inst.pointer) in self._promoted:
            return self._c_promoted_store(inst)
        gp = self._getter(inst.pointer)
        gsp = self._space_getter(inst.pointer)
        nbytes = max(inst.value.type.bytes, 1)
        site = self._site_of.get(id(inst), -1)
        gv = self._getter(inst.value) if value_det else None
        vsp = (self._space_getter(inst.value)
               if value_det and isinstance(inst.value.type, PointerType)
               else None)

        def op(idx):
            addr = gp(idx)
            vals = gv(idx) if gv is not None else None
            for code, lanes, a in self._split(idx, gsp(idx), addr):
                if code == _PRIV:
                    if gv is None:
                        # Untraced, and the slot is demoted by this
                        # very store: no deterministic load reads it.
                        continue
                    sel = None
                    if isinstance(vals, np.ndarray) and len(lanes) != len(idx):
                        sel = np.isin(idx, lanes)
                    v = vals[sel] if sel is not None else vals
                    s = vsp(idx) if vsp is not None else None
                    if sel is not None and isinstance(s, np.ndarray):
                        s = s[sel]
                    self._priv_store(lanes, a, v, s)
                elif code in (_LOC, _CONST):
                    self._emit(site, _PK_WRITE, nbytes, _PK_LOCAL,
                               self._local_buf_index, lanes, a)
                else:
                    bi, aa = self._global_locate(a, nbytes)
                    self._emit(site, _PK_WRITE, nbytes, _PK_GLOBAL,
                               bi, lanes, aa)
        return op

    def _c_promoted_load(self, inst: Load) -> Callable:
        """Load from a promoted scalar slot: per-slot value/init arrays,
        no address computation, no space dispatch (semantics match
        ``_priv_load_at`` exactly)."""
        sid = id(inst.pointer)
        set_ = self._setter(inst.result)
        rid_space = (id(inst.result)
                     if isinstance(inst.type, PointerType) else None)

        def op(idx):
            ent = self._pslots.get(sid)
            if ent is None or not (ent[3] or bool(ent[1][idx].all())):
                raise SynthesisError("read of uninitialised private "
                                     "memory")
            set_(idx, ent[0][idx])
            if rid_space is not None:
                if ent[2] is None:
                    raise SynthesisError(
                        "non-pointer value loaded as pointer")
                self._set_space(rid_space, idx, ent[2][idx])
        return op

    def _c_promoted_store(self, inst: Store) -> Callable:
        """Store to a promoted scalar slot (see ``_c_promoted_load``);
        ``ent[3]`` short-circuits the init mask once every lane has
        stored."""
        sid = id(inst.pointer)
        gv = self._getter(inst.value)
        vsp = (self._space_getter(inst.value)
               if isinstance(inst.value.type, PointerType) else None)

        def op(idx):
            ent = self._pslots.get(sid)
            if ent is None:
                ent = [np.zeros(self._nlanes, np.int64),
                       np.zeros(self._nlanes, bool), None, False]
                self._pslots[sid] = ent
            ent[0][idx] = gv(idx)
            if not ent[3]:
                ent[1][idx] = True
                if len(idx) == self._nlanes:
                    ent[3] = True
            if vsp is not None:
                if ent[2] is None:
                    ent[2] = np.full(self._nlanes, -1, np.int64)
                ent[2][idx] = vsp(idx)
        return op

    def _c_call(self, inst: Call) -> Optional[Callable]:
        name = inst.callee
        if name in KNOWN_ATOMICS:
            return self._c_atomic(inst)
        det = (inst.result is not None
               and self._cls.value_reason(inst.result) is None)
        if not det:
            if name in GEOMETRY_BUILTINS or name in INT_CAPABLE_BUILTINS:
                return None
            from repro.interp.executor import FLOAT_BUILTINS
            if name in FLOAT_BUILTINS:
                return None  # float result: never needed
            raise SynthesisError(f"unknown builtin {name!r}")
        set_ = self._setter(inst.result)
        if name in GEOMETRY_BUILTINS:
            d = 0
            if inst.operands:
                if not isinstance(inst.operands[0], Constant):
                    raise SynthesisError("non-constant geometry dim")
                d = int(inst.operands[0].value)
            return self._c_geometry(name, d, set_)
        if name in INT_CAPABLE_BUILTINS:
            getters = [self._getter(a) for a in inst.operands]
            return self._c_int_builtin(name, getters, set_)
        raise SynthesisError(f"unknown builtin {name!r}")

    def _c_geometry(self, name: str, d: int, set_) -> Callable:
        if name == "get_local_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._lid[d][idx] if d < nd.dims else 0)
        elif name == "get_group_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._gid_arr[d][idx] if d < nd.dims else 0)
        elif name == "get_global_id":
            def op(idx):
                nd = self._nd
                set_(idx, self._ggid[d][idx] if d < nd.dims else 0)
        elif name == "get_global_size":
            def op(idx):
                nd = self._nd
                set_(idx, nd.global_size[d] if d < nd.dims else 1)
        elif name == "get_local_size":
            def op(idx):
                nd = self._nd
                set_(idx, nd.local_size[d] if d < nd.dims else 1)
        elif name == "get_num_groups":
            def op(idx):
                nd = self._nd
                set_(idx, nd.num_groups[d] if d < nd.dims else 1)
        elif name == "get_global_offset":
            def op(idx):
                set_(idx, 0)
        elif name == "get_work_dim":
            def op(idx):
                set_(idx, self._nd.dims)
        else:
            raise SynthesisError(f"unknown geometry builtin {name!r}")
        return op

    def _c_int_builtin(self, name: str, getters, set_) -> Callable:
        if name == "min":
            ga, gb = getters

            def op(idx):
                set_(idx, np.minimum(ga(idx), gb(idx)))
        elif name == "max":
            ga, gb = getters

            def op(idx):
                set_(idx, np.maximum(ga(idx), gb(idx)))
        elif name == "abs":
            ga = getters[0]

            def op(idx):
                set_(idx, np.abs(ga(idx)))
        elif name == "clamp":
            gx, glo, ghi = getters

            def op(idx):
                set_(idx, np.minimum(np.maximum(gx(idx), glo(idx)),
                                     ghi(idx)))
        elif name == "mul24":
            ga, gb = getters

            def op(idx):
                set_(idx, _mask_val(np.asarray(ga(idx))
                                    * np.asarray(gb(idx)), 32, True))
        elif name == "mad24":
            ga, gb, gc = getters

            def op(idx):
                set_(idx, _mask_val(np.asarray(ga(idx))
                                    * np.asarray(gb(idx))
                                    + np.asarray(gc(idx)), 32, True))
        else:
            raise SynthesisError(f"unknown int builtin {name!r}")
        return op

    def _c_atomic(self, inst: Call) -> Optional[Callable]:
        if not inst.operands:
            raise SynthesisError("atomic with no operands")
        ptr = inst.operands[0]
        if isinstance(ptr.type, PointerType) \
                and ptr.type.space == AddressSpace.LOCAL:
            # Local atomics touch local memory only (untraced, and no
            # deterministic value ever reads local contents).
            return None
        gp = self._getter(ptr)
        site = self._site_of.get(id(inst), -1)
        nbytes = 4

        def op(idx):
            a = gp(idx)
            bi, aa = self._global_locate(a, nbytes)
            self._emit(site, _PK_READ, nbytes, _PK_GLOBAL, bi, idx, aa)
            self._emit(site, _PK_WRITE, nbytes, _PK_GLOBAL, bi, idx, aa)
        return op
