"""Compute-unit model (paper §3.3.2, Eqs. 5–6).

A CU replicates P PEs (loop unrolling / vectorisation).  The *effective*
PE parallelism N_PE is bounded by the local-memory ports and DSPs the
PEs share inside the CU (Eq. 6); the CU work-group latency follows
Eq. 5:

    L_comp^CU = II · ceil((N_wi^wg − N_PE) / N_PE) + D
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.kernel_info import KernelInfo
from repro.model.pe import PEModelResult


@dataclass
class CUModelResult:
    """Effective parallelism and latency of one compute unit."""

    n_pe: int               # effective PE parallelism
    latency_wg: float       # L_comp^CU for one work-group
    ii: float = 1.0         # the PE II this CU runs at
    depth: float = 1.0      # the PE pipeline depth
    initiations: int = 0    # initiations per work-group


def effective_pe_parallelism(info: KernelInfo, device, num_pe_slots: int,
                             num_cu: int, ii: float) -> int:
    """Eq. 6: N_PE = min(P, port-bound, DSP-bound).

    Each PE consumes N_read local reads and N_write local writes per
    initiation (one initiation every II cycles) and a fixed set of
    DSP-mapped cores; ports and DSPs inside the CU are shared by all P
    PEs.  The port bound is Port · II / N_access (the paper's Eq. 6
    written with the steady-state per-cycle demand made explicit).
    """
    p = max(num_pe_slots, 1)
    ii = max(ii, 1.0)
    n_read = info.traces.local_reads_per_wi
    n_write = info.traces.local_writes_per_wi
    read_bound = (math.floor(device.local_read_ports * ii / n_read)
                  if n_read > 0 else p)
    write_bound = (math.floor(device.local_write_ports * ii / n_write)
                   if n_write > 0 else p)
    dsp_per_pe = max(info.dsp_static_cost, 0.0)
    dsp_bound = (math.floor(device.dsp_total / max(num_cu, 1)
                            / dsp_per_pe)
                 if dsp_per_pe > 0 else p)
    return max(1, min(p, read_bound, write_bound, dsp_bound))


def cu_model(info: KernelInfo, device, pe: PEModelResult,
             num_pe_slots: int, num_cu: int,
             wg_size: int) -> CUModelResult:
    """Eq. 5 with Eq. 6's effective parallelism."""
    n_pe = effective_pe_parallelism(info, device, num_pe_slots, num_cu,
                                    pe.ii)
    initiations = math.ceil(max(wg_size - n_pe, 0) / n_pe)
    latency = pe.ii * initiations + pe.depth
    return CUModelResult(n_pe=n_pe, latency_wg=latency, ii=pe.ii,
                         depth=pe.depth, initiations=initiations)
