"""Global-memory model (paper §3.4, Table 1, Eq. 9).

Takes the profiled per-work-item global access traces, reconstructs the
access stream the memory subsystem observes under the design's execution
order, applies SDAccel's automatic coalescing, routes the coalesced
requests to banks under the byte-interleaved mapping, classifies each
into one of Table 1's eight patterns, and prices the per-work-item
latency:

    L_mem^wi = Σ_patterns ΔT_p · N_p        (Eq. 9, per work-item)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.kernel_info import KernelInfo
from repro.dram.coalesce import coalesce_stream
from repro.dram.mapping import BankMapping
from repro.dram.microbench import (
    PatternLatencyTable,
    profile_pattern_latencies,
)
from repro.dram.patterns import PatternCounts, classify_bank_stream

#: memoised per-device pattern tables (profiling is deterministic),
#: keyed on the full device identity — never on ``device.name``, which
#: would alias two boards that share a name but differ in DRAM timing
#: or clock configuration
_PATTERN_CACHE: Dict[str, PatternLatencyTable] = {}


def pattern_table_for(device, cache=None) -> PatternLatencyTable:
    """The (cached) profiled Table 1 latencies for *device*.

    Memoised in-process on the device's content fingerprint; with a
    persistent *cache* (:class:`repro.cache.ArtifactCache`) the profiled
    table is also stored on disk so later processes skip the DRAM
    micro-benchmarks entirely.
    """
    from repro.cache import device_fingerprint, table1_key
    key = device_fingerprint(device)
    if key not in _PATTERN_CACHE:
        if cache is not None:
            _PATTERN_CACHE[key] = cache.get_or_compute(
                "table1", table1_key(device),
                lambda: profile_pattern_latencies(device))
        else:
            _PATTERN_CACHE[key] = profile_pattern_latencies(device)
    return _PATTERN_CACHE[key]


@dataclass
class MemoryModelResult:
    """Eq. 9's output plus its ingredients, for diagnostics/ablation."""

    latency_per_wi: float          # L_mem^wi
    pattern_counts: Optional[PatternCounts] = None
    requests_per_group: int = 0
    accesses_per_group: int = 0

    @property
    def coalescing_ratio(self) -> float:
        if self.requests_per_group == 0:
            return 1.0
        return self.accesses_per_group / self.requests_per_group


def memory_model(info: KernelInfo, device,
                 pipelined: bool = True,
                 coalescing: bool = True,
                 table: Optional[PatternLatencyTable] = None
                 ) -> MemoryModelResult:
    """Price one work-item's global-memory time for a design.

    *pipelined* selects the access interleaving order (work-item
    pipelining makes same-site accesses of successive work-items
    adjacent, which is what makes them coalescible).  *coalescing* can
    be disabled for ablation studies.
    """
    if table is None:
        table = pattern_table_for(device)
    mapping = BankMapping.for_device(device)

    # Price Eq. 9 over a window of reconstructed work-group streams —
    # the SAME reconstruction the System Run simulator executes
    # (repro.analysis.GroupStreamExtrapolator), so the model and the
    # ground truth disagree only on timing, never on traffic.
    from repro.analysis.streams import GroupStreamExtrapolator
    wg_size = info.work_group_size
    extrapolator = GroupStreamExtrapolator(
        info.traces.global_traces, wg_size, pipelined=pipelined)
    # The window spans the NDRange (capped like the simulator's
    # per-group cap) so data-sparse kernels — where only a few groups
    # touch memory at all — average correctly over their idle groups.
    window = min(info.num_work_groups, 96)

    total_latency = 0.0
    total_requests = 0
    total_accesses = 0
    merged_counts = PatternCounts()
    unit = device.mem_access_unit_bits if coalescing else 8
    from repro.analysis.packed import PackedStream
    from repro.dram.coalesce import coalesce_packed_groups
    from repro.dram.patterns import classify_packed

    import numpy as np
    streams = [s for s in (extrapolator.stream(g) for g in range(window))
               if s]
    if streams and all(isinstance(s, PackedStream) for s in streams):
        # Columnar batch path: coalesce and classify the whole window
        # in one pass.  Bank state is per (group, bank) and Eq. 9 is
        # linear in the pattern counts, so the summed window latency is
        # the weighted latency of the merged counts.
        gix = np.repeat(np.arange(len(streams)),
                        [len(s) for s in streams])
        rk, ra, rn, rg = coalesce_packed_groups(
            np.concatenate([s.kind for s in streams]),
            np.concatenate([s.addr for s in streams]),
            np.concatenate([s.nbytes for s in streams]), gix, unit)
        merged_counts = classify_packed(rk, ra, rn, mapping, group=rg)
        total_latency = table.weighted_latency(merged_counts)
        total_requests = int(rk.shape[0])
        total_accesses = int(gix.shape[0])
    else:
        for stream in streams:
            requests = coalesce_stream(stream, unit)
            counts = classify_bank_stream(requests, mapping)
            total_latency += table.weighted_latency(counts)
            total_requests += len(requests)
            total_accesses += len(stream)
            for pattern, n in counts.counts.items():
                merged_counts.add(pattern, n)

    total_items = window * wg_size
    if total_items == 0 or total_accesses == 0:
        return MemoryModelResult(latency_per_wi=0.0,
                                 pattern_counts=PatternCounts())
    return MemoryModelResult(
        latency_per_wi=total_latency / total_items,
        pattern_counts=merged_counts,
        requests_per_group=round(total_requests / window),
        accesses_per_group=round(total_accesses / window),
    )
