"""GPU-vs-FPGA comparison (paper §1: FlexCL can "make performance
comparison across heterogeneous architecture (GPUs v.s. FGPAs)").

A deliberately coarse throughput model of a contemporary (2016-era)
discrete GPU, driven by the same :class:`~repro.analysis.KernelInfo`
the FPGA model consumes.  It is a roofline-style estimate: the kernel
is bound by instruction throughput, by global-memory bandwidth (with
the same coalescing analysis used for the FPGA), or by the exposed
dependency latency of recurrence-bound kernels — whichever dominates.

This is a triage tool, not a GPU simulator: it answers "is this kernel
even a sensible FPGA target?" at the same level of fidelity the paper
implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.kernel_info import KernelInfo
from repro.latency.optable import OpClass

#: GPU cycles per operation class per lane (throughput reciprocals)
_GPU_OP_CPI = {
    OpClass.INT_ALU: 1.0,
    OpClass.INT_MUL: 1.0,
    OpClass.INT_DIV: 8.0,
    OpClass.FADD: 1.0,
    OpClass.FMUL: 1.0,
    OpClass.FDIV: 4.0,
    OpClass.FEXPENSIVE: 4.0,      # SFU-issued
    OpClass.CAST: 1.0,
    OpClass.LOCAL_READ: 1.0,      # shared memory
    OpClass.LOCAL_WRITE: 1.0,
    OpClass.GLOBAL_ISSUE: 1.0,    # issue slot; data cost via bandwidth
    OpClass.ADDR: 1.0,
    OpClass.CONTROL: 1.0,
    OpClass.FREE: 0.0,
    OpClass.ATOMIC: 8.0,
}


@dataclass(frozen=True)
class GPUDevice:
    """A simple throughput description of a discrete GPU."""

    name: str = "mid-2016 discrete GPU"
    sm_count: int = 13
    lanes_per_sm: int = 192          # CUDA cores per SM
    clock_mhz: float = 875.0
    dram_bandwidth_gbs: float = 208.0
    #: average dependent-op latency exposed when occupancy cannot hide it
    dependency_latency_cycles: float = 11.0


DEFAULT_GPU = GPUDevice()


@dataclass
class GPUEstimate:
    """The roofline estimate plus its components."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    latency_seconds: float

    @property
    def bound(self) -> str:
        best = max(self.compute_seconds, self.memory_seconds,
                   self.latency_seconds)
        if best == self.memory_seconds:
            return "memory bandwidth"
        if best == self.latency_seconds:
            return "dependency latency"
        return "instruction throughput"


def estimate_gpu_time(info: KernelInfo,
                      gpu: GPUDevice = DEFAULT_GPU) -> GPUEstimate:
    """Roofline estimate of the analysed kernel on *gpu*."""
    n = info.total_work_items
    clock = gpu.clock_mhz * 1e6

    # Instruction throughput bound.
    ops_per_wi = sum(_GPU_OP_CPI[node.op_class] * node.weight
                     for node in info.function_dfg.nodes)
    total_lane_cycles = ops_per_wi * n
    lanes = gpu.sm_count * gpu.lanes_per_sm
    compute_s = total_lane_cycles / lanes / clock

    # Memory bandwidth bound: coalesced bytes per work-item.
    bytes_per_wi = 4.0 * (info.traces.global_reads_per_wi
                          + info.traces.global_writes_per_wi)
    memory_s = bytes_per_wi * n / (gpu.dram_bandwidth_gbs * 1e9)

    # Latency bound: inter-work-item recurrences serialise progress the
    # same way they bound the FPGA pipeline's RecMII.
    latency_s = 0.0
    if info.traces.recurrences:
        min_distance = min(r.distance for r in info.traces.recurrences)
        chain_length = n / max(min_distance, 1)
        latency_s = (chain_length * gpu.dependency_latency_cycles
                     / clock)

    return GPUEstimate(
        seconds=max(compute_s, memory_s, latency_s),
        compute_seconds=compute_s,
        memory_seconds=memory_s,
        latency_seconds=latency_s)


def compare(info: KernelInfo, fpga_prediction,
            gpu: GPUDevice = DEFAULT_GPU) -> dict:
    """FPGA (a FlexCL :class:`~repro.model.Prediction`) vs GPU summary."""
    gpu_est = estimate_gpu_time(info, gpu)
    fpga_s = fpga_prediction.seconds
    return {
        "fpga_seconds": fpga_s,
        "gpu_seconds": gpu_est.seconds,
        "gpu_bound": gpu_est.bound,
        "fpga_bottleneck": fpga_prediction.bottleneck,
        "fpga_speedup_over_gpu": gpu_est.seconds / max(fpga_s, 1e-12),
    }
