"""Processing-element model (paper §3.3.1).

A PE executes one work-item at a time; with work-item pipelining the PE
overlaps successive work-items at initiation interval II_comp^wi.  The
model:

1. estimates every basic block's latency with resource-aware
   priority-ordered list scheduling (ASAP);
2. derives the pipeline depth D_comp^PE as the summed block latency
   along the critical path of the simplified CDFG (loop regions
   contribute trip_count × per-iteration latency);
3. computes MII = max(RecMII, ResMII) (Eqs. 2–4) and refines
   II_comp^wi with Swing Modulo Scheduling;
4. applies Eq. 1:  L_comp^PE = II · (N_wi^wg − 1) + D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.kernel_info import KernelInfo
from repro.analysis.loops import LoopInfo, LoopNest
from repro.ir.function import Function
from repro.scheduling import (
    ResourceBudget,
    compute_mii,
    list_schedule,
    swing_modulo_schedule,
)


@dataclass
class PEModelResult:
    """(II, D) of one PE plus the derived work-group latency."""

    ii: float                      # II_comp^wi
    depth: float                   # D_comp^PE
    latency_wg: float              # L_comp^PE (Eq. 1)
    block_latencies: Dict[str, float] = None
    rec_mii: float = 1.0
    res_mii: float = 1.0


def schedule_blocks(info: KernelInfo,
                    budget: ResourceBudget) -> Dict[str, float]:
    """List-schedule every basic block under *budget*."""
    return {name: list_schedule(dfg, budget).latency
            for name, dfg in info.block_dfgs.items()}


def critical_path_depth(fn: Function, block_latencies: Dict[str, float],
                        loop_nest: LoopNest) -> float:
    """D_comp^PE: summed block latencies along the CDFG critical path.

    Loops are collapsed into region nodes whose latency is
    trip_count × per-iteration critical path (computed recursively for
    nested loops); if/else arms contribute the longer arm.
    """
    memo: Dict[str, float] = {}

    def loop_latency(loop: LoopInfo) -> float:
        key = f"loop:{loop.header}"
        if key in memo:
            return memo[key]
        per_iter = _longest_path(
            fn, block_latencies, loop_nest,
            entry=loop.header, within=loop.blocks, current_loop=loop,
            loop_latency_fn=loop_latency)
        total = loop.trip_count * per_iter \
            + block_latencies.get(loop.header, 0.0)  # final cond check
        memo[key] = total
        return total

    return _longest_path(fn, block_latencies, loop_nest,
                         entry=fn.entry.name, within=None,
                         current_loop=None, loop_latency_fn=loop_latency)


def _longest_path(fn: Function, block_latencies: Dict[str, float],
                  loop_nest: LoopNest, entry: str,
                  within: Optional[set], current_loop: Optional[LoopInfo],
                  loop_latency_fn) -> float:
    """Longest latency path from *entry*, collapsing loops nested below
    *current_loop* and never leaving *within* (when given)."""
    blocks = {b.name: b for b in fn.blocks}
    best: Dict[str, float] = {}

    def visit(name: str, on_stack: set) -> float:
        if name in best:
            return best[name]
        if name in on_stack:      # irreducible/cycle guard
            return 0.0
        block = blocks.get(name)
        if block is None:
            return 0.0
        on_stack = on_stack | {name}

        # Collapse a loop when we stand at its header from outside it.
        header_loop = loop_nest.by_header(name)
        if header_loop is not None and header_loop is not current_loop \
                and (current_loop is None
                     or header_loop.header != current_loop.header):
            node_latency = loop_latency_fn(header_loop)
            successors = _loop_exits(fn, header_loop)
        else:
            node_latency = block_latencies.get(name, 0.0)
            successors = [s.name for s in block.successors()]

        follow = 0.0
        for succ in successors:
            if within is not None and succ not in within:
                continue
            if current_loop is not None and succ == current_loop.header:
                continue   # back edge: one iteration only
            follow = max(follow, visit(succ, on_stack))
        result = node_latency + follow
        best[name] = result
        return result

    return visit(entry, frozenset())


def _loop_exits(fn: Function, loop: LoopInfo) -> list:
    exits = []
    blocks = {b.name: b for b in fn.blocks}
    for name in loop.blocks:
        block = blocks.get(name)
        if block is None:
            continue
        for succ in block.successors():
            if succ.name not in loop.blocks:
                exits.append(succ.name)
    return exits


def pe_model(info: KernelInfo, budget: ResourceBudget,
             pipelined: bool = True,
             wg_size: Optional[int] = None) -> PEModelResult:
    """Run the full PE model for one design's budget."""
    block_latencies = schedule_blocks(info, budget)
    depth = critical_path_depth(info.fn, block_latencies, info.loop_nest)
    depth = max(depth, 1.0)

    if pipelined:
        mii = compute_mii(info.function_dfg, budget, info.traces,
                          info.dsp_cost_per_wi)
        sms = swing_modulo_schedule(info.function_dfg, budget, mii.mii)
        ii = sms.ii
        rec_mii, res_mii = mii.rec_mii, mii.res_mii
        # Work-item pipelining cannot initiate through a barrier: every
        # work-item must arrive before any proceeds, which serialises
        # the stage; the II grows by the barrier's drain effect only in
        # so far as SMS already orders memory ops around it, so no extra
        # term is added here (the simulator models the actual drain).
    else:
        ii = depth                       # serial: next WI starts after D
        rec_mii = res_mii = depth

    n_wg = wg_size if wg_size is not None else info.work_group_size
    latency_wg = ii * max(n_wg - 1, 0) + depth      # Eq. 1
    return PEModelResult(ii=ii, depth=depth, latency_wg=latency_wg,
                         block_latencies=block_latencies,
                         rec_mii=rec_mii, res_mii=res_mii)
