"""Kernel computation model (paper §3.3.3, Eqs. 7–8).

Work-groups are dispatched to idle CUs round-robin; dispatch costs
ΔL_comp^schedule per work-group, which bounds how many CUs can actually
be kept busy:

    N_CU = min(C, ceil(L_comp^CU / ΔL))                  (Eq. 8)
    L_comp^kernel = L_CU · ceil(N_wi^kernel / (N_wi^wg · N_CU))
                    + C · ΔL                              (Eq. 7)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.cu import CUModelResult


@dataclass
class KernelModelResult:
    """Multi-CU computation latency."""

    n_cu: int                  # effective CU parallelism
    latency: float             # L_comp^kernel
    num_groups: int


def kernel_computation_model(cu: CUModelResult, num_cu: int,
                             total_work_items: int, wg_size: int,
                             schedule_overhead: float,
                             work_group_pipeline: bool = False
                             ) -> KernelModelResult:
    """Eqs. 7–8; with work-group pipelining, successive groups stream
    through the CU without draining the pipeline, so the depth is paid
    once per CU instead of once per round."""
    overhead = max(schedule_overhead, 1.0)
    n_cu = min(num_cu, max(1, math.ceil(cu.latency_wg / overhead)))
    num_groups = math.ceil(total_work_items / wg_size)
    rounds = math.ceil(num_groups / n_cu)
    if work_group_pipeline:
        # Streaming groups: the pipeline drain is paid once, but the
        # serial round-robin dispatcher still floors the group rate.
        stream = cu.ii * max(cu.initiations, 1) * rounds
        dispatch_floor = overhead * num_groups
        latency = (max(stream, dispatch_floor) + cu.depth
                   + num_cu * overhead)
    else:
        latency = cu.latency_wg * rounds + num_cu * overhead
    return KernelModelResult(n_cu=n_cu, latency=latency,
                             num_groups=num_groups)
