"""The top-level FlexCL model: predict cycles for (kernel, design, device).

Usage::

    from repro.model import FlexCL
    model = FlexCL(device)
    prediction = model.predict(kernel_info, design)
    print(prediction.cycles, prediction.seconds)

The model is purely analytical: given the one-time kernel analysis
(:class:`~repro.analysis.KernelInfo`), each design point evaluates in
milliseconds — this is what makes design-space exploration "seconds
instead of hours or days".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design
from repro.model.cu import CUModelResult, cu_model
from repro.model.integrate import IntegrationResult, integrate
from repro.model.kernel import KernelModelResult, kernel_computation_model
from repro.model.memo import CacheStats, SubModelCache
from repro.model.memory import (
    MemoryModelResult,
    memory_model,
    pattern_table_for,
)
from repro.model.pe import PEModelResult, pe_model
from repro.scheduling import ResourceBudget


@dataclass
class Prediction:
    """A FlexCL performance estimate with its full breakdown."""

    cycles: float
    design: Design
    pe: PEModelResult
    cu: CUModelResult
    kernel: KernelModelResult
    memory: MemoryModelResult
    integration: IntegrationResult
    clock_mhz: float

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def bottleneck(self) -> str:
        """A coarse hint at what limits this design (§1: FlexCL "helps
        to identify the performance bottlenecks")."""
        if self.integration.mode == "barrier":
            mem = self.memory.latency_per_wi * self.kernel.num_groups
            return ("global-memory transfers"
                    if mem > self.kernel.latency else "computation")
        if self.memory.latency_per_wi > self.pe.ii:
            return "global-memory bandwidth (II bound by L_mem^wi)"
        if self.pe.rec_mii >= self.pe.res_mii \
                and self.pe.rec_mii > 1.0:
            return "inter-work-item recurrence (RecMII)"
        if self.pe.res_mii > 1.0:
            return "local-memory ports / DSPs (ResMII)"
        return "pipeline depth / parallelism"


class FlexCL:
    """The analytical model for one device.

    Ablation switches (used by the ablation benchmarks) default to the
    full model: *model_scheduling_overhead* (Eqs. 7–8's ΔL term),
    *model_coalescing* (§3.4), *model_patterns* (Table 1; when off, a
    single average latency prices every request).

    With *memoize* (the default) the expensive sub-models are cached on
    the parameters they actually depend on — the PE schedule on
    ``(wg_size, budget, pipelined)``, the memory model on
    ``(wg_size, pipelined, coalescing)`` — which makes full design-space
    sweeps many times faster without changing a single predicted cycle.
    ``cache_stats`` reports the hit/miss counts.

    With a persistent *cache* (:class:`repro.cache.ArtifactCache`), the
    memoized rows and the profiled Table-1 pattern table are also read
    from / written through to disk, so a fresh process warm-starts from
    earlier runs (again without changing a single predicted cycle).
    """

    def __init__(self, device,
                 model_scheduling_overhead: bool = True,
                 model_coalescing: bool = True,
                 model_patterns: bool = True,
                 memoize: bool = True,
                 cache=None) -> None:
        self.device = device
        self.model_scheduling_overhead = model_scheduling_overhead
        self.model_coalescing = model_coalescing
        self.model_patterns = model_patterns
        self.persistent_cache = cache
        if memoize:
            # The spill salt scopes persistent rows to this model
            # context: full device identity plus the one ablation switch
            # (model_patterns) that changes sub-model inputs without
            # appearing in the memo keys.
            from repro.cache import device_fingerprint, digest
            salt = digest(device_fingerprint(device), model_patterns)
            self._cache = SubModelCache(store=cache, salt=salt)
        else:
            self._cache = None
        self._pattern_table = pattern_table_for(device, cache=cache)
        if not model_patterns:
            avg = (sum(self._pattern_table.latencies.values())
                   / len(self._pattern_table.latencies))
            flat = {p: avg for p in self._pattern_table.latencies}
            from repro.dram.microbench import PatternLatencyTable
            self._pattern_table = PatternLatencyTable(latencies=flat)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the sub-model memo (zeros when
        memoization is disabled)."""
        if self._cache is None:
            return CacheStats()
        return self._cache.stats.copy()

    def clear_cache(self) -> None:
        """Drop memoized sub-model results (e.g. between kernels)."""
        if self._cache is not None:
            self._cache.clear()

    def _pe_model(self, info: KernelInfo, design: Design,
                  budget: ResourceBudget) -> PEModelResult:
        """PE schedule, memoized on what it reads: the analysed kernel,
        the per-PE resource budget, pipelining, and work-group size."""
        pipelined = design.work_item_pipeline
        wg = design.work_group_size
        if self._cache is None:
            return pe_model(info, budget, pipelined=pipelined, wg_size=wg)
        return self._cache.get(
            "pe", info, (wg, budget, pipelined),
            lambda: pe_model(info, budget, pipelined=pipelined,
                             wg_size=wg))

    def _memory_model(self, info: KernelInfo,
                      design: Design) -> MemoryModelResult:
        """Memory model, memoized on the analysed kernel, work-group
        size, pipelining, and the coalescing ablation switch."""
        pipelined = design.work_item_pipeline
        if self._cache is None:
            return memory_model(info, self.device, pipelined=pipelined,
                                coalescing=self.model_coalescing,
                                table=self._pattern_table)
        return self._cache.get(
            "memory", info,
            (design.work_group_size, pipelined, self.model_coalescing),
            lambda: memory_model(info, self.device, pipelined=pipelined,
                                 coalescing=self.model_coalescing,
                                 table=self._pattern_table))

    def predict(self, info: KernelInfo, design: Design) -> Prediction:
        """Estimate the cycles of *design* for the analysed kernel."""
        if design.work_group_size != info.work_group_size:
            raise ValueError(
                f"design work-group size {design.work_group_size} does "
                f"not match the analysed configuration "
                f"{info.work_group_size}; re-run kernel analysis")
        device = self.device
        budget = ResourceBudget.for_pe(
            device, design.effective_pe_slots, design.num_cu)

        pe = self._pe_model(info, design, budget)
        cu = cu_model(info, device, pe, design.effective_pe_slots,
                      design.num_cu, design.work_group_size)
        overhead = (device.schedule_overhead_cycles
                    if self.model_scheduling_overhead else 1.0)
        kernel = kernel_computation_model(
            cu, design.num_cu, info.total_work_items,
            design.work_group_size, overhead,
            work_group_pipeline=design.work_group_pipeline)
        memory = self._memory_model(info, design)
        result = integrate(design.comm_mode, pe, cu, kernel, memory,
                           info.total_work_items, design.work_group_size,
                           work_group_pipeline=design.work_group_pipeline,
                           schedule_overhead=overhead)
        return Prediction(cycles=result.cycles, design=design, pe=pe,
                          cu=cu, kernel=kernel, memory=memory,
                          integration=result, clock_mhz=device.clock_mhz)
