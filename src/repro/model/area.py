"""FPGA area estimation for a design point.

The paper's model enforces resource constraints (DSPs, local-memory
ports/BRAM) implicitly through Eqs. 3-6 and the design-space filter.
This module makes the resource side a first-class estimate: given the
analysed kernel and a design, it reports DSP slices, BRAM blocks, and a
LUT/FF approximation for the full kernel (all PEs and CUs), so users
can see *why* a configuration is infeasible and how much headroom a
feasible one leaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design
from repro.latency.optable import OpClass, classify_instruction

#: approximate LUTs consumed by one instance of each op class
_LUT_COST = {
    OpClass.INT_ALU: 32,
    OpClass.INT_MUL: 80,       # on top of its DSPs
    OpClass.INT_DIV: 1400,     # LUT-based divider
    OpClass.FADD: 220,
    OpClass.FMUL: 130,
    OpClass.FDIV: 800,
    OpClass.FEXPENSIVE: 1600,
    OpClass.CAST: 120,
    OpClass.LOCAL_READ: 16,
    OpClass.LOCAL_WRITE: 16,
    OpClass.GLOBAL_ISSUE: 180,   # AXI datapath share
    OpClass.ADDR: 48,
    OpClass.CONTROL: 8,
    OpClass.FREE: 0,
    OpClass.ATOMIC: 400,
}

#: bytes of one 36Kb BRAM block
_BRAM36_BYTES = 36 * 1024 // 8
#: fixed LUTs for one CU's control/infrastructure (AXI, dispatcher port)
_CU_INFRA_LUTS = 6_000
#: flip-flop to LUT ratio typical of pipelined HLS output
_FF_PER_LUT = 1.4


@dataclass(frozen=True)
class AreaEstimate:
    """Resources of a complete kernel implementation."""

    dsp: int
    bram_36k: int
    luts: int
    ffs: int

    def utilisation(self, device) -> dict:
        """Fractions of the device consumed per resource class."""
        return {
            "dsp": self.dsp / max(device.dsp_total, 1),
            "bram": self.bram_36k / max(device.bram_36k_total, 1),
            "lut": self.luts / max(device.luts_total, 1),
        }

    def fits(self, device, headroom: float = 0.85) -> bool:
        """True when every resource stays below *headroom* of the
        device (the shell and routing need the rest)."""
        return all(v <= headroom
                   for v in self.utilisation(device).values())


def estimate_area(info: KernelInfo, design: Design) -> AreaEstimate:
    """Estimate the full-kernel area of *design*.

    One PE instantiates every static operation of the kernel once
    (HLS-style spatial implementation); PEs replicate per CU, CUs
    replicate across the device; local memory is per-CU.
    """
    pe_dsp = 0.0
    pe_luts = 0.0
    for inst in info.fn.instructions():
        cls = classify_instruction(inst)
        pe_dsp += info.table.dsp_cost(inst)
        pe_luts += _LUT_COST[cls]

    slots = design.effective_pe_slots
    cus = design.num_cu
    dsp = int(math.ceil(pe_dsp * slots * cus))

    bram_per_cu = math.ceil(info.local_mem_bytes / _BRAM36_BYTES)
    # Dual-port banking doubles block count once more than one PE needs
    # concurrent access.
    if slots > 1:
        bram_per_cu *= 2
    bram = bram_per_cu * cus

    luts = int(pe_luts * slots * cus + _CU_INFRA_LUTS * cus)
    return AreaEstimate(dsp=dsp, bram_36k=bram, luts=luts,
                        ffs=int(luts * _FF_PER_LUT))
