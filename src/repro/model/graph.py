"""Graph-level latency integration for multi-kernel programs.

A program is a DAG of kernel stages connected by intermediate data.
Two hardware realizations of each edge are modelled:

- **buffer-through-DRAM** (``'dram'``): the producer kernel finishes,
  its output buffer lands in global memory, the consumer launches and
  reads it back.  Stages serialize:

      T_program = Σ_stages T_stage + Σ_edges T_transfer(edge)

  where each edge's transfer is priced as a streaming write plus a
  streaming read of the intermediate buffer through the profiled
  Table-1 pattern latencies (sequential traffic: row-hit bursts with
  one row miss per DRAM row).

- **pipe** (``'pipe'``): edges become on-chip FIFOs and all stages run
  concurrently.  Steady-state throughput is set by the slowest stage;
  the others block on full/empty (:mod:`repro.model.channel`).  The
  end-to-end latency is the bottleneck stage's streaming time, plus
  the pipeline fill of the other stages, plus the FIFO handshake tax:

      T_program = max_i T_i + Σ_{i != bottleneck} D_i
                  + Σ_edges stall_cycles(edge)

Per-stage times come from the single-kernel FlexCL model unchanged —
the graph layer composes predictions, it never re-derives them — so a
one-stage program in DRAM realization reproduces ``FlexCL.predict``
bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.kernel_info import KernelInfo
from repro.dse.space import Design
from repro.model.channel import ChannelModelResult, channel_model
from repro.model.flexcl import FlexCL, Prediction

REALIZATIONS = ("dram", "pipe")


@dataclass(frozen=True)
class GraphEdge:
    """One producer → consumer dependency through an intermediate
    buffer (DRAM realization) or a FIFO channel (pipe realization)."""

    src: str
    dst: str
    buffer: str
    nbytes: int
    elem_bytes: int = 4

    @property
    def tokens(self) -> int:
        return max(1, self.nbytes // max(self.elem_bytes, 1))


@dataclass(frozen=True)
class ProgramGraph:
    """Stage order plus the data edges between stages."""

    name: str
    stages: Tuple[str, ...]
    edges: Tuple[GraphEdge, ...] = ()

    def __post_init__(self) -> None:
        known = set(self.stages)
        order = {s: i for i, s in enumerate(self.stages)}
        for e in self.edges:
            if e.src not in known or e.dst not in known:
                raise ValueError(
                    f"edge {e.src}->{e.dst} references unknown stage")
            if order[e.src] >= order[e.dst]:
                raise ValueError(
                    f"edge {e.src}->{e.dst} goes against stage order")

    def consumers(self, stage: str) -> List[GraphEdge]:
        return [e for e in self.edges if e.src == stage]

    def producers(self, stage: str) -> List[GraphEdge]:
        return [e for e in self.edges if e.dst == stage]


@dataclass(frozen=True)
class TransferResult:
    """Priced DRAM round trip of one edge's intermediate buffer."""

    edge: GraphEdge
    cycles: float


@dataclass
class GraphPrediction:
    """End-to-end program estimate with its per-stage breakdown."""

    realization: str
    cycles: float
    graph: ProgramGraph
    stages: Dict[str, Prediction] = field(default_factory=dict)
    #: DRAM realization: per-edge buffer round trips
    transfers: List[TransferResult] = field(default_factory=list)
    #: pipe realization: per-edge channel judgements
    channels: Dict[str, ChannelModelResult] = field(default_factory=dict)
    #: pipe realization: the stage that limits steady-state throughput
    bottleneck_stage: str = ""
    clock_mhz: float = 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def transfer_cycles(self) -> float:
        return sum(t.cycles for t in self.transfers)

    @property
    def stage_cycles(self) -> Dict[str, float]:
        return {name: p.cycles for name, p in self.stages.items()}


def dram_transfer_cycles(nbytes: int, device, table=None) -> float:
    """Cycles to stream one intermediate buffer out to DRAM and back.

    Sequential traffic coalesces into ``mem_access_unit``-sized
    requests; consecutive requests hit the open row, with one row miss
    each time the stream crosses a DRAM row boundary.  Both directions
    are priced with the same profiled Table-1 latencies the
    single-kernel memory model uses (Eq. 9 applied to the transfer's
    pattern counts).
    """
    if nbytes <= 0:
        return 0.0
    from repro.dram.patterns import AccessPattern
    from repro.model.memory import pattern_table_for
    if table is None:
        table = pattern_table_for(device)
    unit = max(device.mem_access_unit_bits // 8, 1)
    requests = math.ceil(nbytes / unit)
    rows = max(1, math.ceil(nbytes / max(device.dram_row_bytes, 1)))
    misses = min(rows, requests)
    hits = requests - misses
    write = (hits * table.of(AccessPattern.WAW_HIT)
             + misses * table.of(AccessPattern.WAW_MISS))
    read = (hits * table.of(AccessPattern.RAR_HIT)
            + misses * table.of(AccessPattern.RAR_MISS))
    return write + read


def predict_graph(graph: ProgramGraph, model: FlexCL,
                  infos: Dict[str, KernelInfo],
                  designs: Dict[str, Design],
                  realization: str = "dram",
                  depths: Optional[Dict[str, int]] = None,
                  default_depth: int = 16) -> GraphPrediction:
    """Predict the end-to-end cycles of *graph* under one realization.

    *infos* / *designs* map stage names to their analysed kernels and
    chosen design points (every stage must be present).  *depths* maps
    edge buffer names to FIFO depths for the pipe realization
    (*default_depth* elsewhere).
    """
    if realization not in REALIZATIONS:
        raise ValueError(f"unknown realization {realization!r}; "
                         f"expected one of {REALIZATIONS}")
    missing = [s for s in graph.stages
               if s not in infos or s not in designs]
    if missing:
        raise ValueError(f"no analysis/design for stage(s): "
                         f"{', '.join(missing)}")
    stages = {name: model.predict(infos[name], designs[name])
              for name in graph.stages}
    clock = model.device.clock_mhz
    if realization == "dram":
        transfers = [
            TransferResult(edge=e, cycles=dram_transfer_cycles(
                e.nbytes, model.device,
                table=getattr(model, "_pattern_table", None)))
            for e in graph.edges
        ]
        cycles = (sum(p.cycles for p in stages.values())
                  + sum(t.cycles for t in transfers))
        return GraphPrediction(realization="dram", cycles=cycles,
                               graph=graph, stages=stages,
                               transfers=transfers, clock_mhz=clock)

    depths = depths or {}
    channels: Dict[str, ChannelModelResult] = {}
    stall_cycles = 0.0
    for e in graph.edges:
        ch = channel_model(
            name=e.buffer,
            depth=depths.get(e.buffer, default_depth),
            tokens=e.tokens, elem_bytes=e.elem_bytes,
            producer_cycles=stages[e.src].cycles,
            consumer_cycles=stages[e.dst].cycles)
        channels[e.buffer] = ch
        stall_cycles += ch.stall_cycles
    bottleneck = max(graph.stages, key=lambda s: stages[s].cycles)
    stream = stages[bottleneck].cycles
    fill = sum(stages[s].pe.depth for s in graph.stages
               if s != bottleneck)
    cycles = stream + fill + stall_cycles
    return GraphPrediction(realization="pipe", cycles=cycles,
                           graph=graph, stages=stages,
                           channels=channels,
                           bottleneck_stage=bottleneck,
                           clock_mhz=clock)
