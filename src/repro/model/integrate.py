"""Computation/memory integration (paper §3.5, Eqs. 10–12).

**Barrier mode** — computation and global transfers are separated by
barriers, so nothing overlaps:

    T_kernel = L_mem^wi · N_wi^kernel + L_comp^kernel      (Eq. 10)

**Pipeline mode** — global transfers stream alongside computation; the
work-item initiation interval becomes the slower of the compute II and
the per-work-item memory time:

    II_wi = max(L_mem^wi, II_comp^wi)                      (Eq. 12)
    T_kernel = (II_wi · ceil((N_wg − N_PE)/N_PE) + D)
               · ceil(N_kernel / (N_wg · N_CU))            (Eq. 11)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.cu import CUModelResult
from repro.model.kernel import KernelModelResult
from repro.model.memory import MemoryModelResult
from repro.model.pe import PEModelResult


@dataclass
class IntegrationResult:
    """Total kernel cycles plus the mode used."""

    cycles: float
    mode: str
    ii_wi: float = 0.0


def integrate(mode: str, pe: PEModelResult, cu: CUModelResult,
              kernel: KernelModelResult, memory: MemoryModelResult,
              total_work_items: int, wg_size: int,
              work_group_pipeline: bool = False,
              schedule_overhead: float = 0.0) -> IntegrationResult:
    """Combine the computation and memory models per Eqs. 10–12.

    With work-group pipelining the per-round pipeline drain disappears:
    the depth is paid once at the tail instead of once per round.
    """
    if mode == "barrier":
        cycles = memory.latency_per_wi * total_work_items + kernel.latency
        return IntegrationResult(cycles=cycles, mode=mode,
                                 ii_wi=pe.ii)
    if mode != "pipeline":
        raise ValueError(f"unknown communication mode {mode!r}")
    ii_wi = max(memory.latency_per_wi, pe.ii)          # Eq. 12
    n_pe = max(cu.n_pe, 1)
    initiations = math.ceil(max(wg_size - n_pe, 0) / n_pe)
    rounds = math.ceil(total_work_items
                       / (wg_size * max(kernel.n_cu, 1)))
    if work_group_pipeline:
        stream = ii_wi * max(initiations, 1) * rounds
        dispatch_floor = schedule_overhead * kernel.num_groups
        cycles = max(stream, dispatch_floor) + pe.depth
    else:
        cycles = (ii_wi * initiations + pe.depth) * rounds   # Eq. 11
    return IntegrationResult(cycles=cycles, mode=mode, ii_wi=ii_wi)
