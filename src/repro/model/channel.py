"""Analytical FIFO channel model for kernel-to-kernel pipes.

A channel couples a producer stage and a consumer stage through a
bounded FIFO of ``depth`` elements.  Three effects matter for latency:

- **II inflation on rate mismatch**: once the FIFO reaches steady
  state, both stages advance at the slower side's token rate.  The
  faster stage's effective initiation interval inflates by the rate
  ratio (it blocks on full/empty for the difference).
- **Stall events**: the co-execution interpreter
  (:class:`repro.interp.ProgramExecutor`) counts one stall per blocked
  scheduling turn.  For matched-rate single-work-item stages moving
  ``T`` tokens through a depth-``D`` FIFO under its producer-first
  round-robin, both sides block exactly ``ceil(T / D) - 1`` turns:
  the producer fills the FIFO, the scheduler hands over, the consumer
  drains it — each full FIFO handoff beyond the first costs one
  blocked turn per side.  :func:`coexec_stalls` is that closed form,
  and the ground-truth tests hold the interpreter to it.
- **Handshake overhead**: each stall event costs the blocked side a
  re-check cycle in hardware (the FIFO's not-full/not-empty flag is
  registered), so shallow FIFOs tax throughput even at matched rates.

The graph integrator (:mod:`repro.model.graph`) prices a pipe edge
with :func:`channel_model` and folds the result into the overlapped
end-to-end latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: cycles a blocked side loses per stall event (registered FIFO flags:
#: one cycle to observe not-full / not-empty after the peer moves)
STALL_HANDSHAKE_CYCLES = 1.0


def coexec_stalls(tokens: int, depth: int) -> int:
    """Blocked scheduling turns per side for a matched-rate
    single-work-item producer/consumer pair moving *tokens* through a
    depth-*depth* FIFO under the round-robin co-execution scheduler."""
    if tokens <= 0:
        return 0
    depth = max(1, depth)
    return max(0, math.ceil(tokens / depth) - 1)


@dataclass(frozen=True)
class ChannelModelResult:
    """Analytical judgement of one channel for one design point."""

    channel: str
    depth: int
    #: tokens crossing the channel over the whole launch
    tokens: int
    elem_bytes: int
    #: producer / consumer cycles per token, each side running alone
    producer_cycles_per_token: float
    consumer_cycles_per_token: float
    #: effective-II inflation factors (>= 1) once the FIFO throttles
    #: the faster side to the slower side's rate
    ii_inflation_producer: float
    ii_inflation_consumer: float
    #: handshake cycles lost to full/empty stalls (depth-sensitive)
    stall_cycles: float

    @property
    def steady_cycles_per_token(self) -> float:
        """Per-token time of the coupled pair in steady state."""
        return max(self.producer_cycles_per_token,
                   self.consumer_cycles_per_token)

    @property
    def bram_bytes(self) -> int:
        """On-chip storage the FIFO occupies."""
        return self.depth * self.elem_bytes

    @property
    def balanced(self) -> bool:
        return (self.ii_inflation_producer <= 1.0
                and self.ii_inflation_consumer <= 1.0)


def channel_model(name: str, depth: int, tokens: int, elem_bytes: int,
                  producer_cycles: float,
                  consumer_cycles: float) -> ChannelModelResult:
    """Judge one channel: *producer_cycles* / *consumer_cycles* are the
    standalone stage latencies (cycles to produce / consume all
    *tokens*); the FIFO couples them into a single steady-state rate.
    """
    depth = max(1, depth)
    tokens = max(0, tokens)
    if tokens == 0:
        return ChannelModelResult(
            channel=name, depth=depth, tokens=0, elem_bytes=elem_bytes,
            producer_cycles_per_token=0.0, consumer_cycles_per_token=0.0,
            ii_inflation_producer=1.0, ii_inflation_consumer=1.0,
            stall_cycles=0.0)
    c_p = producer_cycles / tokens
    c_c = consumer_cycles / tokens
    # The faster side inflates to the slower side's per-token time.
    infl_p = max(1.0, c_c / c_p) if c_p > 0 else 1.0
    infl_c = max(1.0, c_p / c_c) if c_c > 0 else 1.0
    # Stall events follow the co-execution shape: every full-FIFO
    # handoff beyond the first blocks each side once.  At mismatched
    # rates only the faster side keeps hitting the boundary, but the
    # event count is bounded by the same ceil(T/D) - 1 form.
    stalls = coexec_stalls(tokens, depth)
    return ChannelModelResult(
        channel=name, depth=depth, tokens=tokens, elem_bytes=elem_bytes,
        producer_cycles_per_token=c_p, consumer_cycles_per_token=c_c,
        ii_inflation_producer=infl_p, ii_inflation_consumer=infl_c,
        stall_cycles=2.0 * stalls * STALL_HANDSHAKE_CYCLES)
