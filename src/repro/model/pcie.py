"""Host↔device transfer estimation (PCIe).

The paper's platform attaches the FPGA over PCIe 3.0 x8 (§4.1) and its
kernel model starts once data is resident in the device DRAM.  For
end-to-end decisions a user still needs the transfer side, so this
module prices host→device and device→host movements and composes them
with a kernel prediction into a whole-invocation estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class PCIeLink:
    """A PCIe link's effective characteristics.

    Defaults model PCIe 3.0 x8 as on the ADM-PCIE-7V3: 7.88 GB/s raw,
    ~6.5 GB/s effective after TLP overheads, with a fixed per-DMA
    setup cost.
    """

    effective_bandwidth_gbs: float = 6.5
    dma_setup_us: float = 12.0

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move *nbytes* in one DMA."""
        if nbytes <= 0:
            return 0.0
        return (self.dma_setup_us * 1e-6
                + nbytes / (self.effective_bandwidth_gbs * 1e9))


DEFAULT_LINK = PCIeLink()


@dataclass
class EndToEndEstimate:
    """Kernel time plus its surrounding transfers."""

    host_to_device_seconds: float
    kernel_seconds: float
    device_to_host_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.host_to_device_seconds + self.kernel_seconds
                + self.device_to_host_seconds)

    @property
    def transfer_share(self) -> float:
        """Fraction of the invocation spent moving data."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.host_to_device_seconds
                + self.device_to_host_seconds) / total


def end_to_end(prediction, input_bytes: int, output_bytes: int,
               link: PCIeLink = DEFAULT_LINK) -> EndToEndEstimate:
    """Compose a FlexCL :class:`~repro.model.Prediction` with its
    transfers into a whole-invocation estimate."""
    return EndToEndEstimate(
        host_to_device_seconds=link.transfer_seconds(input_bytes),
        kernel_seconds=prediction.seconds,
        device_to_host_seconds=link.transfer_seconds(output_bytes))


def buffer_bytes(buffers: Iterable) -> int:
    """Total bytes of an iterable of :class:`repro.interp.Buffer`."""
    return sum(b.nbytes for b in buffers)
