"""The FlexCL analytical performance model (paper §3).

The model composes bottom-up (Figure 2):

- :mod:`repro.model.pe` — processing-element model: list-scheduled block
  latencies, MII, Swing Modulo Scheduling → (II_comp^wi, D_comp^PE) and
  Eq. 1;
- :mod:`repro.model.cu` — compute-unit model, Eqs. 5–6;
- :mod:`repro.model.kernel` — multi-CU kernel model, Eqs. 7–8;
- :mod:`repro.model.memory` — global-memory model, Table 1 patterns and
  Eq. 9;
- :mod:`repro.model.integrate` — barrier / pipeline communication modes,
  Eqs. 10–12;
- :mod:`repro.model.memo` — sub-model memoization for fast sweeps;
- :class:`repro.model.FlexCL` — the public entry point.

Above the single-kernel model sit the multi-kernel layers:

- :mod:`repro.model.channel` — FIFO channel model (depth, stall on
  full/empty, II inflation on producer/consumer rate mismatch);
- :mod:`repro.model.graph` — graph-level integrator composing per-stage
  predictions into end-to-end program latency under the
  buffer-through-DRAM and pipe realizations.
"""

from repro.model.pe import PEModelResult, pe_model
from repro.model.cu import CUModelResult, cu_model, effective_pe_parallelism
from repro.model.kernel import KernelModelResult, kernel_computation_model
from repro.model.memo import CacheStats, SubModelCache
from repro.model.memory import MemoryModelResult, memory_model
from repro.model.integrate import integrate
from repro.model.flexcl import FlexCL, Prediction
from repro.model.channel import (
    ChannelModelResult,
    channel_model,
    coexec_stalls,
)
from repro.model.graph import (
    GraphEdge,
    GraphPrediction,
    ProgramGraph,
    dram_transfer_cycles,
    predict_graph,
)

__all__ = [
    "CUModelResult",
    "CacheStats",
    "ChannelModelResult",
    "FlexCL",
    "GraphEdge",
    "GraphPrediction",
    "KernelModelResult",
    "MemoryModelResult",
    "PEModelResult",
    "Prediction",
    "ProgramGraph",
    "SubModelCache",
    "channel_model",
    "coexec_stalls",
    "cu_model",
    "dram_transfer_cycles",
    "effective_pe_parallelism",
    "integrate",
    "kernel_computation_model",
    "memory_model",
    "pe_model",
    "predict_graph",
]
