"""The FlexCL analytical performance model (paper §3).

The model composes bottom-up (Figure 2):

- :mod:`repro.model.pe` — processing-element model: list-scheduled block
  latencies, MII, Swing Modulo Scheduling → (II_comp^wi, D_comp^PE) and
  Eq. 1;
- :mod:`repro.model.cu` — compute-unit model, Eqs. 5–6;
- :mod:`repro.model.kernel` — multi-CU kernel model, Eqs. 7–8;
- :mod:`repro.model.memory` — global-memory model, Table 1 patterns and
  Eq. 9;
- :mod:`repro.model.integrate` — barrier / pipeline communication modes,
  Eqs. 10–12;
- :mod:`repro.model.memo` — sub-model memoization for fast sweeps;
- :class:`repro.model.FlexCL` — the public entry point.
"""

from repro.model.pe import PEModelResult, pe_model
from repro.model.cu import CUModelResult, cu_model, effective_pe_parallelism
from repro.model.kernel import KernelModelResult, kernel_computation_model
from repro.model.memo import CacheStats, SubModelCache
from repro.model.memory import MemoryModelResult, memory_model
from repro.model.integrate import integrate
from repro.model.flexcl import FlexCL, Prediction

__all__ = [
    "CUModelResult",
    "CacheStats",
    "FlexCL",
    "KernelModelResult",
    "MemoryModelResult",
    "PEModelResult",
    "Prediction",
    "SubModelCache",
    "cu_model",
    "effective_pe_parallelism",
    "integrate",
    "kernel_computation_model",
    "memory_model",
    "pe_model",
]
