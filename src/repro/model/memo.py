"""Sub-model memoization for the FlexCL predictor.

A full design-space sweep evaluates hundreds of design points per
work-group size, but the expensive sub-models depend on only a few of
the design's parameters: the PE schedule (list scheduling + SMS) on
``(wg_size, resource budget, pipelined)`` and the memory model (stream
reconstruction, coalescing, bank classification) on
``(wg_size, pipelined, coalescing)``.  The cheap per-point sub-models
(CU, kernel, integration) are recomputed for every design.

:class:`SubModelCache` caches the expensive results per analysed
:class:`~repro.analysis.kernel_info.KernelInfo`, keyed on exactly those
parameters, and counts hits/misses per sub-model so exploration can
report its cache behaviour (surfaced in
:class:`~repro.dse.explorer.ExplorationResult`).

Entries keep a strong reference to their ``KernelInfo`` and validate it
by identity on every lookup, so a recycled ``id()`` can never alias a
dead kernel analysis to a live one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass
class CacheStats:
    """Hit/miss counters of one memoized sweep, per sub-model."""

    pe_hits: int = 0
    pe_misses: int = 0
    memory_hits: int = 0
    memory_misses: int = 0

    @property
    def hits(self) -> int:
        return self.pe_hits + self.memory_hits

    @property
    def misses(self) -> int:
        return self.pe_misses + self.memory_misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Overall hit fraction (0.0 when nothing was looked up)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def rate(self, sub_model: str) -> float:
        """Hit fraction of one sub-model ('pe' or 'memory')."""
        hits = getattr(self, f"{sub_model}_hits")
        misses = getattr(self, f"{sub_model}_misses")
        n = hits + misses
        return hits / n if n else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            pe_hits=self.pe_hits + other.pe_hits,
            pe_misses=self.pe_misses + other.pe_misses,
            memory_hits=self.memory_hits + other.memory_hits,
            memory_misses=self.memory_misses + other.memory_misses,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            pe_hits=self.pe_hits - other.pe_hits,
            pe_misses=self.pe_misses - other.pe_misses,
            memory_hits=self.memory_hits - other.memory_hits,
            memory_misses=self.memory_misses - other.memory_misses,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(self.pe_hits, self.pe_misses,
                          self.memory_hits, self.memory_misses)

    def to_dict(self) -> Dict[str, float]:
        return {
            "pe_hits": self.pe_hits, "pe_misses": self.pe_misses,
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "hit_rate": self.hit_rate,
            "pe_hit_rate": self.rate("pe"),
            "memory_hit_rate": self.rate("memory"),
        }

    def summary(self) -> str:
        return (f"cache: PE {self.pe_hits}/{self.pe_hits + self.pe_misses} "
                f"hits ({self.rate('pe'):.0%}), "
                f"memory {self.memory_hits}/"
                f"{self.memory_hits + self.memory_misses} "
                f"hits ({self.rate('memory'):.0%})")


class SubModelCache:
    """Per-``KernelInfo`` memo tables for the expensive sub-models.

    With a persistent *store* (:class:`repro.cache.ArtifactCache`), rows
    are spilled to disk keyed on the kernel's content fingerprint plus
    *salt* (the model context: device identity and ablation switches):
    an in-memory miss first consults the store, and computed rows are
    written through, so a later process warm-starts its sweep.  Kernels
    analysed without a fingerprint simply skip the persistent layer.
    """

    def __init__(self, store=None, salt: str = "") -> None:
        self.stats = CacheStats()
        self._store = store
        self._salt = salt
        #: guards the memo tables and stats counters — one FlexCL
        #: instance may serve concurrent threads (serve worker pool),
        #: and unguarded `count += 1` bumps lose increments.  Compute
        #: runs *outside* the lock (a duplicate compute is harmless,
        #: results are pure), so throughput is unaffected.
        self._lock = threading.Lock()
        #: id(info) -> (info, {key: result}); the stored info reference
        #: pins the id so identity validation is exact.
        self._tables: Dict[int, Tuple[object, Dict[tuple, object]]] = {}

    def _table(self, info) -> Dict[tuple, object]:
        entry = self._tables.get(id(info))
        if entry is None or entry[0] is not info:
            entry = (info, {})
            self._tables[id(info)] = entry
        return entry[1]

    def get(self, sub_model: str, info, key: tuple,
            compute: Callable[[], object]):
        """Return the cached *sub_model* result for (*info*, *key*),
        computing and storing it on a miss."""
        full_key = (sub_model,) + key
        with self._lock:
            table = self._table(info)
            if full_key in table:
                setattr(self.stats, f"{sub_model}_hits",
                        getattr(self.stats, f"{sub_model}_hits") + 1)
                return table[full_key]
            setattr(self.stats, f"{sub_model}_misses",
                    getattr(self.stats, f"{sub_model}_misses") + 1)
        skey = None
        if self._store is not None \
                and getattr(info, "fingerprint", None):
            from repro.cache import submodel_key
            skey = submodel_key(sub_model, info.fingerprint,
                                self._salt, key)
            found, value = self._store.get(sub_model, skey)
            if found:
                with self._lock:
                    self._table(info)[full_key] = value
                return value
        result = compute()
        if skey is not None:
            self._store.put(sub_model, skey, result)
        with self._lock:
            self._table(info)[full_key] = result
        return result

    def clear(self) -> None:
        """Drop every memoized result (stats are kept)."""
        with self._lock:
            self._tables.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(t) for _, t in self._tables.values())
