"""Off-chip global memory (DRAM) modelling (paper §3.4).

Global memory is banked DRAM with a row buffer per bank and
byte-interleaved data mapping.  A request costs one column command on a
row-buffer hit and three DRAM commands (precharge, activate, column) on
a miss, and the latency additionally depends on the preceding access
kind on the same channel — giving the eight patterns of Table 1.

- :mod:`repro.dram.mapping` — byte-interleaved address → (bank, row);
- :mod:`repro.dram.coalesce` — SDAccel-style automatic coalescing of
  consecutive reads/writes into wide AXI bursts;
- :mod:`repro.dram.patterns` — Table 1 pattern classification;
- :mod:`repro.dram.controller` — the timing controller the simulator
  executes and the micro-benchmarks profile;
- :mod:`repro.dram.microbench` — pattern-latency profiling
  (:class:`PatternLatencyTable` = the eight ΔT values of Table 1).
"""

from repro.dram.mapping import BankMapping
from repro.dram.coalesce import CoalescedRequest, coalesce_stream, coalescing_factor
from repro.dram.patterns import (
    PATTERNS,
    AccessPattern,
    PatternCounts,
    classify_bank_stream,
)
from repro.dram.controller import DRAMController
from repro.dram.microbench import PatternLatencyTable, profile_pattern_latencies

__all__ = [
    "AccessPattern",
    "BankMapping",
    "CoalescedRequest",
    "DRAMController",
    "PATTERNS",
    "PatternCounts",
    "PatternLatencyTable",
    "classify_bank_stream",
    "coalesce_stream",
    "coalescing_factor",
    "profile_pattern_latencies",
]
